#ifndef ENTMATCHER_MATCHING_RL_MATCHER_H_
#define ENTMATCHER_MATCHING_RL_MATCHER_H_

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// RL-based collective embedding matching (paper Sec. 3.7, after [65]).
///
/// EA is cast as a sequence-decision problem: source entities are visited in
/// descending-confidence order and a learned policy picks the target among
/// the top-C candidates. The policy scores each candidate from features that
/// encode the paper's two coordination signals:
///   - *coherence*: agreement between the candidate and the matches already
///     chosen for the source entity's KG neighbors;
///   - *exclusiveness*: whether the candidate target is already taken.
/// plus local/reciprocal score margins.
///
/// The policy network (our own MLP substrate) is trained with REINFORCE on
/// the train-split links; at inference the confidence pre-filter of [65]
/// first fixes mutual-best high-margin pairs and exempts them from the RL
/// stage, then the policy decodes the remaining sources greedily.
///
/// `test_scores` must be the raw similarity matrix over
/// dataset.test_source_entities × dataset.test_target_entities.
Result<Assignment> RlMatch(const KgPairDataset& dataset,
                           const EmbeddingPair& embeddings,
                           const Matrix& test_scores,
                           const RlMatcherOptions& options);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_RL_MATCHER_H_
