#include "matching/transforms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/thread_pool.h"
#include "la/kernels/dispatch.h"
#include "la/ranking.h"
#include "la/topk.h"

namespace entmatcher {

namespace {

Status ValidateScores(const Matrix& scores) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("score transform: empty score matrix");
  }
  return Status::OK();
}

}  // namespace

size_t TransformWorkspaceBytes(const MatchOptions& options, size_t rows,
                               size_t cols) {
  switch (options.transform) {
    case ScoreTransformKind::kRinf:
      return cols * rows * sizeof(float);  // reverse preference table P_ts
    case ScoreTransformKind::kSinkhorn:
      return rows * cols * sizeof(float);  // normalization double buffer
    case ScoreTransformKind::kNone:
    case ScoreTransformKind::kCsls:
    case ScoreTransformKind::kRinfWr:
    case ScoreTransformKind::kRinfPb:
      return 0;
  }
  return 0;
}

Status CslsTransformInPlace(Matrix* scores, size_t k) {
  EM_RETURN_NOT_OK(ValidateScores(*scores));
  if (k == 0) return Status::InvalidArgument("CSLS: k must be >= 1");

  const std::vector<float> phi_s = RowTopKMean(*scores, k);
  // Streaming column top-k mean — CSLS stays at a single-matrix footprint,
  // which is what keeps it memory-feasible at DWY100K scale in the paper's
  // Table 6 while RInf is not.
  const std::vector<float> phi_t = ColTopKMean(*scores, k);
  const size_t m = scores->cols();  // hoisted out of the inner loop
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores->Row(i).data();
      const float pi = phi_s[i];
      for (size_t j = 0; j < m; ++j) {
        row[j] = 2.0f * row[j] - pi - phi_t[j];
      }
    }
  });
  return Status::OK();
}

Status RinfTransformInPlace(Matrix* scores, size_t k, Workspace* workspace) {
  EM_RETURN_NOT_OK(ValidateScores(*scores));
  if (k == 0) return Status::InvalidArgument("RInf: k must be >= 1");
  const size_t n = scores->rows();
  const size_t m = scores->cols();

  // k = 1 is Eq. (2)'s max; larger k averages the top-k reverse scores
  // (Appendix C's generalization).
  const std::vector<float> row_max =
      k == 1 ? RowMax(*scores) : RowTopKMean(*scores, k);
  const std::vector<float> col_max =
      k == 1 ? ColMax(*scores) : ColTopKMean(*scores, k);

  // P_ts(v, u) = S(u, v) - row_max[u] + 1 (target-side preferences).
  // Partitioned by source row: each worker writes a disjoint column slice
  // of p_ts.
  EM_ASSIGN_OR_RETURN(ScratchMatrix p_ts_lease,
                      ScratchMatrix::Acquire(workspace, m, n));
  Matrix& p_ts = p_ts_lease.get();
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float* srow = scores->Row(i).data();
      const float shift = 1.0f - row_max[i];
      for (size_t j = 0; j < m; ++j) {
        p_ts.At(j, i) = srow[j] + shift;
      }
    }
  });
  // P_st(u, v) = S(u, v) - col_max[v] + 1, in place.
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores->Row(i).data();
      for (size_t j = 0; j < m; ++j) {
        row[j] = row[j] - col_max[j] + 1.0f;
      }
    }
  });

  // Rank both preference tables in place: two live score-size buffers total
  // (scores + p_ts), down from the three of the copy-out design.
  RowRankMatrixInPlace(scores);  // scores := R_st
  RowRankMatrixInPlace(&p_ts);   // p_ts   := R_ts

  // out(u, v) = -(R_st(u, v) + R_ts(v, u)) / 2; smaller average rank is
  // better, so negate to keep "higher is better".
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores->Row(i).data();
      for (size_t j = 0; j < m; ++j) {
        row[j] = -0.5f * (row[j] + p_ts.At(j, i));
      }
    }
  });
  return Status::OK();
}

Status RinfWrTransformInPlace(Matrix* scores) {
  EM_RETURN_NOT_OK(ValidateScores(*scores));
  const std::vector<float> row_max = RowMax(*scores);
  const std::vector<float> col_max = ColMax(*scores);
  // (P_st + P_ts^T) / 2 = S - (row_max[u] + col_max[v]) / 2 + 1, computed
  // in place — this is what makes the -wr variant cheap.
  const size_t m = scores->cols();  // hoisted out of the inner loop
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores->Row(i).data();
      const float half_row_max = 0.5f * row_max[i];
      for (size_t j = 0; j < m; ++j) {
        row[j] = row[j] - half_row_max - 0.5f * col_max[j] + 1.0f;
      }
    }
  });
  return Status::OK();
}

Status RinfPbTransformInPlace(Matrix* scores, size_t candidates) {
  EM_RETURN_NOT_OK(ValidateScores(*scores));
  if (candidates == 0) {
    return Status::InvalidArgument("RInf-pb: candidates must be >= 1");
  }
  const size_t n = scores->rows();
  const size_t m = scores->cols();
  const size_t c = std::min(candidates, std::min(n, m));

  const std::vector<float> row_max = RowMax(*scores);
  const std::vector<float> col_max = ColMax(*scores);

  // Top-C target candidates per source under P_st ordering (= S - col_max).
  std::vector<uint32_t> src_cand(n * c);
  ParallelFor(0, n, 8, [&](size_t begin, size_t end) {
    std::vector<float> adjusted(m);
    std::vector<uint32_t> idx(m);
    for (size_t i = begin; i < end; ++i) {
      const float* row = scores->Row(i).data();
      for (size_t j = 0; j < m; ++j) adjusted[j] = row[j] - col_max[j];
      std::iota(idx.begin(), idx.end(), 0u);
      std::partial_sort(idx.begin(), idx.begin() + c, idx.end(),
                        [&adjusted](uint32_t a, uint32_t b) {
                          if (adjusted[a] != adjusted[b]) {
                            return adjusted[a] > adjusted[b];
                          }
                          return a < b;
                        });
      std::copy(idx.begin(), idx.begin() + c, src_cand.begin() + i * c);
    }
  });
  // Top-C source candidates per target under P_ts ordering (= S - row_max).
  std::vector<uint32_t> tgt_cand(m * c);
  ParallelFor(0, m, 8, [&](size_t begin, size_t end) {
    std::vector<float> adjusted(n);
    std::vector<uint32_t> idx(n);
    for (size_t j = begin; j < end; ++j) {
      for (size_t i = 0; i < n; ++i) {
        adjusted[i] = scores->At(i, j) - row_max[i];
      }
      std::iota(idx.begin(), idx.end(), 0u);
      std::partial_sort(idx.begin(), idx.begin() + c, idx.end(),
                        [&adjusted](uint32_t a, uint32_t b) {
                          if (adjusted[a] != adjusted[b]) {
                            return adjusted[a] > adjusted[b];
                          }
                          return a < b;
                        });
      std::copy(idx.begin(), idx.begin() + c, tgt_cand.begin() + j * c);
    }
  });

  // Reciprocal rank aggregation over the candidate blocks only.
  const float sentinel = -2.0f * static_cast<float>(n + m);
  scores->Fill(sentinel);
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      float* row = scores->Row(i).data();
      for (size_t p = 0; p < c; ++p) {
        const uint32_t j = src_cand[i * c + p];
        // Rank of source i within target j's candidate list (capped at c+1).
        size_t r_ts = c + 1;
        const uint32_t* tlist = tgt_cand.data() + static_cast<size_t>(j) * c;
        for (size_t q = 0; q < c; ++q) {
          if (tlist[q] == i) {
            r_ts = q + 1;
            break;
          }
        }
        row[j] = -0.5f * (static_cast<float>(p + 1) + static_cast<float>(r_ts));
      }
    }
  });
  return Status::OK();
}

Status SinkhornTransformInPlace(Matrix* scores, size_t iterations,
                                double temperature, Workspace* workspace) {
  EM_RETURN_NOT_OK(ValidateScores(*scores));
  if (iterations == 0) {
    return Status::InvalidArgument("Sinkhorn: iterations must be >= 1");
  }
  if (temperature <= 0.0) {
    return Status::InvalidArgument("Sinkhorn: temperature must be > 0");
  }
  const size_t n = scores->rows();
  const size_t m = scores->cols();

  // Sinkhorn^0(S) = exp(S / t). Subtract the global max first for numeric
  // stability (a constant shift does not change the normalized result).
  // Per-row maxima combine exactly regardless of chunking, so a plain
  // parallel row sweep into per-row slots stays deterministic.
  const std::vector<float> row_max = RowMax(*scores);
  float global_max = row_max[0];
  for (float v : row_max) global_max = std::max(global_max, v);
  const float inv_t = static_cast<float>(1.0 / temperature);
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (float& v : scores->Row(i)) v = std::exp((v - global_max) * inv_t);
    }
  });

  // Double-buffered normalization, mirroring the out-of-place tensor ops of
  // the original framework's implementation. The second n x m buffer is what
  // pushes Sinkhorn past the memory budget at the paper's DWY100K scale
  // (Table 6, "Mem: No").
  EM_ASSIGN_OR_RETURN(ScratchMatrix buffer_lease,
                      ScratchMatrix::Acquire(workspace, n, m));
  Matrix& buffer = buffer_lease.get();
  const KernelOps& ops = ActiveKernels();
  std::vector<double> col_sums(m);
  for (size_t it = 0; it < iterations; ++it) {
    // Row normalization: scores -> buffer.
    ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        const float* src = scores->Row(i).data();
        const double sum = ops.sum(src, m);
        const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0f;
        ops.scale_copy(src, buffer.Row(i).data(), m, inv);
      }
    });
    // Column normalization: buffer -> scores. Column sums are partitioned by
    // column — every worker owns a disjoint slice of col_sums and visits
    // rows in the serial order, keeping the accumulation bit-identical.
    ParallelFor(0, m, 256, [&](size_t col_begin, size_t col_end) {
      std::fill(col_sums.begin() + col_begin, col_sums.begin() + col_end, 0.0);
      for (size_t i = 0; i < n; ++i) {
        const float* row = buffer.Row(i).data();
        ops.accumulate_cols(col_sums.data() + col_begin, row + col_begin,
                            col_end - col_begin);
      }
      for (size_t j = col_begin; j < col_end; ++j) {
        col_sums[j] = col_sums[j] > 0.0 ? 1.0 / col_sums[j] : 0.0;
      }
    });
    ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ops.mul_cols(scores->Row(i).data(), buffer.Row(i).data(),
                     col_sums.data(), m);
      }
    });
  }
  return Status::OK();
}

Status ApplyScoreTransformInPlace(Matrix* scores, const MatchOptions& options,
                                  Workspace* workspace) {
  switch (options.transform) {
    case ScoreTransformKind::kNone:
      return Status::OK();
    case ScoreTransformKind::kCsls:
      return CslsTransformInPlace(scores, options.csls_k);
    case ScoreTransformKind::kRinf:
      return RinfTransformInPlace(scores, options.rinf_k, workspace);
    case ScoreTransformKind::kRinfWr:
      return RinfWrTransformInPlace(scores);
    case ScoreTransformKind::kRinfPb:
      return RinfPbTransformInPlace(scores, options.rinf_pb_candidates);
    case ScoreTransformKind::kSinkhorn:
      return SinkhornTransformInPlace(scores, options.sinkhorn_iterations,
                                      options.sinkhorn_temperature, workspace);
  }
  return Status::InvalidArgument("unknown score transform");
}

// Consuming wrappers. --------------------------------------------------------

Result<Matrix> CslsTransform(Matrix scores, size_t k) {
  EM_RETURN_NOT_OK(CslsTransformInPlace(&scores, k));
  return scores;
}

Result<Matrix> RinfTransform(Matrix scores, size_t k) {
  EM_RETURN_NOT_OK(RinfTransformInPlace(&scores, k, nullptr));
  return scores;
}

Result<Matrix> RinfWrTransform(Matrix scores) {
  EM_RETURN_NOT_OK(RinfWrTransformInPlace(&scores));
  return scores;
}

Result<Matrix> RinfPbTransform(Matrix scores, size_t candidates) {
  EM_RETURN_NOT_OK(RinfPbTransformInPlace(&scores, candidates));
  return scores;
}

Result<Matrix> SinkhornTransform(Matrix scores, size_t iterations,
                                 double temperature) {
  EM_RETURN_NOT_OK(SinkhornTransformInPlace(&scores, iterations, temperature));
  return scores;
}

Result<Matrix> ApplyScoreTransform(Matrix scores, const MatchOptions& options) {
  EM_RETURN_NOT_OK(ApplyScoreTransformInPlace(&scores, options, nullptr));
  return scores;
}

}  // namespace entmatcher
