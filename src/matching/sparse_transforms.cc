#include "matching/sparse_transforms.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <numeric>
#include <vector>

#include "common/thread_pool.h"

namespace entmatcher {

namespace {

Status ValidateSparseScores(const SparseScores& scores) {
  if (scores.rows() == 0 || scores.cols() == 0) {
    return Status::InvalidArgument("score transform: empty score matrix");
  }
  return Status::OK();
}

// Per-row max, mirroring RowMax's max_element scan over the row in storage
// order. Empty rows yield 0 (their statistic is never read — no entries
// reference it).
std::vector<float> SparseRowMax(const SparseScores& scores) {
  std::vector<float> out(scores.rows(), 0.0f);
  ParallelFor(0, scores.rows(), 32, [&](size_t begin, size_t end) {
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.RowValues(r);
      if (row.empty()) continue;
      out[r] = *std::max_element(row.begin(), row.end());
    }
  });
  return out;
}

// Per-row top-k mean, mirroring RowTopKMean / TopKValues: copy the row in
// storage order, nth_element with std::greater, resize, double-accumulate in
// buffer order. With complete lists the buffer is the dense row, so the
// (implementation-defined but deterministic) nth_element layout — and hence
// the float sum — is identical.
std::vector<float> SparseRowTopKMean(const SparseScores& scores, size_t k) {
  std::vector<float> out(scores.rows(), 0.0f);
  ParallelFor(0, scores.rows(), 16, [&](size_t begin, size_t end) {
    std::vector<float> buf;
    for (size_t r = begin; r < end; ++r) {
      auto row = scores.RowValues(r);
      if (row.empty()) continue;
      const size_t kk = std::min(k, row.size());
      buf.assign(row.begin(), row.end());
      std::nth_element(buf.begin(), buf.begin() + (kk - 1), buf.end(),
                       std::greater<float>());
      buf.resize(kk);
      double sum = std::accumulate(buf.begin(), buf.end(), 0.0);
      out[r] = static_cast<float>(sum / static_cast<double>(kk));
    }
  });
  return out;
}

// Per-column max. The dense ColMax visits rows in ascending order per
// column; a serial row sweep over the CSR entries produces exactly that
// insertion sequence (and max is order-exact anyway).
std::vector<float> SparseColMax(const SparseScores& scores) {
  std::vector<float> out(scores.cols(),
                         -std::numeric_limits<float>::infinity());
  const float* values = scores.values();
  const uint32_t* cols = scores.col_indices();
  const std::vector<size_t>& offsets = scores.row_offsets();
  for (size_t r = 0; r < scores.rows(); ++r) {
    for (size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      if (values[e] > out[cols[e]]) out[cols[e]] = values[e];
    }
  }
  return out;
}

// Per-column entry count.
std::vector<size_t> ColumnCounts(const SparseScores& scores) {
  std::vector<size_t> count(scores.cols(), 0);
  const uint32_t* cols = scores.col_indices();
  const size_t nnz = scores.nnz();
  for (size_t e = 0; e < nnz; ++e) ++count[cols[e]];
  return count;
}

// Per-column top-k mean, replaying ColTopKMean's flat min-heap byte for
// byte: same root-replacement test (v <= heap[0] skips), same sift-down,
// same row-ascending insertion sequence, same heap-order double sum. Heap
// sizes follow the per-column entry counts (== the dense min(k, rows) when
// lists are complete).
std::vector<float> SparseColTopKMean(const SparseScores& scores, size_t k) {
  const size_t m = scores.cols();
  const std::vector<size_t> count = ColumnCounts(scores);
  std::vector<size_t> kk_of(m, 0);
  std::vector<size_t> heap_off(m + 1, 0);
  for (size_t c = 0; c < m; ++c) {
    kk_of[c] = std::min(k, count[c]);
    heap_off[c + 1] = heap_off[c] + kk_of[c];
  }
  std::vector<float> heaps(heap_off[m],
                           -std::numeric_limits<float>::infinity());
  const float* values = scores.values();
  const uint32_t* cols = scores.col_indices();
  const std::vector<size_t>& offsets = scores.row_offsets();
  for (size_t r = 0; r < scores.rows(); ++r) {
    for (size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      const size_t c = cols[e];
      const size_t kk = kk_of[c];
      float* heap = heaps.data() + heap_off[c];
      const float v = values[e];
      if (v <= heap[0]) continue;
      // Sift down the replaced root.
      size_t i = 0;
      heap[0] = v;
      for (;;) {
        size_t smallest = i;
        const size_t left = 2 * i + 1;
        const size_t right = 2 * i + 2;
        if (left < kk && heap[left] < heap[smallest]) smallest = left;
        if (right < kk && heap[right] < heap[smallest]) smallest = right;
        if (smallest == i) break;
        std::swap(heap[i], heap[smallest]);
        i = smallest;
      }
    }
  }
  std::vector<float> out(m, 0.0f);
  for (size_t c = 0; c < m; ++c) {
    const size_t kk = kk_of[c];
    if (kk == 0) continue;
    double sum = 0.0;
    for (size_t i = 0; i < kk; ++i) sum += heaps[heap_off[c] + i];
    out[c] = static_cast<float>(sum / static_cast<double>(kk));
  }
  return out;
}

// Column-major view of the entries: per column, the entry ids in ascending
// row order, plus the owning row of every entry. Built serially; the
// per-column slices are then safe to process in parallel.
struct ColumnGather {
  std::vector<size_t> offsets;    // cols + 1
  std::vector<uint64_t> entries;  // entry ids, row-ascending per column
  std::vector<uint32_t> row_of;   // owning row per entry id
};

ColumnGather BuildColumnGather(const SparseScores& scores) {
  ColumnGather g;
  const size_t m = scores.cols();
  const size_t nnz = scores.nnz();
  const uint32_t* cols = scores.col_indices();
  const std::vector<size_t>& offsets = scores.row_offsets();
  g.offsets.assign(m + 1, 0);
  for (size_t e = 0; e < nnz; ++e) ++g.offsets[cols[e] + 1];
  for (size_t c = 0; c < m; ++c) g.offsets[c + 1] += g.offsets[c];
  g.entries.resize(nnz);
  g.row_of.resize(nnz);
  std::vector<size_t> cursor(g.offsets.begin(), g.offsets.end() - 1);
  for (size_t r = 0; r < scores.rows(); ++r) {
    for (size_t e = offsets[r]; e < offsets[r + 1]; ++e) {
      g.row_of[e] = static_cast<uint32_t>(r);
      g.entries[cursor[cols[e]]++] = e;
    }
  }
  return g;
}

// Per-row dense rank of the current entry values (value desc, column asc),
// written back over the values — RowRankMatrixInPlace restricted to the
// candidate cells. Entry storage is column-ascending, so ranking local
// positions with "position asc" ties reproduces the dense "column asc"
// tie-break.
void RankRowsInPlace(SparseScores* scores) {
  float* values = scores->values();
  const std::vector<size_t>& offsets = scores->row_offsets();
  ParallelFor(0, scores->rows(), 4, [&](size_t row_begin, size_t row_end) {
    std::vector<uint32_t> order;
    for (size_t r = row_begin; r < row_end; ++r) {
      const size_t off = offsets[r];
      const size_t len = offsets[r + 1] - off;
      order.resize(len);
      std::iota(order.begin(), order.end(), 0u);
      float* row = values + off;
      std::sort(order.begin(), order.end(), [row](uint32_t a, uint32_t b) {
        if (row[a] != row[b]) return row[a] > row[b];
        return a < b;
      });
      for (size_t pos = 0; pos < len; ++pos) {
        row[order[pos]] = static_cast<float>(pos + 1);
      }
    }
  });
}

Status SparseCslsInPlace(SparseScores* scores, size_t k) {
  EM_RETURN_NOT_OK(ValidateSparseScores(*scores));
  if (k == 0) return Status::InvalidArgument("CSLS: k must be >= 1");
  const std::vector<float> phi_s = SparseRowTopKMean(*scores, k);
  const std::vector<float> phi_t = SparseColTopKMean(*scores, k);
  float* values = scores->values();
  const uint32_t* cols = scores->col_indices();
  const std::vector<size_t>& offsets = scores->row_offsets();
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float pi = phi_s[i];
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        values[e] = 2.0f * values[e] - pi - phi_t[cols[e]];
      }
    }
  });
  return Status::OK();
}

Status SparseRinfInPlace(SparseScores* scores, size_t k,
                         Workspace* workspace) {
  EM_RETURN_NOT_OK(ValidateSparseScores(*scores));
  if (k == 0) return Status::InvalidArgument("RInf: k must be >= 1");
  const size_t nnz = scores->nnz();
  if (nnz == 0) return Status::OK();

  const std::vector<float> row_stat =
      k == 1 ? SparseRowMax(*scores) : SparseRowTopKMean(*scores, k);
  const std::vector<float> col_stat =
      k == 1 ? SparseColMax(*scores) : SparseColTopKMean(*scores, k);

  float* values = scores->values();
  const std::vector<size_t>& offsets = scores->row_offsets();

  // Reverse preference values P_ts(v, u) = S(u, v) - row_stat[u] + 1, in an
  // nnz-sized lease — the sparse stand-in for the dense m×n reverse table.
  EM_ASSIGN_OR_RETURN(ScratchMatrix r_ts_lease,
                      ScratchMatrix::Acquire(workspace, 1, nnz));
  float* r_ts = r_ts_lease.get().data();
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float shift = 1.0f - row_stat[i];
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        r_ts[e] = values[e] + shift;
      }
    }
  });

  // Rank P_ts per column (value desc, source row asc), overwriting r_ts with
  // the rank — the sparse RowRankMatrixInPlace(&p_ts). The gather slices are
  // disjoint per column, so the column sweep parallelizes deterministically.
  ColumnGather gather = BuildColumnGather(*scores);
  ParallelFor(0, scores->cols(), 4, [&](size_t col_begin, size_t col_end) {
    for (size_t c = col_begin; c < col_end; ++c) {
      uint64_t* list = gather.entries.data() + gather.offsets[c];
      const size_t len = gather.offsets[c + 1] - gather.offsets[c];
      std::sort(list, list + len, [&](uint64_t a, uint64_t b) {
        if (r_ts[a] != r_ts[b]) return r_ts[a] > r_ts[b];
        return gather.row_of[a] < gather.row_of[b];
      });
      for (size_t pos = 0; pos < len; ++pos) {
        r_ts[list[pos]] = static_cast<float>(pos + 1);
      }
    }
  });

  // Forward preferences P_st = S - col_stat + 1 in place, then rank per row.
  const uint32_t* cols = scores->col_indices();
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        values[e] = values[e] - col_stat[cols[e]] + 1.0f;
      }
    }
  });
  RankRowsInPlace(scores);

  // out = -(R_st + R_ts) / 2.
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        values[e] = -0.5f * (values[e] + r_ts[e]);
      }
    }
  });
  return Status::OK();
}

Status SparseRinfWrInPlace(SparseScores* scores) {
  EM_RETURN_NOT_OK(ValidateSparseScores(*scores));
  const std::vector<float> row_max = SparseRowMax(*scores);
  const std::vector<float> col_max = SparseColMax(*scores);
  float* values = scores->values();
  const uint32_t* cols = scores->col_indices();
  const std::vector<size_t>& offsets = scores->row_offsets();
  ParallelFor(0, scores->rows(), 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const float half_row_max = 0.5f * row_max[i];
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        values[e] = values[e] - half_row_max - 0.5f * col_max[cols[e]] + 1.0f;
      }
    }
  });
  return Status::OK();
}

Status SparseRinfPbInPlace(SparseScores* scores, size_t candidates) {
  EM_RETURN_NOT_OK(ValidateSparseScores(*scores));
  if (candidates == 0) {
    return Status::InvalidArgument("RInf-pb: candidates must be >= 1");
  }
  const size_t n = scores->rows();
  const size_t m = scores->cols();
  const size_t c = std::min(candidates, std::min(n, m));
  const size_t nnz = scores->nnz();
  if (nnz == 0) return Status::OK();

  const std::vector<float> row_max = SparseRowMax(*scores);
  const std::vector<float> col_max = SparseColMax(*scores);
  float* values = scores->values();
  const uint32_t* cols = scores->col_indices();
  const std::vector<size_t>& offsets = scores->row_offsets();

  // Top-C candidate entries per source under P_st ordering (= S - col_max),
  // kept as entry ids in preference order.
  std::vector<uint64_t> src_cand(n * c);
  std::vector<size_t> src_len(n, 0);
  ParallelFor(0, n, 8, [&](size_t begin, size_t end) {
    std::vector<float> adjusted;
    std::vector<uint32_t> idx;
    for (size_t i = begin; i < end; ++i) {
      const size_t off = offsets[i];
      const size_t len = offsets[i + 1] - off;
      const size_t keep = std::min(c, len);
      src_len[i] = keep;
      if (keep == 0) continue;
      adjusted.resize(len);
      idx.resize(len);
      for (size_t p = 0; p < len; ++p) {
        adjusted[p] = values[off + p] - col_max[cols[off + p]];
      }
      std::iota(idx.begin(), idx.end(), 0u);
      std::partial_sort(idx.begin(), idx.begin() + keep, idx.end(),
                        [&adjusted](uint32_t a, uint32_t b) {
                          if (adjusted[a] != adjusted[b]) {
                            return adjusted[a] > adjusted[b];
                          }
                          return a < b;
                        });
      for (size_t p = 0; p < keep; ++p) {
        src_cand[i * c + p] = off + idx[p];
      }
    }
  });

  // Top-C source rows per target under P_ts ordering (= S - row_max).
  ColumnGather gather = BuildColumnGather(*scores);
  std::vector<uint32_t> tgt_cand(m * c);
  std::vector<size_t> tgt_len(m, 0);
  ParallelFor(0, m, 8, [&](size_t col_begin, size_t col_end) {
    std::vector<float> adjusted;
    std::vector<uint32_t> idx;
    for (size_t j = col_begin; j < col_end; ++j) {
      const uint64_t* list = gather.entries.data() + gather.offsets[j];
      const size_t len = gather.offsets[j + 1] - gather.offsets[j];
      const size_t keep = std::min(c, len);
      tgt_len[j] = keep;
      if (keep == 0) continue;
      adjusted.resize(len);
      idx.resize(len);
      for (size_t q = 0; q < len; ++q) {
        adjusted[q] = values[list[q]] - row_max[gather.row_of[list[q]]];
      }
      std::iota(idx.begin(), idx.end(), 0u);
      // The gather list is row-ascending, so "position asc" ties equal the
      // dense "source index asc" tie-break.
      std::partial_sort(idx.begin(), idx.begin() + keep, idx.end(),
                        [&adjusted](uint32_t a, uint32_t b) {
                          if (adjusted[a] != adjusted[b]) {
                            return adjusted[a] > adjusted[b];
                          }
                          return a < b;
                        });
      for (size_t q = 0; q < keep; ++q) {
        tgt_cand[j * c + q] = gather.row_of[list[idx[q]]];
      }
    }
  });

  // Reciprocal rank aggregation over the candidate blocks only; entries
  // outside a row's candidate block get the dense sentinel.
  const float sentinel = -2.0f * static_cast<float>(n + m);
  ParallelFor(0, n, 16, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      for (size_t e = offsets[i]; e < offsets[i + 1]; ++e) {
        values[e] = sentinel;
      }
      for (size_t p = 0; p < src_len[i]; ++p) {
        const uint64_t e = src_cand[i * c + p];
        const uint32_t j = cols[e];
        // Rank of source i within target j's candidate list (capped at c+1).
        size_t r_ts = c + 1;
        const uint32_t* tlist = tgt_cand.data() + static_cast<size_t>(j) * c;
        for (size_t q = 0; q < tgt_len[j]; ++q) {
          if (tlist[q] == i) {
            r_ts = q + 1;
            break;
          }
        }
        values[e] =
            -0.5f * (static_cast<float>(p + 1) + static_cast<float>(r_ts));
      }
    }
  });
  return Status::OK();
}

}  // namespace

bool TransformSupportsSparse(ScoreTransformKind kind) {
  switch (kind) {
    case ScoreTransformKind::kNone:
    case ScoreTransformKind::kCsls:
    case ScoreTransformKind::kRinf:
    case ScoreTransformKind::kRinfWr:
    case ScoreTransformKind::kRinfPb:
      return true;
    case ScoreTransformKind::kSinkhorn:
      return false;
  }
  return false;
}

size_t SparseTransformWorkspaceBytes(const MatchOptions& options, size_t nnz) {
  switch (options.transform) {
    case ScoreTransformKind::kRinf:
      return nnz * sizeof(float);  // reverse rank buffer r_ts
    case ScoreTransformKind::kNone:
    case ScoreTransformKind::kCsls:
    case ScoreTransformKind::kRinfWr:
    case ScoreTransformKind::kRinfPb:
    case ScoreTransformKind::kSinkhorn:
      return 0;
  }
  return 0;
}

Status ApplySparseScoreTransformInPlace(SparseScores* scores,
                                        const MatchOptions& options,
                                        Workspace* workspace) {
  switch (options.transform) {
    case ScoreTransformKind::kNone:
      return Status::OK();
    case ScoreTransformKind::kCsls:
      return SparseCslsInPlace(scores, options.csls_k);
    case ScoreTransformKind::kRinf:
      return SparseRinfInPlace(scores, options.rinf_k, workspace);
    case ScoreTransformKind::kRinfWr:
      return SparseRinfWrInPlace(scores);
    case ScoreTransformKind::kRinfPb:
      return SparseRinfPbInPlace(scores, options.rinf_pb_candidates);
    case ScoreTransformKind::kSinkhorn:
      return Status::InvalidArgument(
          "Sinkhorn needs the full coupling matrix; it has no sparse "
          "variant — drop the candidate index for this transform");
  }
  return Status::InvalidArgument("unknown score transform");
}

}  // namespace entmatcher
