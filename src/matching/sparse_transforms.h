#ifndef ENTMATCHER_MATCHING_SPARSE_TRANSFORMS_H_
#define ENTMATCHER_MATCHING_SPARSE_TRANSFORMS_H_

#include <cstddef>

#include "common/status.h"
#include "la/sparse.h"
#include "la/workspace.h"
#include "matching/types.h"

namespace entmatcher {

/// True when `kind` has a sparse (candidate-list) variant. Sinkhorn does not:
/// its row/column normalization couples every cell of the matrix, so a
/// candidate subset changes the result semantics rather than approximating
/// them, and it is refused with kInvalidArgument instead.
bool TransformSupportsSparse(ScoreTransformKind kind);

/// Arena bytes the sparse transform leases beyond the score entries
/// (the dense analog is TransformWorkspaceBytes). Only RInf needs scratch: an
/// nnz-sized rank buffer standing in for the dense m×n reverse table.
size_t SparseTransformWorkspaceBytes(const MatchOptions& options, size_t nnz);

/// Applies options.transform to the CSR entries in place.
///
/// Contract: when every row's candidate list covers the full target set, the
/// transformed entries are bit-identical to the dense transform of the same
/// scores. Each sparse kernel replays its dense counterpart's float
/// expression grouping, accumulation order, and tie-breaking (columns are
/// stored ascending, so entry order equals dense cell order). With partial
/// lists, row/column statistics and ranks are taken over the present entries
/// only — the candidate-restricted semantics of RInf-pb's blocking,
/// generalized to the other transforms.
///
/// Unsupported transforms (Sinkhorn) return kInvalidArgument.
Status ApplySparseScoreTransformInPlace(SparseScores* scores,
                                        const MatchOptions& options,
                                        Workspace* workspace);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_SPARSE_TRANSFORMS_H_
