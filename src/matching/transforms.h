#ifndef ENTMATCHER_MATCHING_TRANSFORMS_H_
#define ENTMATCHER_MATCHING_TRANSFORMS_H_

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Applies the configured score transform to a raw similarity matrix and
/// returns the transformed scores ("higher is better" in every case; rank
/// aggregates are negated internally). `scores` is consumed to keep peak
/// memory at the level the paper attributes to each algorithm.
Result<Matrix> ApplyScoreTransform(Matrix scores, const MatchOptions& options);

// Individual transforms, exposed for unit/property testing. -----------------

/// CSLS (paper Alg. 4): out = 2*S - phi_s - phi_t^T with phi the mean of the
/// top-k scores per row / per column. k >= 1.
Result<Matrix> CslsTransform(Matrix scores, size_t k);

/// RInf (paper Alg. 5): reciprocal preference modeling followed by ranking
/// aggregation; returns -(R_st + R_ts^T)/2 so that higher is better.
/// `k` generalizes Eq. (2)'s max to a top-k mean (k = 1 reproduces the
/// original design; the paper's Appendix C studies k under the non-1-to-1
/// setting).
Result<Matrix> RinfTransform(Matrix scores, size_t k = 1);

/// RInf-wr: reciprocal preference aggregation *without* the ranking step —
/// the memory/time-saving variant of [62]; returns (P_st + P_ts^T)/2.
Result<Matrix> RinfWrTransform(Matrix scores);

/// RInf-pb: reciprocal ranking restricted to each entity's top-`candidates`
/// partners (progressive blocking). Non-candidates receive a sentinel score
/// below every candidate score.
Result<Matrix> RinfPbTransform(Matrix scores, size_t candidates);

/// Sinkhorn (paper Alg. 6 / Eq. 3): out = l rounds of alternating row/column
/// normalization of exp(S / temperature). Approaches a doubly-stochastic
/// matrix as l grows. iterations >= 1, temperature > 0.
Result<Matrix> SinkhornTransform(Matrix scores, size_t iterations,
                                 double temperature);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_TRANSFORMS_H_
