#ifndef ENTMATCHER_MATCHING_TRANSFORMS_H_
#define ENTMATCHER_MATCHING_TRANSFORMS_H_

#include "common/status.h"
#include "la/matrix.h"
#include "la/workspace.h"
#include "matching/types.h"

namespace entmatcher {

// In-place transform stages. -------------------------------------------------
//
// Every transform rewrites the score matrix in place and draws any
// matrix-scale scratch it needs from the caller's Workspace arena (plain
// owned temporaries when `workspace` is null), declaring the requirement up
// front through TransformWorkspaceBytes. This is the engine's hot path: a
// warm MatchEngine runs these stages allocation-free.

/// Matrix-scale scratch bytes the configured transform acquires beyond the
/// score matrix itself, for an (rows × cols) input. O(rows + cols) vector
/// scratch is excluded — only score-matrix-sized buffers count, matching
/// what the paper's memory columns measure (Fig. 5b, Table 6). Used by
/// MatchEngine to pre-check a query against the workspace budget.
size_t TransformWorkspaceBytes(const MatchOptions& options, size_t rows,
                               size_t cols);

/// Applies options.transform to `scores` in place. Bit-identical to the
/// consuming ApplyScoreTransform at every thread count.
Status ApplyScoreTransformInPlace(Matrix* scores, const MatchOptions& options,
                                  Workspace* workspace = nullptr);

/// CSLS (paper Alg. 4): scores := 2*S - phi_s - phi_t^T with phi the mean of
/// the top-k scores per row / per column. k >= 1. No matrix-scale scratch.
Status CslsTransformInPlace(Matrix* scores, size_t k);

/// RInf (paper Alg. 5): reciprocal preference modeling followed by ranking
/// aggregation; scores := -(R_st + R_ts^T)/2 so that higher is better.
/// Needs one cols×rows scratch matrix (the reverse preference table) — the
/// O(n^2) extra buffer the paper charges RInf with. `k` generalizes
/// Eq. (2)'s max to a top-k mean (k = 1 reproduces the original design).
Status RinfTransformInPlace(Matrix* scores, size_t k,
                            Workspace* workspace = nullptr);

/// RInf-wr: reciprocal preference aggregation *without* the ranking step —
/// the memory/time-saving variant of [62]; scores := (P_st + P_ts^T)/2.
/// No matrix-scale scratch (that is the point of the variant).
Status RinfWrTransformInPlace(Matrix* scores);

/// RInf-pb: reciprocal ranking restricted to each entity's top-`candidates`
/// partners (progressive blocking). Non-candidates receive a sentinel score
/// below every candidate score. Candidate lists are O((rows+cols)*candidates)
/// — no matrix-scale scratch.
Status RinfPbTransformInPlace(Matrix* scores, size_t candidates);

/// Sinkhorn (paper Alg. 6 / Eq. 3): l rounds of alternating row/column
/// normalization of exp(S / temperature). Needs one rows×cols scratch matrix
/// (the double buffer that pushes Sinkhorn past the paper's DWY100K memory
/// budget). iterations >= 1, temperature > 0.
Status SinkhornTransformInPlace(Matrix* scores, size_t iterations,
                                double temperature,
                                Workspace* workspace = nullptr);

// Consuming conveniences. ----------------------------------------------------
//
// Thin wrappers over the in-place stages for callers that hold a throwaway
// score matrix (tests, benches, notebooks). `scores` is taken by value and
// rewritten — no hidden second copy.

/// Applies the configured score transform; higher is better in every case.
Result<Matrix> ApplyScoreTransform(Matrix scores, const MatchOptions& options);

Result<Matrix> CslsTransform(Matrix scores, size_t k);
Result<Matrix> RinfTransform(Matrix scores, size_t k = 1);
Result<Matrix> RinfWrTransform(Matrix scores);
Result<Matrix> RinfPbTransform(Matrix scores, size_t candidates);
Result<Matrix> SinkhornTransform(Matrix scores, size_t iterations,
                                 double temperature);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_TRANSFORMS_H_
