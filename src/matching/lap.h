#ifndef ENTMATCHER_MATCHING_LAP_H_
#define ENTMATCHER_MATCHING_LAP_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"

namespace entmatcher {

/// Exact solution of the (minimization) linear assignment problem.
struct LapSolution {
  /// col_of_row[i] = column assigned to row i.
  std::vector<int32_t> col_of_row;
  /// Total cost of the optimal assignment.
  double total_cost = 0.0;
};

/// Solves min sum_i cost(i, col_of_row[i]) over permutations, for a square
/// cost matrix, using the shortest-augmenting-path algorithm with dual
/// potentials (the Jonker–Volgenant family the paper's Hun. baseline uses).
/// O(n^3) time, O(n^2) space — the complexities of Table 2.
Result<LapSolution> SolveLapMin(const Matrix& cost);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_LAP_H_
