#ifndef ENTMATCHER_MATCHING_GREEDY_H_
#define ENTMATCHER_MATCHING_GREEDY_H_

#include "common/status.h"
#include "la/matrix.h"
#include "matching/types.h"

namespace entmatcher {

/// Greedy matching (paper Alg. 2): every source row is matched to its
/// highest-scoring target column. Duplicates are allowed — greedy is
/// unidirectional and does not exert the 1-to-1 constraint (Table 2).
Result<Assignment> GreedyMatch(const Matrix& scores);

}  // namespace entmatcher

#endif  // ENTMATCHER_MATCHING_GREEDY_H_
