#ifndef ENTMATCHER_EVAL_RANKING_METRICS_H_
#define ENTMATCHER_EVAL_RANKING_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "la/matrix.h"

namespace entmatcher {

/// Ranking-quality metrics over a pairwise score matrix: Hits@k is the
/// fraction of test source entities whose gold target appears in their top-k
/// scored candidates (Hits@1 equals the recall of greedy matching — paper
/// Sec. 4.2), MRR the mean reciprocal rank of the first gold target.
///
/// These metrics characterize the *pairwise score* stage in isolation, which
/// is useful when comparing score transforms independently of the matching
/// decision.
struct RankingMetrics {
  double hits_at_1 = 0.0;
  double hits_at_5 = 0.0;
  double hits_at_10 = 0.0;
  double mrr = 0.0;
  /// Source entities evaluated (those with at least one gold target among
  /// the columns).
  size_t evaluated = 0;
};

/// Computes ranking metrics for `scores` (rows = test source candidates,
/// columns = test target candidates of `dataset`, matching its candidate
/// order) against the gold test links.
Result<RankingMetrics> EvaluateRanking(const KgPairDataset& dataset,
                                       const Matrix& scores);

/// Convenience: derives raw cosine scores from `embeddings` over the test
/// candidates, then evaluates the ranking.
Result<RankingMetrics> EvaluateEmbeddingRanking(const KgPairDataset& dataset,
                                                const EmbeddingPair& embeddings);

}  // namespace entmatcher

#endif  // ENTMATCHER_EVAL_RANKING_METRICS_H_
