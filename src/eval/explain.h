#ifndef ENTMATCHER_EVAL_EXPLAIN_H_
#define ENTMATCHER_EVAL_EXPLAIN_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "embedding/embedding.h"
#include "kg/dataset.h"
#include "matching/types.h"

namespace entmatcher {

/// One candidate in a decision trace.
struct CandidateExplanation {
  EntityId target;
  std::string target_name;
  /// Raw cosine similarity.
  float raw_score = 0.0f;
  /// Score after the configured transform.
  float transformed_score = 0.0f;
  /// Rank under the raw scores (1 = best).
  size_t raw_rank = 0;
  /// Rank under the transformed scores.
  size_t transformed_rank = 0;
  /// True if (source, target) is a gold test link.
  bool is_gold = false;
};

/// A per-source-entity decision trace: how the pairwise-score stage ordered
/// the top candidates before and after the transform, and what the matcher
/// finally decided. This realizes the explainability the paper attributes
/// to the embedding-matching stage (Sec. 1, significance point 3): the
/// trace shows exactly why an algorithm switched away from (or stuck with)
/// the raw nearest neighbor.
struct MatchExplanation {
  EntityId source;
  std::string source_name;
  std::vector<CandidateExplanation> candidates;
  /// The target the configured pipeline finally assigned (kUnmatched if
  /// rejected).
  int32_t decided_target_column = Assignment::kUnmatched;
  EntityId decided_target = 0;
  std::string decided_target_name;
  bool decision_is_gold = false;
};

/// Produces decision traces for the given test source entities (ids must be
/// members of dataset.test_source_entities). `top_k` candidates are listed
/// per source. The full pipeline configured by `options` is executed once.
Result<std::vector<MatchExplanation>> ExplainMatches(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::vector<EntityId>& sources,
    size_t top_k = 5);

/// Renders a trace as human-readable text.
std::string FormatExplanation(const MatchExplanation& explanation);

}  // namespace entmatcher

#endif  // ENTMATCHER_EVAL_EXPLAIN_H_
