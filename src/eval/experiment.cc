#include "eval/experiment.h"

#include <algorithm>

#include "common/memory_tracker.h"
#include "common/timer.h"
#include "la/similarity.h"
#include "la/topk.h"

namespace entmatcher {

Result<ExperimentResult> RunExperiment(const KgPairDataset& dataset,
                                       const EmbeddingPair& embeddings,
                                       AlgorithmPreset preset) {
  return RunExperimentWithOptions(dataset, embeddings, MakePreset(preset),
                                  PresetName(preset));
}

Result<ExperimentResult> RunExperimentWithOptions(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::string& algorithm_name) {
  EM_ASSIGN_OR_RETURN(MatchRun run, RunMatching(dataset, embeddings, options));
  ExperimentResult result;
  result.dataset = dataset.name;
  result.algorithm = algorithm_name;
  result.metrics = EvaluatePredictions(run.predicted, dataset.split.test);
  result.seconds = run.seconds;
  result.peak_workspace_bytes = run.peak_workspace_bytes;
  return result;
}

Result<ExperimentSession> ExperimentSession::Create(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    size_t workspace_budget_bytes) {
  if (dataset.test_source_entities.empty() ||
      dataset.test_target_entities.empty()) {
    return Status::FailedPrecondition(
        "ExperimentSession: dataset has no test candidates (call "
        "PopulateTestCandidates)");
  }
  Matrix source = ExtractRows(embeddings.source, dataset.test_source_entities);
  Matrix target = ExtractRows(embeddings.target, dataset.test_target_entities);
  MatchOptions engine_options;
  engine_options.workspace_budget_bytes = workspace_budget_bytes;
  EM_ASSIGN_OR_RETURN(
      MatchEngine engine,
      MatchEngine::Create(std::move(source), std::move(target),
                          engine_options));
  return ExperimentSession(dataset, embeddings,
                           std::make_unique<MatchEngine>(std::move(engine)));
}

Result<ExperimentResult> ExperimentSession::Run(AlgorithmPreset preset) {
  return RunWithOptions(MakePreset(preset), PresetName(preset));
}

Result<ExperimentResult> ExperimentSession::RunWithOptions(
    const MatchOptions& options, const std::string& algorithm_name) {
  if (options.matcher == MatcherKind::kRl) {
    // The RL matcher trains on KG context per run; nothing to amortize.
    return RunExperimentWithOptions(*dataset_, *embeddings_, options,
                                    algorithm_name);
  }

  // Measure exactly like RunMatching: candidates are already extracted, so
  // the baseline starts at the same point and the reported peak matches the
  // one-shot path byte for byte.
  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t baseline_bytes = tracker.current_bytes();
  tracker.ResetPeak();
  Timer timer;

  EM_ASSIGN_OR_RETURN(Assignment assignment, engine_->Match(options));

  const double seconds = timer.ElapsedSeconds();
  const MemoryTracker::Stats stats = tracker.stats();
  const size_t tracked_peak =
      stats.peak_bytes > baseline_bytes ? stats.peak_bytes - baseline_bytes : 0;

  ExperimentResult result;
  result.dataset = dataset_->name;
  result.algorithm = algorithm_name;
  result.metrics = EvaluatePredictions(AssignmentToPairs(*dataset_, assignment),
                                       dataset_->split.test);
  result.seconds = seconds;
  result.peak_workspace_bytes =
      std::max(tracked_peak, engine_->workspace().high_water_bytes());
  return result;
}

Result<double> TopKScoreStd(const KgPairDataset& dataset,
                            const EmbeddingPair& embeddings, size_t k) {
  const Matrix source =
      ExtractRows(embeddings.source, dataset.test_source_entities);
  const Matrix target =
      ExtractRows(embeddings.target, dataset.test_target_entities);
  EM_ASSIGN_OR_RETURN(
      Matrix scores,
      ComputeSimilarity(source, target, SimilarityMetric::kCosine));
  return MeanRowTopKStd(scores, k);
}

}  // namespace entmatcher
