#include "eval/experiment.h"

#include "la/similarity.h"
#include "la/topk.h"

namespace entmatcher {

Result<ExperimentResult> RunExperiment(const KgPairDataset& dataset,
                                       const EmbeddingPair& embeddings,
                                       AlgorithmPreset preset) {
  return RunExperimentWithOptions(dataset, embeddings, MakePreset(preset),
                                  PresetName(preset));
}

Result<ExperimentResult> RunExperimentWithOptions(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::string& algorithm_name) {
  EM_ASSIGN_OR_RETURN(MatchRun run, RunMatching(dataset, embeddings, options));
  ExperimentResult result;
  result.dataset = dataset.name;
  result.algorithm = algorithm_name;
  result.metrics = EvaluatePredictions(run.predicted, dataset.split.test);
  result.seconds = run.seconds;
  result.peak_workspace_bytes = run.peak_workspace_bytes;
  return result;
}

Result<double> TopKScoreStd(const KgPairDataset& dataset,
                            const EmbeddingPair& embeddings, size_t k) {
  const Matrix source =
      ExtractRows(embeddings.source, dataset.test_source_entities);
  const Matrix target =
      ExtractRows(embeddings.target, dataset.test_target_entities);
  EM_ASSIGN_OR_RETURN(
      Matrix scores,
      ComputeSimilarity(source, target, SimilarityMetric::kCosine));
  return MeanRowTopKStd(scores, k);
}

}  // namespace entmatcher
