#include "eval/ranking_metrics.h"

#include <unordered_map>
#include <unordered_set>

#include "la/similarity.h"

namespace entmatcher {

Result<RankingMetrics> EvaluateRanking(const KgPairDataset& dataset,
                                       const Matrix& scores) {
  const auto& src_ids = dataset.test_source_entities;
  const auto& tgt_ids = dataset.test_target_entities;
  if (scores.rows() != src_ids.size() || scores.cols() != tgt_ids.size()) {
    return Status::InvalidArgument(
        "EvaluateRanking: score shape does not match the candidate sets");
  }

  // Gold target columns per source row.
  std::unordered_map<EntityId, uint32_t> col_of_target;
  col_of_target.reserve(tgt_ids.size());
  for (size_t j = 0; j < tgt_ids.size(); ++j) {
    col_of_target.emplace(tgt_ids[j], static_cast<uint32_t>(j));
  }

  RankingMetrics metrics;
  double mrr_sum = 0.0;
  size_t hits1 = 0, hits5 = 0, hits10 = 0;
  for (size_t i = 0; i < src_ids.size(); ++i) {
    std::unordered_set<uint32_t> gold_cols;
    for (EntityId t : dataset.split.test.TargetsOf(src_ids[i])) {
      auto it = col_of_target.find(t);
      if (it != col_of_target.end()) gold_cols.insert(it->second);
    }
    if (gold_cols.empty()) continue;  // unmatchable source
    ++metrics.evaluated;

    // Rank of the best gold column: 1 + number of strictly larger scores
    // (ties resolved optimistically toward earlier columns, matching the
    // deterministic argmax convention).
    const float* row = scores.Row(i).data();
    size_t best_rank = scores.cols() + 1;
    for (uint32_t g : gold_cols) {
      size_t rank = 1;
      const float gold_score = row[g];
      for (size_t j = 0; j < scores.cols(); ++j) {
        if (row[j] > gold_score || (row[j] == gold_score && j < g)) ++rank;
      }
      best_rank = std::min(best_rank, rank);
    }
    if (best_rank <= 1) ++hits1;
    if (best_rank <= 5) ++hits5;
    if (best_rank <= 10) ++hits10;
    mrr_sum += 1.0 / static_cast<double>(best_rank);
  }

  if (metrics.evaluated > 0) {
    const double n = static_cast<double>(metrics.evaluated);
    metrics.hits_at_1 = hits1 / n;
    metrics.hits_at_5 = hits5 / n;
    metrics.hits_at_10 = hits10 / n;
    metrics.mrr = mrr_sum / n;
  }
  return metrics;
}

Result<RankingMetrics> EvaluateEmbeddingRanking(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings) {
  const Matrix src = ExtractRows(embeddings.source, dataset.test_source_entities);
  const Matrix tgt = ExtractRows(embeddings.target, dataset.test_target_entities);
  EM_ASSIGN_OR_RETURN(
      Matrix scores, ComputeSimilarity(src, tgt, SimilarityMetric::kCosine));
  return EvaluateRanking(dataset, scores);
}

}  // namespace entmatcher
