#ifndef ENTMATCHER_EVAL_METRICS_H_
#define ENTMATCHER_EVAL_METRICS_H_

#include <cstddef>

#include "kg/alignment.h"

namespace entmatcher {

/// Alignment quality metrics (paper Sec. 4.2): precision is correct/found,
/// recall is correct/gold (equals Hits@1 in the 1-to-1 setting), F1 their
/// harmonic mean. In the classic setting every method emits one match per
/// test source, so P == R == F1; in the unmatchable and non-1-to-1 settings
/// they diverge, which is exactly what Tables 7 and 8 study.
struct EvalMetrics {
  size_t correct = 0;
  size_t found = 0;
  size_t gold = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores `predicted` entity pairs against the gold test links.
EvalMetrics EvaluatePredictions(const AlignmentSet& predicted,
                                const AlignmentSet& gold_test);

}  // namespace entmatcher

#endif  // ENTMATCHER_EVAL_METRICS_H_
