#include "eval/explain.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/string_util.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "matching/pipeline.h"
#include "matching/transforms.h"

namespace entmatcher {

namespace {

// Rank of column j within row (1 = best), ties to earlier columns.
size_t RankInRow(const Matrix& scores, size_t row, uint32_t j) {
  const float* r = scores.Row(row).data();
  size_t rank = 1;
  const float v = r[j];
  for (size_t c = 0; c < scores.cols(); ++c) {
    if (r[c] > v || (r[c] == v && c < j)) ++rank;
  }
  return rank;
}

}  // namespace

Result<std::vector<MatchExplanation>> ExplainMatches(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::vector<EntityId>& sources,
    size_t top_k) {
  if (options.matcher == MatcherKind::kRl) {
    return Status::InvalidArgument(
        "ExplainMatches supports the deterministic pipelines, not kRl");
  }
  const auto& src_ids = dataset.test_source_entities;
  const auto& tgt_ids = dataset.test_target_entities;

  std::unordered_map<EntityId, size_t> row_of_source;
  for (size_t i = 0; i < src_ids.size(); ++i) row_of_source[src_ids[i]] = i;
  for (EntityId s : sources) {
    if (row_of_source.find(s) == row_of_source.end()) {
      return Status::InvalidArgument(
          "ExplainMatches: entity is not a test source candidate");
    }
  }

  const Matrix src = ExtractRows(embeddings.source, src_ids);
  const Matrix tgt = ExtractRows(embeddings.target, tgt_ids);
  EM_ASSIGN_OR_RETURN(Matrix raw,
                      ComputeSimilarity(src, tgt, options.metric));
  // The explanation reports raw vs transformed side by side, so the one copy
  // of `raw` is inherent; the transform itself runs in place on it.
  Matrix transformed = raw;
  EM_RETURN_NOT_OK(ApplyScoreTransformInPlace(&transformed, options));
  EM_ASSIGN_OR_RETURN(Assignment assignment,
                      MatchScores(transformed, options));

  const size_t k = std::min(top_k, tgt_ids.size());
  std::vector<MatchExplanation> out;
  out.reserve(sources.size());
  for (EntityId s : sources) {
    const size_t row = row_of_source.at(s);
    MatchExplanation ex;
    ex.source = s;
    ex.source_name =
        dataset.source.has_entity_names() ? dataset.source.EntityName(s) : "";

    // Union of the top-k under raw and transformed scores.
    std::vector<uint32_t> cand;
    {
      Matrix raw_row(1, raw.cols());
      std::copy(raw.Row(row).begin(), raw.Row(row).end(),
                raw_row.Row(0).begin());
      Matrix tr_row(1, transformed.cols());
      std::copy(transformed.Row(row).begin(), transformed.Row(row).end(),
                tr_row.Row(0).begin());
      for (uint32_t j : RowTopKIndices(raw_row, k)) cand.push_back(j);
      for (uint32_t j : RowTopKIndices(tr_row, k)) cand.push_back(j);
      std::sort(cand.begin(), cand.end());
      cand.erase(std::unique(cand.begin(), cand.end()), cand.end());
    }
    for (uint32_t j : cand) {
      CandidateExplanation ce;
      ce.target = tgt_ids[j];
      ce.target_name = dataset.target.has_entity_names()
                           ? dataset.target.EntityName(tgt_ids[j])
                           : "";
      ce.raw_score = raw.At(row, j);
      ce.transformed_score = transformed.At(row, j);
      ce.raw_rank = RankInRow(raw, row, j);
      ce.transformed_rank = RankInRow(transformed, row, j);
      ce.is_gold = dataset.split.test.Contains(s, tgt_ids[j]);
      ex.candidates.push_back(ce);
    }
    std::sort(ex.candidates.begin(), ex.candidates.end(),
              [](const CandidateExplanation& a, const CandidateExplanation& b) {
                return a.transformed_rank < b.transformed_rank;
              });

    ex.decided_target_column = assignment.target_of_source[row];
    if (ex.decided_target_column != Assignment::kUnmatched) {
      ex.decided_target = tgt_ids[static_cast<size_t>(ex.decided_target_column)];
      ex.decided_target_name = dataset.target.has_entity_names()
                                   ? dataset.target.EntityName(ex.decided_target)
                                   : "";
      ex.decision_is_gold = dataset.split.test.Contains(s, ex.decided_target);
    }
    out.push_back(std::move(ex));
  }
  return out;
}

std::string FormatExplanation(const MatchExplanation& explanation) {
  std::ostringstream os;
  os << "source entity " << explanation.source;
  if (!explanation.source_name.empty()) {
    os << " ('" << explanation.source_name << "')";
  }
  os << "\n";
  for (const CandidateExplanation& c : explanation.candidates) {
    os << "  cand " << c.target;
    if (!c.target_name.empty()) os << " ('" << c.target_name << "')";
    os << ": raw=" << FormatDouble(c.raw_score, 3) << " (rank " << c.raw_rank
       << ") -> transformed=" << FormatDouble(c.transformed_score, 3)
       << " (rank " << c.transformed_rank << ")" << (c.is_gold ? "  [GOLD]" : "")
       << "\n";
  }
  if (explanation.decided_target_column == Assignment::kUnmatched) {
    os << "  decision: NO MATCH (rejected)\n";
  } else {
    os << "  decision: " << explanation.decided_target;
    if (!explanation.decided_target_name.empty()) {
      os << " ('" << explanation.decided_target_name << "')";
    }
    os << (explanation.decision_is_gold ? "  [CORRECT]" : "  [WRONG]") << "\n";
  }
  return os.str();
}

}  // namespace entmatcher
