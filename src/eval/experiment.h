#ifndef ENTMATCHER_EVAL_EXPERIMENT_H_
#define ENTMATCHER_EVAL_EXPERIMENT_H_

#include <string>

#include "common/status.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "kg/dataset.h"
#include "matching/pipeline.h"

namespace entmatcher {

/// One (dataset, embedding, algorithm) measurement — a cell of the paper's
/// result tables plus its efficiency columns.
struct ExperimentResult {
  std::string dataset;
  std::string algorithm;
  EvalMetrics metrics;
  double seconds = 0.0;
  size_t peak_workspace_bytes = 0;
};

/// Runs one algorithm preset on a dataset with precomputed embeddings and
/// evaluates against the gold test links.
Result<ExperimentResult> RunExperiment(const KgPairDataset& dataset,
                                       const EmbeddingPair& embeddings,
                                       AlgorithmPreset preset);

/// Same, with explicit options (for parameter sweeps such as Figs. 6/7).
Result<ExperimentResult> RunExperimentWithOptions(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::string& algorithm_name);

/// The statistic behind the paper's Figure 4: the mean standard deviation of
/// each test source entity's top-k raw cosine similarity scores.
Result<double> TopKScoreStd(const KgPairDataset& dataset,
                            const EmbeddingPair& embeddings, size_t k = 5);

}  // namespace entmatcher

#endif  // ENTMATCHER_EVAL_EXPERIMENT_H_
