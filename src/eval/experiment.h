#ifndef ENTMATCHER_EVAL_EXPERIMENT_H_
#define ENTMATCHER_EVAL_EXPERIMENT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "kg/dataset.h"
#include "matching/engine.h"
#include "matching/pipeline.h"

namespace entmatcher {

/// One (dataset, embedding, algorithm) measurement — a cell of the paper's
/// result tables plus its efficiency columns.
struct ExperimentResult {
  std::string dataset;
  std::string algorithm;
  EvalMetrics metrics;
  double seconds = 0.0;
  size_t peak_workspace_bytes = 0;
};

/// Runs one algorithm preset on a dataset with precomputed embeddings and
/// evaluates against the gold test links.
Result<ExperimentResult> RunExperiment(const KgPairDataset& dataset,
                                       const EmbeddingPair& embeddings,
                                       AlgorithmPreset preset);

/// Same, with explicit options (for parameter sweeps such as Figs. 6/7).
Result<ExperimentResult> RunExperimentWithOptions(
    const KgPairDataset& dataset, const EmbeddingPair& embeddings,
    const MatchOptions& options, const std::string& algorithm_name);

/// A reusable experiment session over one (dataset, embeddings) pair: the
/// test candidates are extracted once and one MatchEngine is shared by every
/// preset run, so a full table row (Tables 4/6: seven-plus presets on the
/// same dataset) reuses the same score/scratch buffers instead of
/// reallocating them per cell. Results — metrics, seconds, and
/// peak_workspace_bytes — are identical to per-cell RunExperiment calls
/// (arena leases account like fresh buffers).
///
/// `dataset` and `embeddings` must outlive the session.
class ExperimentSession {
 public:
  /// Extracts the test candidates and prepares the engine.
  /// `workspace_budget_bytes` arms the engine's hard memory cap (0 =
  /// unlimited): presets that cannot fit fail their Run with a clean
  /// kResourceExhausted — Table 6's "Mem: No" verdict as a real error.
  static Result<ExperimentSession> Create(const KgPairDataset& dataset,
                                          const EmbeddingPair& embeddings,
                                          size_t workspace_budget_bytes = 0);

  /// Runs one preset through the shared engine and evaluates against gold.
  Result<ExperimentResult> Run(AlgorithmPreset preset);

  /// Same, with explicit options (parameter sweeps). kRl falls back to a
  /// fresh RunMatching (the RL matcher needs KG context, not an engine).
  /// The session's budget (fixed at Create) applies, not
  /// options.workspace_budget_bytes.
  Result<ExperimentResult> RunWithOptions(const MatchOptions& options,
                                          const std::string& algorithm_name);

  const MatchEngine& engine() const { return *engine_; }

 private:
  ExperimentSession(const KgPairDataset& dataset,
                    const EmbeddingPair& embeddings,
                    std::unique_ptr<MatchEngine> engine)
      : dataset_(&dataset), embeddings_(&embeddings),
        engine_(std::move(engine)) {}

  const KgPairDataset* dataset_;
  const EmbeddingPair* embeddings_;  // for the kRl fallback
  std::unique_ptr<MatchEngine> engine_;
};

/// The statistic behind the paper's Figure 4: the mean standard deviation of
/// each test source entity's top-k raw cosine similarity scores.
Result<double> TopKScoreStd(const KgPairDataset& dataset,
                            const EmbeddingPair& embeddings, size_t k = 5);

}  // namespace entmatcher

#endif  // ENTMATCHER_EVAL_EXPERIMENT_H_
