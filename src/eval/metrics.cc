#include "eval/metrics.h"

namespace entmatcher {

EvalMetrics EvaluatePredictions(const AlignmentSet& predicted,
                                const AlignmentSet& gold_test) {
  EvalMetrics metrics;
  metrics.found = predicted.size();
  metrics.gold = gold_test.size();
  for (const EntityPair& pair : predicted.pairs()) {
    if (gold_test.Contains(pair.source, pair.target)) ++metrics.correct;
  }
  if (metrics.found > 0) {
    metrics.precision =
        static_cast<double>(metrics.correct) / static_cast<double>(metrics.found);
  }
  if (metrics.gold > 0) {
    metrics.recall =
        static_cast<double>(metrics.correct) / static_cast<double>(metrics.gold);
  }
  if (metrics.precision + metrics.recall > 0.0) {
    metrics.f1 = 2.0 * metrics.precision * metrics.recall /
                 (metrics.precision + metrics.recall);
  }
  return metrics;
}

}  // namespace entmatcher
