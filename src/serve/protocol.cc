#include "serve/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/json.h"
#include "common/string_util.h"

namespace entmatcher {

namespace {

// write(2) for sockets, with SIGPIPE suppressed: a peer that disconnects
// mid-frame must surface as an EPIPE IoError the caller can handle, not kill
// the process. Pipes/regular files (the protocol tests) reject MSG_NOSIGNAL
// with ENOTSOCK, so fall back to plain write there.
ssize_t WriteChunk(int fd, const char* data, size_t size) {
  const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
  if (n < 0 && errno == ENOTSOCK) return ::write(fd, data, size);
  return n;
}

Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    // Chaos points: abort the write mid-frame (peer disconnect), or force
    // 1-byte chunks so every short-write path is exercised.
    EM_INJECT_FAULT("socket.write", StatusCode::kIoError);
    size_t chunk = size - written;
    if (const uint64_t forced = EM_FAULT_PARAM("socket.write.chunk");
        forced > 0 && forced < chunk) {
      chunk = static_cast<size_t>(forced);
    }
    const ssize_t n = WriteChunk(fd, data + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("write: ") + std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

// Reads exactly `size` bytes; `any_read` distinguishes clean EOF (peer
// closed between frames) from a truncated frame.
Status ReadAll(int fd, char* data, size_t size, bool* any_read) {
  size_t filled = 0;
  while (filled < size) {
    // Chaos points: fail the read (stalled/broken peer; pair with
    // latency_us= for a stall), or force 1-byte chunks.
    EM_INJECT_FAULT("socket.read", StatusCode::kIoError);
    size_t chunk = size - filled;
    if (const uint64_t forced = EM_FAULT_PARAM("socket.read.chunk");
        forced > 0 && forced < chunk) {
      chunk = static_cast<size_t>(forced);
    }
    const ssize_t n = ::read(fd, data + filled, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("read: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (filled == 0 && !*any_read) {
        return Status::NotFound("connection closed");
      }
      return Status::IoError("connection closed mid-frame");
    }
    *any_read = true;
    filled += static_cast<size_t>(n);
  }
  return Status::OK();
}

void AppendUint32Le(std::string* out, uint32_t value) {
  out->push_back(static_cast<char>(value & 0xff));
  out->push_back(static_cast<char>((value >> 8) & 0xff));
  out->push_back(static_cast<char>((value >> 16) & 0xff));
  out->push_back(static_cast<char>((value >> 24) & 0xff));
}

uint32_t ReadUint32Le(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return static_cast<uint32_t>(bytes[0]) |
         (static_cast<uint32_t>(bytes[1]) << 8) |
         (static_cast<uint32_t>(bytes[2]) << 16) |
         (static_cast<uint32_t>(bytes[3]) << 24);
}

Result<uint64_t> ParseUint(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty number");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("bad number: " + std::string(text));
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

// Splits on single spaces, dropping empties.
std::vector<std::string_view> Tokens(std::string_view line) {
  std::vector<std::string_view> out;
  for (std::string_view token : SplitString(line, ' ')) {
    if (!token.empty()) out.push_back(token);
  }
  return out;
}

// Parses "LO:HI" with LO < HI — an empty routed range answers nothing and
// only ever signals a router bug, so it is refused at parse time.
Status ParseRange(std::string_view text, size_t* begin, size_t* end) {
  const size_t colon = text.find(':');
  if (colon == std::string_view::npos) {
    return Status::InvalidArgument("range must be LO:HI, got " +
                                   std::string(text));
  }
  EM_ASSIGN_OR_RETURN(const uint64_t lo, ParseUint(text.substr(0, colon)));
  EM_ASSIGN_OR_RETURN(const uint64_t hi, ParseUint(text.substr(colon + 1)));
  if (lo >= hi) {
    return Status::InvalidArgument("range is empty or inverted: " +
                                   std::string(text));
  }
  *begin = static_cast<size_t>(lo);
  *end = static_cast<size_t>(hi);
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame payload too large");
  }
  std::string frame;
  frame.reserve(4 + payload.size());
  AppendUint32Le(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return WriteAll(fd, frame.data(), frame.size());
}

Result<std::string> ReadFrame(int fd) {
  char header[4];
  bool any_read = false;
  EM_RETURN_NOT_OK(ReadAll(fd, header, sizeof(header), &any_read));
  const uint32_t length = ReadUint32Le(header);
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds the cap");
  }
  std::string payload(length, '\0');
  if (length > 0) {
    EM_RETURN_NOT_OK(ReadAll(fd, payload.data(), length, &any_read));
  }
  return payload;
}

Result<AlgorithmPreset> ParseServableAlgorithm(std::string_view name) {
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kRinfWr, AlgorithmPreset::kRinfPb,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
        AlgorithmPreset::kStableMatch}) {
    if (name == PresetName(preset)) return preset;
  }
  if (name == PresetName(AlgorithmPreset::kRl)) {
    return Status::InvalidArgument(
        "RL needs KG context and cannot be served; use entmatcher_cli match");
  }
  return Status::InvalidArgument("unknown algorithm: " + std::string(name));
}

std::string EncodeRequest(const WireRequest& request) {
  std::string line;
  switch (request.verb) {
    case WireRequest::Verb::kMatch:
      line = "match " + std::string(PresetName(request.algorithm));
      break;
    case WireRequest::Verb::kTopK:
      line = "topk " + std::string(PresetName(request.algorithm)) + " " +
             std::to_string(request.k);
      break;
    case WireRequest::Verb::kStats:
      return "stats";
    case WireRequest::Verb::kHealth:
      return "health";
    case WireRequest::Verb::kHello:
      return "hello";
    case WireRequest::Verb::kShards:
      return "shards";
    case WireRequest::Verb::kShutdown:
      return "shutdown";
    case WireRequest::Verb::kSwap:
      line = "swap " + request.pair + " " + request.source_path + " " +
             request.target_path;
      if (!request.index_path.empty()) {
        line += " index=" + request.index_path;
      }
      if (request.swap_min_version > 0) {
        line += " version=" + std::to_string(request.swap_min_version);
      }
      return line;
  }
  if (request.route) {
    // Routed sub-queries front-load the pair and range so the shard grammar
    // stays prefix-decodable: "route <pair> <lo>:<hi> <match|topk> ...".
    line = "route " + (request.pair.empty() ? "default" : request.pair) + " " +
           std::to_string(request.row_begin) + ":" +
           std::to_string(request.row_end) + " " + line;
  } else if (!request.pair.empty()) {
    line += " pair=" + request.pair;
  }
  if (request.timeout_micros > 0) {
    line += " timeout_us=" + std::to_string(request.timeout_micros);
  }
  return line;
}

Result<WireRequest> ParseRequest(std::string_view payload) {
  std::vector<std::string_view> tokens = Tokens(payload);
  if (tokens.empty()) return Status::InvalidArgument("empty request");
  WireRequest request;
  if (tokens[0] == "route") {
    // "route <pair> <lo>:<hi> <match|topk> ..." — strip the routing prefix
    // and fall through to the ordinary match/topk grammar below.
    if (tokens.size() < 4) {
      return Status::InvalidArgument(
          "route needs: route <pair> <lo>:<hi> <match|topk> ...");
    }
    request.route = true;
    request.pair = std::string(tokens[1]);
    EM_RETURN_NOT_OK(
        ParseRange(tokens[2], &request.row_begin, &request.row_end));
    tokens.erase(tokens.begin(), tokens.begin() + 3);
    if (tokens[0] != "match" && tokens[0] != "topk") {
      return Status::InvalidArgument("route wraps match or topk, got " +
                                     std::string(tokens[0]));
    }
  }
  size_t next = 1;
  if (tokens[0] == "stats") {
    request.verb = WireRequest::Verb::kStats;
  } else if (tokens[0] == "health") {
    request.verb = WireRequest::Verb::kHealth;
  } else if (tokens[0] == "hello") {
    request.verb = WireRequest::Verb::kHello;
  } else if (tokens[0] == "shards") {
    request.verb = WireRequest::Verb::kShards;
  } else if (tokens[0] == "shutdown") {
    request.verb = WireRequest::Verb::kShutdown;
  } else if (tokens[0] == "swap") {
    request.verb = WireRequest::Verb::kSwap;
    if (tokens.size() < 4) {
      return Status::InvalidArgument(
          "swap needs: swap <pair> <source_path> <target_path> [index=PATH]");
    }
    request.pair = std::string(tokens[1]);
    request.source_path = std::string(tokens[2]);
    request.target_path = std::string(tokens[3]);
    next = 4;
    while (next < tokens.size()) {
      const std::string_view kIndex = "index=";
      const std::string_view kVersion = "version=";
      if (StartsWith(tokens[next], kIndex)) {
        request.index_path = std::string(tokens[next].substr(kIndex.size()));
        if (request.index_path.empty()) {
          return Status::InvalidArgument("index= needs a path");
        }
        ++next;
        continue;
      }
      if (StartsWith(tokens[next], kVersion)) {
        EM_ASSIGN_OR_RETURN(
            request.swap_min_version,
            ParseUint(tokens[next].substr(kVersion.size())));
        ++next;
        continue;
      }
      break;
    }
  } else if (tokens[0] == "match" || tokens[0] == "topk") {
    request.verb = tokens[0] == "match" ? WireRequest::Verb::kMatch
                                        : WireRequest::Verb::kTopK;
    if (tokens.size() < 2) {
      return Status::InvalidArgument("missing algorithm name");
    }
    EM_ASSIGN_OR_RETURN(request.algorithm,
                        ParseServableAlgorithm(tokens[1]));
    next = 2;
    if (request.verb == WireRequest::Verb::kTopK) {
      if (tokens.size() < 3) return Status::InvalidArgument("missing k");
      EM_ASSIGN_OR_RETURN(const uint64_t k, ParseUint(tokens[2]));
      if (k == 0) return Status::InvalidArgument("k must be >= 1");
      request.k = static_cast<size_t>(k);
      next = 3;
    }
  } else {
    return Status::InvalidArgument("unknown verb: " + std::string(tokens[0]));
  }
  for (; next < tokens.size(); ++next) {
    const std::string_view token = tokens[next];
    const std::string_view kTimeout = "timeout_us=";
    const std::string_view kPair = "pair=";
    if (StartsWith(token, kTimeout)) {
      EM_ASSIGN_OR_RETURN(request.timeout_micros,
                          ParseUint(token.substr(kTimeout.size())));
    } else if (StartsWith(token, kPair) &&
               (request.verb == WireRequest::Verb::kMatch ||
                request.verb == WireRequest::Verb::kTopK)) {
      if (request.route) {
        return Status::InvalidArgument(
            "route already names the pair; pair= is not allowed");
      }
      request.pair = std::string(token.substr(kPair.size()));
      if (request.pair.empty()) {
        return Status::InvalidArgument("pair= needs a name");
      }
    } else {
      return Status::InvalidArgument("unknown option: " + std::string(token));
    }
  }
  return request;
}

std::string EncodeValuesResponse(
    const std::vector<int32_t>& values, uint64_t version, bool has_range,
    size_t row_begin, size_t row_end, const std::vector<float>& scores,
    const std::vector<std::pair<size_t, size_t>>& coverage) {
  std::string payload = "ok values " + std::to_string(values.size());
  if (version > 0) payload += " version=" + std::to_string(version);
  if (has_range) {
    payload += " range=" + std::to_string(row_begin) + ":" +
               std::to_string(row_end);
  }
  if (!scores.empty()) payload += " scores=" + std::to_string(scores.size());
  if (!coverage.empty()) {
    payload += " coverage=";
    for (size_t i = 0; i < coverage.size(); ++i) {
      if (i > 0) payload += ",";
      payload += std::to_string(coverage[i].first);
      payload += ":";
      payload += std::to_string(coverage[i].second);
    }
  }
  payload += "\n";
  payload.reserve(payload.size() + values.size() * 4 + scores.size() * 4);
  for (int32_t value : values) {
    AppendUint32Le(&payload, static_cast<uint32_t>(value));
  }
  for (float score : scores) {
    // Bit pattern, not a decimal rendering: routed topk merges must compare
    // exactly the floats the shard computed.
    uint32_t bits;
    std::memcpy(&bits, &score, sizeof(bits));
    AppendUint32Le(&payload, bits);
  }
  return payload;
}

std::string EncodeTextResponse(std::string_view text) {
  return "ok text\n" + std::string(text);
}

std::string EncodeErrorResponse(const Status& status,
                                uint64_t retry_after_micros) {
  std::string payload =
      "error " + std::string(StatusCodeToString(status.code()));
  if (retry_after_micros > 0) {
    payload += " retry_after_us=" + std::to_string(retry_after_micros);
  }
  payload += " " + status.message();
  return payload;
}

Result<WireResponse> ParseResponse(std::string_view payload) {
  WireResponse response;
  if (StartsWith(payload, "error ")) {
    std::string_view rest = payload.substr(6);
    const size_t space = rest.find(' ');
    const std::string_view code_name =
        space == std::string_view::npos ? rest : rest.substr(0, space);
    std::string_view message =
        space == std::string_view::npos ? std::string_view()
                                        : rest.substr(space + 1);
    const std::string_view kRetryAfter = "retry_after_us=";
    if (StartsWith(message, kRetryAfter)) {
      const size_t hint_end = message.find(' ');
      const std::string_view hint =
          (hint_end == std::string_view::npos ? message
                                              : message.substr(0, hint_end))
              .substr(kRetryAfter.size());
      EM_ASSIGN_OR_RETURN(response.retry_after_micros, ParseUint(hint));
      message = hint_end == std::string_view::npos
                    ? std::string_view()
                    : message.substr(hint_end + 1);
    }
    StatusCode code = StatusCodeFromString(code_name);
    if (code == StatusCode::kOk) code = StatusCode::kInternal;
    response.status = Status(code, std::string(message));
    return response;
  }
  const size_t newline = payload.find('\n');
  const std::string_view header =
      newline == std::string_view::npos ? payload : payload.substr(0, newline);
  const std::string_view body =
      newline == std::string_view::npos ? std::string_view()
                                        : payload.substr(newline + 1);
  if (header == "ok text") {
    response.text = std::string(body);
    return response;
  }
  if (StartsWith(header, "ok values ")) {
    const std::vector<std::string_view> fields = Tokens(header.substr(10));
    if (fields.empty()) {
      return Status::InvalidArgument("values header missing count");
    }
    EM_ASSIGN_OR_RETURN(const uint64_t count, ParseUint(fields[0]));
    uint64_t score_count = 0;
    for (size_t i = 1; i < fields.size(); ++i) {
      const std::string_view kVersion = "version=";
      const std::string_view kRange = "range=";
      const std::string_view kScores = "scores=";
      const std::string_view kCoverage = "coverage=";
      if (StartsWith(fields[i], kVersion)) {
        EM_ASSIGN_OR_RETURN(response.version,
                            ParseUint(fields[i].substr(kVersion.size())));
      } else if (StartsWith(fields[i], kRange)) {
        EM_RETURN_NOT_OK(ParseRange(fields[i].substr(kRange.size()),
                                    &response.row_begin, &response.row_end));
        response.has_range = true;
      } else if (StartsWith(fields[i], kScores)) {
        EM_ASSIGN_OR_RETURN(score_count,
                            ParseUint(fields[i].substr(kScores.size())));
      } else if (StartsWith(fields[i], kCoverage)) {
        std::string_view list = fields[i].substr(kCoverage.size());
        while (!list.empty()) {
          const size_t comma = list.find(',');
          const std::string_view item =
              comma == std::string_view::npos ? list : list.substr(0, comma);
          size_t lo = 0;
          size_t hi = 0;
          EM_RETURN_NOT_OK(ParseRange(item, &lo, &hi));
          response.coverage.push_back({lo, hi});
          list = comma == std::string_view::npos ? std::string_view()
                                                 : list.substr(comma + 1);
        }
        if (response.coverage.empty()) {
          return Status::InvalidArgument("coverage= carries no ranges");
        }
      } else {
        return Status::InvalidArgument("unknown values header field: " +
                                       std::string(fields[i]));
      }
    }
    if (body.size() != (count + score_count) * 4) {
      return Status::InvalidArgument(
          "values payload is " + std::to_string(body.size()) +
          " B, expected " + std::to_string((count + score_count) * 4));
    }
    response.values.reserve(count);
    for (uint64_t i = 0; i < count; ++i) {
      response.values.push_back(
          static_cast<int32_t>(ReadUint32Le(body.data() + i * 4)));
    }
    response.scores.reserve(score_count);
    for (uint64_t i = 0; i < score_count; ++i) {
      const uint32_t bits = ReadUint32Le(body.data() + (count + i) * 4);
      float score;
      std::memcpy(&score, &bits, sizeof(score));
      response.scores.push_back(score);
    }
    return response;
  }
  return Status::InvalidArgument("unparseable response header: " +
                                 std::string(header));
}

std::string HelloJson(std::string_view role) {
  return "{\"protocol\":" + std::to_string(kProtocolVersion) +
         ",\"build\":" + JsonEscape(EM_BUILD_VERSION) +
         ",\"role\":" + JsonEscape(role) + "}";
}

Status CheckHello(std::string_view hello_json, std::string_view peer_name) {
  auto parsed = JsonValue::Parse(hello_json);
  if (!parsed.ok()) {
    return Status::FailedPrecondition(
        std::string(peer_name) +
        ": unparseable hello payload (pre-v2 peer?): " +
        parsed.status().message());
  }
  auto protocol = parsed.value().GetInt("protocol");
  if (!protocol.ok()) {
    return Status::FailedPrecondition(std::string(peer_name) +
                                      ": hello carries no protocol field");
  }
  if (protocol.value() != kProtocolVersion) {
    return Status::FailedPrecondition(
        std::string(peer_name) + ": protocol mismatch: peer speaks v" +
        std::to_string(protocol.value()) + ", this build speaks v" +
        std::to_string(kProtocolVersion));
  }
  return Status::OK();
}

}  // namespace entmatcher
