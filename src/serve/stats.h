#ifndef ENTMATCHER_SERVE_STATS_H_
#define ENTMATCHER_SERVE_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace entmatcher {

/// A point-in-time copy of a MatchServer's serving counters, safe to read
/// after the server moved on. Exposed in-process via MatchServer::Stats()
/// and over the wire via the `stats` query.
struct ServerStatsSnapshot {
  /// Admission outcomes. submitted == admitted + rejected; every admitted
  /// request ends up in exactly one of timed_out / completed / failed.
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;

  /// Overload outcomes. `shed` counts rejections due to load (queue full or
  /// above the shed watermark) — a subset of `rejected`, so the admission
  /// invariant is untouched. `degraded` counts admitted requests rewritten
  /// onto the sparse candidate path — a subset of `admitted`.
  uint64_t shed = 0;
  uint64_t degraded = 0;

  /// Requests waiting in the queue when the snapshot was taken, and the
  /// deepest the queue has ever been.
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth = 0;

  /// One batch == one similarity+transform pass over the score matrix, so
  /// `batches` is the total number of kernel passes the server paid;
  /// sequential execution would have paid one per executed query.
  uint64_t batches = 0;
  /// Queries that shared their pass with at least one other query.
  uint64_t batched_queries = 0;
  /// batch_size_hist[i] counts batches of size i+1; the last bucket absorbs
  /// anything larger.
  std::vector<uint64_t> batch_size_hist;

  /// Cross-request result cache: answers served without any pipeline work,
  /// probes that fell through to execution, entries evicted by the byte
  /// budget, and the bytes held when the snapshot was taken. All zero when
  /// the cache is disabled (result_cache_bytes budget 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  uint64_t result_cache_bytes = 0;

  /// Successful snapshot publications after the initial load (SwapPair).
  uint64_t snapshot_swaps = 0;

  /// (pair name, current snapshot version), sorted by name — sampled from
  /// the registry by MatchServer::Stats so routers and tests can assert
  /// version state remotely.
  std::vector<std::pair<std::string, uint64_t>> pair_versions;

  /// End-to-end latency (enqueue to response) percentiles, from a log-scale
  /// histogram: values are upper bucket bounds, exact to within 2x.
  uint64_t latency_samples = 0;
  double latency_p50_micros = 0.0;
  double latency_p99_micros = 0.0;
  double latency_max_micros = 0.0;
  double latency_mean_micros = 0.0;

  /// Renders the snapshot as a JSON object (the `stats` query's payload and
  /// the bench's per-mode record).
  std::string ToJson() const;
};

/// Thread-safe serving counters: admission outcomes, batch-size histogram,
/// and a log2-bucketed latency histogram for p50/p99 without storing samples.
///
/// Lock-free by construction: every counter is an atomic, so the writers —
/// admission on any client thread, the scheduler, K pool workers — and a
/// concurrent `stats` query never contend and never race (the pre-refactor
/// implementation guarded a plain struct with a mutex that the read path
/// could bypass; the stats read-storm regression test pins this under
/// TSan). The ledger invariants (submitted == admitted + rejected,
/// admitted == timed_out + completed + failed) are exact at quiescent
/// points — after Shutdown, when all writers are joined. A mid-flight
/// Snapshot additionally never violates them *directionally* (submitted >=
/// admitted + rejected, admitted >= terminal outcomes): each record method
/// bumps the dependent counter with release ordering after its
/// prerequisite, and Snapshot loads in reverse-dependency order with
/// acquire — seeing the Nth admitted increment therefore guarantees seeing
/// at least N submitted increments. Everything else stays relaxed.
class ServerStats {
 public:
  /// `max_batch` sizes the batch histogram (one bucket per size 1..max).
  explicit ServerStats(size_t max_batch);

  void RecordRejected();
  void RecordAdmitted(size_t queue_depth_after);
  void RecordTimedOut();
  /// A load-shed rejection (always paired with RecordRejected).
  void RecordShed();
  /// An admitted request degraded to the sparse path (paired with
  /// RecordAdmitted).
  void RecordDegraded();
  /// One executed batch of `size` queries (one scores pass). Returns the
  /// batch's 1-based id — unique across workers, surfaced as
  /// ServeResponse::batch_id so tests can assert batch membership (e.g. no
  /// mixed-snapshot batch) from responses alone.
  uint64_t RecordBatch(size_t size);
  /// One finished query: outcome plus its enqueue-to-response latency.
  void RecordDone(bool ok, double latency_micros);
  /// A result-cache probe outcome.
  void RecordCacheHit();
  void RecordCacheMiss();
  /// A successful hot swap (snapshot publish after the initial load).
  void RecordSwap();

  /// `cache_evictions`/`cache_bytes` are sampled by the caller (the cache
  /// owns them), like `queue_depth_now`.
  ServerStatsSnapshot Snapshot(size_t queue_depth_now,
                               uint64_t cache_evictions = 0,
                               size_t cache_bytes = 0) const;

 private:
  // Buckets cover [2^i, 2^(i+1)) microseconds; 32 buckets reach ~1.2 hours.
  static constexpr size_t kLatencyBuckets = 32;

  /// fetch_max for an atomic double via compare-exchange (no std::atomic
  /// fetch_max; relaxed is fine, see class comment).
  static void UpdateMax(std::atomic<double>* target, double value);

  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> timed_out_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> degraded_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> batched_queries_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  std::atomic<uint64_t> snapshot_swaps_{0};

  const size_t batch_hist_size_;
  std::unique_ptr<std::atomic<uint64_t>[]> batch_size_hist_;

  std::atomic<uint64_t> latency_samples_{0};
  std::array<std::atomic<uint64_t>, kLatencyBuckets> latency_hist_{};
  std::atomic<double> latency_max_micros_{0.0};
  std::atomic<double> latency_sum_micros_{0.0};
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_STATS_H_
