#ifndef ENTMATCHER_SERVE_STATS_H_
#define ENTMATCHER_SERVE_STATS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace entmatcher {

/// A point-in-time copy of a MatchServer's serving counters, safe to read
/// after the server moved on. Exposed in-process via MatchServer::Stats()
/// and over the wire via the `stats` query.
struct ServerStatsSnapshot {
  /// Admission outcomes. submitted == admitted + rejected; every admitted
  /// request ends up in exactly one of timed_out / completed / failed.
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t timed_out = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;

  /// Overload outcomes. `shed` counts rejections due to load (queue full or
  /// above the shed watermark) — a subset of `rejected`, so the admission
  /// invariant is untouched. `degraded` counts admitted requests rewritten
  /// onto the sparse candidate path — a subset of `admitted`.
  uint64_t shed = 0;
  uint64_t degraded = 0;

  /// Requests waiting in the queue when the snapshot was taken, and the
  /// deepest the queue has ever been.
  uint64_t queue_depth = 0;
  uint64_t max_queue_depth = 0;

  /// One batch == one similarity+transform pass over the score matrix, so
  /// `batches` is the total number of kernel passes the server paid;
  /// sequential execution would have paid one per executed query.
  uint64_t batches = 0;
  /// Queries that shared their pass with at least one other query.
  uint64_t batched_queries = 0;
  /// batch_size_hist[i] counts batches of size i+1; the last bucket absorbs
  /// anything larger.
  std::vector<uint64_t> batch_size_hist;

  /// End-to-end latency (enqueue to response) percentiles, from a log-scale
  /// histogram: values are upper bucket bounds, exact to within 2x.
  uint64_t latency_samples = 0;
  double latency_p50_micros = 0.0;
  double latency_p99_micros = 0.0;
  double latency_max_micros = 0.0;
  double latency_mean_micros = 0.0;

  /// Renders the snapshot as a JSON object (the `stats` query's payload and
  /// the bench's per-mode record).
  std::string ToJson() const;
};

/// Thread-safe serving counters: admission outcomes, batch-size histogram,
/// and a log2-bucketed latency histogram for p50/p99 without storing samples.
/// Writers are the admission path (any client thread) and the scheduler;
/// Snapshot() may be called from anywhere.
class ServerStats {
 public:
  /// `max_batch` sizes the batch histogram (one bucket per size 1..max).
  explicit ServerStats(size_t max_batch);

  void RecordRejected();
  void RecordAdmitted(size_t queue_depth_after);
  void RecordTimedOut();
  /// A load-shed rejection (always paired with RecordRejected).
  void RecordShed();
  /// An admitted request degraded to the sparse path (paired with
  /// RecordAdmitted).
  void RecordDegraded();
  /// One executed batch of `size` queries (one scores pass).
  void RecordBatch(size_t size);
  /// One finished query: outcome plus its enqueue-to-response latency.
  void RecordDone(bool ok, double latency_micros);

  ServerStatsSnapshot Snapshot(size_t queue_depth_now) const;

 private:
  // Buckets cover [2^i, 2^(i+1)) microseconds; 32 buckets reach ~1.2 hours.
  static constexpr size_t kLatencyBuckets = 32;

  mutable std::mutex mu_;
  ServerStatsSnapshot counts_;  // histogram/percentile fields stay empty
  std::vector<uint64_t> batch_size_hist_;
  std::array<uint64_t, kLatencyBuckets> latency_hist_{};
  double latency_max_micros_ = 0.0;
  double latency_sum_micros_ = 0.0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_STATS_H_
