#ifndef ENTMATCHER_SERVE_RESULT_CACHE_H_
#define ENTMATCHER_SERVE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "matching/types.h"

namespace entmatcher {

/// Cross-request LRU cache of finished serving answers.
///
/// Serving workloads repeat themselves: dashboards re-issue the same preset,
/// clients retry, monitoring replays canary queries. Micro-batching already
/// collapses *simultaneous* duplicates into one scores pass; the result
/// cache collapses duplicates *across* batches — a hit skips the pipeline
/// entirely and answers from the stored decision.
///
/// Correctness rests on the key, which the server builds from
///   (pair name, snapshot version, ScoreSignature, matcher, kind, topk):
/// everything that determines the answer bytes. The snapshot version makes
/// staleness structurally impossible — a hot swap bumps the version, so old
/// entries can never answer queries against new embeddings — and
/// InvalidatePair additionally drops the dead weight eagerly at swap time.
/// Degraded answers are never inserted (their options were rewritten under
/// load; the same request at a calm moment deserves the dense answer).
///
/// Byte-budgeted LRU: each entry is charged for its key and payload; an
/// insert that would exceed the budget evicts from the cold tail first. An
/// entry larger than the whole budget is simply not cached.
///
/// Thread-safe: workers insert and the scheduler looks up concurrently; one
/// internal mutex serializes them (the guarded work is pointer shuffling,
/// orders of magnitude below a scores pass).
class ResultCache {
 public:
  /// The answer payload of one finished query (exactly one field is
  /// meaningful, per the request kind folded into the key). Entries always
  /// hold the FULL pair's answer; row-ranged (routed) requests are sliced
  /// from it after the hit, so every shard range shares one entry.
  struct Entry {
    Assignment assignment;
    std::vector<uint32_t> topk;
    /// Parallel to topk when the keyed request asked for scores.
    std::vector<float> topk_scores;
  };

  /// `budget_bytes` = 0 disables the cache (every Lookup misses, Insert is a
  /// no-op) — the server's default until --cache-bytes opts in.
  explicit ResultCache(size_t budget_bytes);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the entry for `key` into `out` and promotes it to
  /// most-recently-used. False on miss.
  bool Lookup(const std::string& key, Entry* out);

  /// Inserts (or refreshes) `key`, evicting least-recently-used entries
  /// until the budget holds. Oversized entries are dropped silently.
  void Insert(const std::string& key, Entry entry);

  /// Drops every entry whose key belongs to `pair` (keys are prefixed with
  /// the pair name; see MakeKey). Returns how many entries were dropped.
  /// Called on snapshot publish — the version in the key already guarantees
  /// correctness, this reclaims the bytes.
  size_t InvalidatePair(const std::string& pair);

  /// Key prefix identifying `pair` (pair name + an unambiguous separator);
  /// the server's key builder starts from this so InvalidatePair can match
  /// by prefix.
  static std::string PairPrefix(const std::string& pair);

  size_t bytes() const;
  size_t entries() const;
  uint64_t evictions() const;
  size_t budget_bytes() const { return budget_bytes_; }
  bool enabled() const { return budget_bytes_ > 0; }

 private:
  struct Node {
    std::string key;
    Entry entry;
    size_t bytes = 0;
  };

  static size_t EntryBytes(const std::string& key, const Entry& entry);

  /// Unlink + erase the LRU tail (caller holds mu_).
  void EvictTailLocked();

  const size_t budget_bytes_;

  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = hottest
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_RESULT_CACHE_H_
