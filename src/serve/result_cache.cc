#include "serve/result_cache.h"

namespace entmatcher {

ResultCache::ResultCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

std::string ResultCache::PairPrefix(const std::string& pair) {
  // '\n' cannot appear in a pair name (the wire protocol is line-delimited),
  // so "pair\n" is prefix-free across pairs: "ab" never shadows "abc".
  return pair + '\n';
}

size_t ResultCache::EntryBytes(const std::string& key, const Entry& entry) {
  // Charge what dominates: key characters and payload elements, plus a flat
  // overhead for the node + index slot. Exact malloc accounting is not the
  // point; monotone-in-payload is, so the budget actually bounds memory.
  constexpr size_t kNodeOverhead = 128;
  return kNodeOverhead + key.size() +
         entry.assignment.target_of_source.size() * sizeof(int32_t) +
         entry.topk.size() * sizeof(uint32_t) +
         entry.topk_scores.size() * sizeof(float);
}

bool ResultCache::Lookup(const std::string& key, Entry* out) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  lru_.splice(lru_.begin(), lru_, it->second);  // promote to hottest
  *out = it->second->entry;
  return true;
}

void ResultCache::Insert(const std::string& key, Entry entry) {
  if (!enabled()) return;
  const size_t bytes = EntryBytes(key, entry);
  if (bytes > budget_bytes_) return;  // can never fit; don't thrash the tail
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Refresh in place (same key => same deterministic answer, but a
    // re-insert after an invalidation race must not double-count bytes).
    bytes_ -= it->second->bytes;
    it->second->entry = std::move(entry);
    it->second->bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  while (bytes_ + bytes > budget_bytes_ && !lru_.empty()) EvictTailLocked();
  lru_.push_front(Node{key, std::move(entry), bytes});
  index_[key] = lru_.begin();
  bytes_ += bytes;
}

void ResultCache::EvictTailLocked() {
  const Node& tail = lru_.back();
  bytes_ -= tail.bytes;
  index_.erase(tail.key);
  lru_.pop_back();
  ++evictions_;
}

size_t ResultCache::InvalidatePair(const std::string& pair) {
  if (!enabled()) return 0;
  const std::string prefix = PairPrefix(pair);
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.compare(0, prefix.size(), prefix) == 0) {
      bytes_ -= it->bytes;
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

size_t ResultCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t ResultCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace entmatcher
