#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/json.h"
#include "la/kernels/dispatch.h"

namespace entmatcher {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;
// Ledger counters with a prerequisite (admitted/rejected after submitted,
// terminal outcomes after admitted) are bumped with release and read with
// acquire in reverse-dependency order, so a mid-flight Snapshot can never
// observe e.g. admitted > submitted (see the class comment).
constexpr auto kRelease = std::memory_order_release;
constexpr auto kAcquire = std::memory_order_acquire;

// Index of the log2 bucket covering `micros`.
size_t LatencyBucket(double micros, size_t num_buckets) {
  if (micros < 1.0) return 0;
  const size_t bucket =
      static_cast<size_t>(std::floor(std::log2(micros)));
  return std::min(bucket, num_buckets - 1);
}

// Upper bound of the bucket where the cumulative count crosses
// `quantile * total` — exact to within the 2x bucket width.
double HistogramQuantile(const std::array<uint64_t, 32>& hist, uint64_t total,
                         double quantile) {
  if (total == 0) return 0.0;
  const uint64_t threshold = static_cast<uint64_t>(
      std::ceil(quantile * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    seen += hist[i];
    if (seen >= threshold) return std::pow(2.0, static_cast<double>(i + 1));
  }
  return std::pow(2.0, static_cast<double>(hist.size()));
}

}  // namespace

ServerStats::ServerStats(size_t max_batch)
    : batch_hist_size_(std::max<size_t>(max_batch, 1)),
      batch_size_hist_(new std::atomic<uint64_t>[batch_hist_size_]) {
  for (size_t i = 0; i < batch_hist_size_; ++i) {
    batch_size_hist_[i].store(0, kRelaxed);
  }
}

void ServerStats::UpdateMax(std::atomic<double>* target, double value) {
  double observed = target->load(kRelaxed);
  while (value > observed &&
         !target->compare_exchange_weak(observed, value, kRelaxed)) {
  }
}

void ServerStats::RecordRejected() {
  submitted_.fetch_add(1, kRelaxed);
  rejected_.fetch_add(1, kRelease);
}

void ServerStats::RecordAdmitted(size_t queue_depth_after) {
  submitted_.fetch_add(1, kRelaxed);
  admitted_.fetch_add(1, kRelease);
  uint64_t observed = max_queue_depth_.load(kRelaxed);
  while (queue_depth_after > observed &&
         !max_queue_depth_.compare_exchange_weak(observed, queue_depth_after,
                                                 kRelaxed)) {
  }
}

void ServerStats::RecordShed() { shed_.fetch_add(1, kRelaxed); }

void ServerStats::RecordDegraded() { degraded_.fetch_add(1, kRelaxed); }

void ServerStats::RecordTimedOut() { timed_out_.fetch_add(1, kRelease); }

uint64_t ServerStats::RecordBatch(size_t size) {
  const uint64_t id = batches_.fetch_add(1, kRelaxed) + 1;
  if (size > 1) batched_queries_.fetch_add(size, kRelaxed);
  const size_t bucket = std::min(size, batch_hist_size_) - 1;
  batch_size_hist_[bucket].fetch_add(1, kRelaxed);
  return id;
}

void ServerStats::RecordDone(bool ok, double latency_micros) {
  (ok ? completed_ : failed_).fetch_add(1, kRelease);
  latency_samples_.fetch_add(1, kRelaxed);
  latency_hist_[LatencyBucket(latency_micros, kLatencyBuckets)].fetch_add(
      1, kRelaxed);
  UpdateMax(&latency_max_micros_, latency_micros);
  double sum = latency_sum_micros_.load(kRelaxed);
  while (!latency_sum_micros_.compare_exchange_weak(sum, sum + latency_micros,
                                                    kRelaxed)) {
  }
}

void ServerStats::RecordCacheHit() { cache_hits_.fetch_add(1, kRelaxed); }

void ServerStats::RecordCacheMiss() { cache_misses_.fetch_add(1, kRelaxed); }

void ServerStats::RecordSwap() { snapshot_swaps_.fetch_add(1, kRelaxed); }

ServerStatsSnapshot ServerStats::Snapshot(size_t queue_depth_now,
                                          uint64_t cache_evictions,
                                          size_t cache_bytes) const {
  ServerStatsSnapshot snap;
  // Reverse-dependency order: terminal outcomes, then admitted/rejected,
  // then submitted. Acquire on a counter makes every prerequisite
  // increment that happens-before it visible to the later loads, so the
  // directional ledger inequalities hold even mid-flight.
  snap.timed_out = timed_out_.load(kAcquire);
  snap.completed = completed_.load(kAcquire);
  snap.failed = failed_.load(kAcquire);
  snap.admitted = admitted_.load(kAcquire);
  snap.rejected = rejected_.load(kAcquire);
  snap.submitted = submitted_.load(kRelaxed);
  snap.shed = shed_.load(kRelaxed);
  snap.degraded = degraded_.load(kRelaxed);
  snap.queue_depth = queue_depth_now;
  snap.max_queue_depth = max_queue_depth_.load(kRelaxed);
  snap.batches = batches_.load(kRelaxed);
  snap.batched_queries = batched_queries_.load(kRelaxed);
  snap.cache_hits = cache_hits_.load(kRelaxed);
  snap.cache_misses = cache_misses_.load(kRelaxed);
  snap.cache_evictions = cache_evictions;
  snap.result_cache_bytes = cache_bytes;
  snap.snapshot_swaps = snapshot_swaps_.load(kRelaxed);
  snap.batch_size_hist.resize(batch_hist_size_);
  for (size_t i = 0; i < batch_hist_size_; ++i) {
    snap.batch_size_hist[i] = batch_size_hist_[i].load(kRelaxed);
  }
  std::array<uint64_t, kLatencyBuckets> hist;
  for (size_t i = 0; i < kLatencyBuckets; ++i) {
    hist[i] = latency_hist_[i].load(kRelaxed);
  }
  snap.latency_samples = latency_samples_.load(kRelaxed);
  const double max_micros = latency_max_micros_.load(kRelaxed);
  // Quantiles report the log2 bucket's upper bound; clamp to the observed
  // max so p50/p99 never exceed it.
  snap.latency_p50_micros = std::min(
      HistogramQuantile(hist, snap.latency_samples, 0.50), max_micros);
  snap.latency_p99_micros = std::min(
      HistogramQuantile(hist, snap.latency_samples, 0.99), max_micros);
  snap.latency_max_micros = max_micros;
  snap.latency_mean_micros =
      snap.latency_samples > 0
          ? latency_sum_micros_.load(kRelaxed) /
                static_cast<double>(snap.latency_samples)
          : 0.0;
  return snap;
}

std::string ServerStatsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"submitted\": " << submitted << ", \"admitted\": " << admitted
      << ", \"rejected\": " << rejected << ", \"timed_out\": " << timed_out
      << ", \"completed\": " << completed << ", \"failed\": " << failed
      << ", \"shed\": " << shed << ", \"degraded\": " << degraded
      << ", \"queue_depth\": " << queue_depth
      << ", \"max_queue_depth\": " << max_queue_depth
      << ", \"batches\": " << batches
      << ", \"batched_queries\": " << batched_queries
      << ", \"batch_size_hist\": [";
  for (size_t i = 0; i < batch_size_hist.size(); ++i) {
    out << (i > 0 ? ", " : "") << batch_size_hist[i];
  }
  out << "], \"cache_hits\": " << cache_hits
      << ", \"cache_misses\": " << cache_misses
      << ", \"cache_evictions\": " << cache_evictions
      << ", \"result_cache_bytes\": " << result_cache_bytes
      << ", \"snapshot_swaps\": " << snapshot_swaps
      << ", \"pairs\": {";
  for (size_t i = 0; i < pair_versions.size(); ++i) {
    out << (i > 0 ? ", " : "") << JsonEscape(pair_versions[i].first) << ": "
        << pair_versions[i].second;
  }
  out << "}"
      << ", \"latency_samples\": " << latency_samples
      << ", \"latency_p50_micros\": " << latency_p50_micros
      << ", \"latency_p99_micros\": " << latency_p99_micros
      << ", \"latency_max_micros\": " << latency_max_micros
      << ", \"latency_mean_micros\": " << latency_mean_micros
      << ", \"kernels\": " << KernelStatusJson() << "}";
  return out.str();
}

}  // namespace entmatcher
