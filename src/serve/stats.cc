#include "serve/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "la/kernels/dispatch.h"

namespace entmatcher {

namespace {

// Index of the log2 bucket covering `micros`.
size_t LatencyBucket(double micros, size_t num_buckets) {
  if (micros < 1.0) return 0;
  const size_t bucket =
      static_cast<size_t>(std::floor(std::log2(micros)));
  return std::min(bucket, num_buckets - 1);
}

// Upper bound of the bucket where the cumulative count crosses
// `quantile * total` — exact to within the 2x bucket width.
double HistogramQuantile(const std::array<uint64_t, 32>& hist, uint64_t total,
                         double quantile) {
  if (total == 0) return 0.0;
  const uint64_t threshold = static_cast<uint64_t>(
      std::ceil(quantile * static_cast<double>(total)));
  uint64_t seen = 0;
  for (size_t i = 0; i < hist.size(); ++i) {
    seen += hist[i];
    if (seen >= threshold) return std::pow(2.0, static_cast<double>(i + 1));
  }
  return std::pow(2.0, static_cast<double>(hist.size()));
}

}  // namespace

ServerStats::ServerStats(size_t max_batch)
    : batch_size_hist_(std::max<size_t>(max_batch, 1), 0) {}

void ServerStats::RecordRejected() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.submitted;
  ++counts_.rejected;
}

void ServerStats::RecordAdmitted(size_t queue_depth_after) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.submitted;
  ++counts_.admitted;
  counts_.max_queue_depth =
      std::max<uint64_t>(counts_.max_queue_depth, queue_depth_after);
}

void ServerStats::RecordShed() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.shed;
}

void ServerStats::RecordDegraded() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.degraded;
}

void ServerStats::RecordTimedOut() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.timed_out;
}

void ServerStats::RecordBatch(size_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_.batches;
  if (size > 1) counts_.batched_queries += size;
  const size_t bucket = std::min(size, batch_size_hist_.size()) - 1;
  ++batch_size_hist_[bucket];
}

void ServerStats::RecordDone(bool ok, double latency_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ok) {
    ++counts_.completed;
  } else {
    ++counts_.failed;
  }
  ++counts_.latency_samples;
  ++latency_hist_[LatencyBucket(latency_micros, kLatencyBuckets)];
  latency_max_micros_ = std::max(latency_max_micros_, latency_micros);
  latency_sum_micros_ += latency_micros;
}

ServerStatsSnapshot ServerStats::Snapshot(size_t queue_depth_now) const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStatsSnapshot snap = counts_;
  snap.queue_depth = queue_depth_now;
  snap.batch_size_hist = batch_size_hist_;
  // Quantiles report the log2 bucket's upper bound; clamp to the observed
  // max so p50/p99 never exceed it.
  snap.latency_p50_micros = std::min(
      HistogramQuantile(latency_hist_, snap.latency_samples, 0.50),
      latency_max_micros_);
  snap.latency_p99_micros = std::min(
      HistogramQuantile(latency_hist_, snap.latency_samples, 0.99),
      latency_max_micros_);
  snap.latency_max_micros = latency_max_micros_;
  snap.latency_mean_micros =
      snap.latency_samples > 0
          ? latency_sum_micros_ / static_cast<double>(snap.latency_samples)
          : 0.0;
  return snap;
}

std::string ServerStatsSnapshot::ToJson() const {
  std::ostringstream out;
  out << "{\"submitted\": " << submitted << ", \"admitted\": " << admitted
      << ", \"rejected\": " << rejected << ", \"timed_out\": " << timed_out
      << ", \"completed\": " << completed << ", \"failed\": " << failed
      << ", \"shed\": " << shed << ", \"degraded\": " << degraded
      << ", \"queue_depth\": " << queue_depth
      << ", \"max_queue_depth\": " << max_queue_depth
      << ", \"batches\": " << batches
      << ", \"batched_queries\": " << batched_queries
      << ", \"batch_size_hist\": [";
  for (size_t i = 0; i < batch_size_hist.size(); ++i) {
    out << (i > 0 ? ", " : "") << batch_size_hist[i];
  }
  out << "], \"latency_samples\": " << latency_samples
      << ", \"latency_p50_micros\": " << latency_p50_micros
      << ", \"latency_p99_micros\": " << latency_p99_micros
      << ", \"latency_max_micros\": " << latency_max_micros
      << ", \"latency_mean_micros\": " << latency_mean_micros
      << ", \"kernels\": " << KernelStatusJson() << "}";
  return out.str();
}

}  // namespace entmatcher
