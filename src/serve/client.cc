#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/rng.h"

namespace entmatcher {

namespace {

Result<int> Dial(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("ServeClient: bad socket path: " +
                                   socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    // kUnavailable, not kIoError: a refused/absent socket is the transient
    // "shard not up (yet/anymore)" condition retry and failover handle.
    const Status status = Status::Unavailable("connect " + socket_path + ": " +
                                              std::strerror(errno));
    ::close(fd);
    return status;
  }
  return fd;
}

// The frame layer reports peer trouble as kIoError (EPIPE, reset, truncated
// frame) or kNotFound (clean close between frames). Both mean the same thing
// to a caller: this connection is gone and the request may be replayed
// elsewhere — surface them uniformly as kUnavailable so routers and retry
// loops treat a dying shard like a shedding one, not like a protocol bug.
Status AsTransportFailure(const Status& status) {
  if (status.code() == StatusCode::kIoError ||
      status.code() == StatusCode::kNotFound) {
    return Status::Unavailable("peer closed or transport failed: " +
                               status.message());
  }
  return status;
}

}  // namespace

Result<ServeClient> ServeClient::Connect(const std::string& socket_path) {
  EM_ASSIGN_OR_RETURN(const int fd, Dial(socket_path));
  return ServeClient(fd, socket_path);
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = other.fd_;
  socket_path_ = std::move(other.socket_path_);
  other.fd_ = -1;
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status ServeClient::Reconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  EM_ASSIGN_OR_RETURN(fd_, Dial(socket_path_));
  return Status::OK();
}

Result<WireResponse> ServeClient::Call(const WireRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("ServeClient: not connected");
  const Status wrote = WriteFrame(fd_, EncodeRequest(request));
  if (!wrote.ok()) return AsTransportFailure(wrote);
  auto payload = ReadFrame(fd_);
  if (!payload.ok()) return AsTransportFailure(payload.status());
  return ParseResponse(payload.value());
}

Result<WireResponse> ServeClient::CallWithRetry(const WireRequest& request,
                                                const RetryPolicy& policy) {
  if (request.verb == WireRequest::Verb::kShutdown) {
    // Not idempotent: a shutdown whose response frame was lost may already
    // have taken effect; replaying it could kill a freshly restarted server.
    return Call(request);
  }
  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const uint32_t attempts = std::max<uint32_t>(1, policy.max_attempts);
  Rng jitter(policy.jitter_seed);
  uint64_t backoff = policy.initial_backoff_micros;
  // The most recent retry-after hint any response carried. Kept outside
  // `last` on purpose: a transport failure on the next attempt replaces
  // `last` with a plain Status, but the server's backoff request still
  // stands — a shedding shard that then drops the connection must not be
  // hammered at the local backoff rate just because the reconnect path
  // forgot the hint.
  uint64_t server_hint_micros = 0;
  Result<WireResponse> last =
      Status::Internal("ServeClient: retry loop never ran");
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Full-jitter sleep over [backoff/2, backoff], raised to the server's
      // retry-after hint when it gave one — even when the attempt that
      // followed the hint died at the transport level.
      uint64_t sleep_micros =
          backoff / 2 + (backoff > 1 ? jitter.NextBounded(backoff / 2 + 1) : 0);
      if (server_hint_micros > sleep_micros) {
        sleep_micros = server_hint_micros;
      }
      if (policy.budget_micros > 0) {
        const uint64_t spent = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - start)
                .count());
        if (spent + sleep_micros >= policy.budget_micros) break;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_micros));
      backoff = std::min<uint64_t>(
          policy.max_backoff_micros,
          static_cast<uint64_t>(static_cast<double>(backoff) *
                                std::max(1.0, policy.multiplier)));
      if (fd_ < 0 || !last.ok()) {
        // Transport died last attempt; the old connection's framing state is
        // unknown, so start clean.
        const Status reconnected = Reconnect();
        if (!reconnected.ok()) {
          last = reconnected;
          continue;
        }
      }
    }
    last = Call(request);
    if (last.ok() && last->retry_after_micros > 0) {
      server_hint_micros = last->retry_after_micros;
    }
    if (!last.ok()) {
      // Transport-level failure: mark the connection unusable so the next
      // attempt reconnects rather than reading a half-written frame.
      if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
      }
      continue;
    }
    const StatusCode code = last->status.code();
    if (code != StatusCode::kUnavailable &&
        code != StatusCode::kDeadlineExceeded) {
      return last;  // success or a definitive server verdict
    }
  }
  return last;
}

}  // namespace entmatcher
