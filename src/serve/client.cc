#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace entmatcher {

Result<ServeClient> ServeClient::Connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("ServeClient: bad socket path: " +
                                   socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status status = Status::IoError("connect " + socket_path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  return ServeClient(fd);
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
  if (this == &other) return *this;
  if (fd_ >= 0) ::close(fd_);
  fd_ = other.fd_;
  other.fd_ = -1;
  return *this;
}

ServeClient::~ServeClient() {
  if (fd_ >= 0) ::close(fd_);
}

Result<WireResponse> ServeClient::Call(const WireRequest& request) {
  if (fd_ < 0) return Status::FailedPrecondition("ServeClient: not connected");
  EM_RETURN_NOT_OK(WriteFrame(fd_, EncodeRequest(request)));
  EM_ASSIGN_OR_RETURN(const std::string payload, ReadFrame(fd_));
  return ParseResponse(payload);
}

}  // namespace entmatcher
