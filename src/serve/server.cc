#include "serve/server.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/json.h"
#include "index/candidate_index.h"
#include "la/kernels/dispatch.h"
#include "la/topk.h"
#include "matching/sparse_matchers.h"
#include "matching/sparse_transforms.h"

namespace entmatcher {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

// config 0 -> EM_SERVE_WORKERS -> hardware concurrency (>= 1). Mirrors the
// EM_NUM_THREADS convention of the kernel thread pool.
size_t ResolveServeWorkers(size_t configured) {
  if (configured > 0) return configured;
  if (const char* env = std::getenv("EM_SERVE_WORKERS")) {
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && value > 0) {
      return static_cast<size_t>(value);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<size_t>(hw) : 1;
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xff));
  }
}

// Result-cache key: everything that determines the answer bytes. The
// snapshot version makes stale hits structurally impossible; the
// ScoreSignature (already canonicalized — parameters the transform does not
// read are zeroed) covers stages 1+2; matcher/kind/topk cover the decision.
std::string MakeResultKey(const std::string& pair, uint64_t version,
                          const ServeRequest& request) {
  std::string key = ResultCache::PairPrefix(pair);
  AppendU64(&key, version);
  const ScoreSignature sig = ScoreSignature::Of(request.options);
  AppendU64(&key, static_cast<uint64_t>(sig.metric));
  AppendU64(&key, static_cast<uint64_t>(sig.transform));
  AppendU64(&key, sig.csls_k);
  AppendU64(&key, sig.rinf_k);
  AppendU64(&key, sig.sinkhorn_iterations);
  uint64_t temperature_bits = 0;
  static_assert(sizeof(temperature_bits) == sizeof(sig.sinkhorn_temperature));
  std::memcpy(&temperature_bits, &sig.sinkhorn_temperature,
              sizeof(temperature_bits));
  AppendU64(&key, temperature_bits);
  AppendU64(&key, sig.rinf_pb_candidates);
  AppendU64(&key, static_cast<uint64_t>(
                      reinterpret_cast<uintptr_t>(sig.candidate_index)));
  AppendU64(&key, sig.num_candidates);
  AppendU64(&key, sig.index_nprobe);
  AppendU64(&key, sig.index_ef);
  AppendU64(&key, static_cast<uint64_t>(sig.score_precision));
  AppendU64(&key, static_cast<uint64_t>(request.kind));
  AppendU64(&key, static_cast<uint64_t>(request.options.matcher));
  AppendU64(&key, request.kind == ServeQueryKind::kTopK ? request.topk : 0);
  // want_scores widens the stored payload, so it gets its own entry. The row
  // range deliberately does NOT key: entries hold the full pair's answer and
  // ranged requests slice after the hit, so every shard range shares one
  // entry.
  AppendU64(&key, request.kind == ServeQueryKind::kTopK && request.want_scores
                      ? 1
                      : 0);
  return key;
}

bool HasRowRange(const ServeRequest& request) {
  return request.row_begin > 0 || request.row_end > 0;
}

// Cuts a full-pair payload down to the request's row range, in place.
// `total_rows` is the snapshot's source row count (needed to recover the
// effective k of a flattened top-k payload).
void SliceRowRange(const ServeRequest& request, size_t total_rows,
                   ServeResponse* response) {
  if (!HasRowRange(request)) return;
  const size_t begin = request.row_begin;
  const size_t end = request.row_end;
  if (request.kind == ServeQueryKind::kMatch) {
    std::vector<int32_t>& full = response->assignment.target_of_source;
    full = std::vector<int32_t>(full.begin() + begin, full.begin() + end);
    return;
  }
  const size_t k_eff = total_rows > 0 ? response->topk.size() / total_rows : 0;
  response->topk = std::vector<uint32_t>(
      response->topk.begin() + begin * k_eff,
      response->topk.begin() + end * k_eff);
  if (!response->topk_scores.empty()) {
    response->topk_scores = std::vector<float>(
        response->topk_scores.begin() + begin * k_eff,
        response->topk_scores.begin() + end * k_eff);
  }
}

}  // namespace

MatchServer::MatchServer(const MatchServerConfig& config)
    : config_(config), num_workers_(ResolveServeWorkers(config.serve_workers)),
      stats_(config.max_batch), cache_(config.result_cache_bytes) {}

Result<std::unique_ptr<MatchServer>> MatchServer::Create(
    const MatchServerConfig& config) {
  if (config.queue_capacity == 0) {
    return Status::InvalidArgument("MatchServer: queue_capacity must be >= 1");
  }
  if (config.max_batch == 0) {
    return Status::InvalidArgument("MatchServer: max_batch must be >= 1");
  }
  if (config.shed_watermark > config.queue_capacity) {
    return Status::InvalidArgument(
        "MatchServer: shed_watermark above queue_capacity would never fire");
  }
  if (config.degrade_watermark > 0 && config.degrade_num_candidates == 0) {
    return Status::InvalidArgument(
        "MatchServer: degrade_num_candidates must be >= 1 when degrading");
  }
  return std::unique_ptr<MatchServer>(new MatchServer(config));
}

MatchServer::~MatchServer() { Shutdown(); }

Status MatchServer::LoadPair(const std::string& name, Matrix source,
                             Matrix target, const MatchOptions& base) {
  MatchOptions options = base;
  options.workspace_budget_bytes = config_.workspace_budget_bytes;
  Result<std::shared_ptr<PairSnapshot>> snapshot =
      PairSnapshot::Build(std::move(source), std::move(target));
  if (!snapshot.ok()) {
    return Status(snapshot.status().code(),
                  "MatchServer: " + snapshot.status().message());
  }
  // Warm the session metric's similarity cache before publishing, so the
  // first query (on any worker) runs allocation-light.
  (*snapshot)->EnsureCache(options.metric);
  std::lock_guard<std::mutex> lock(pairs_mu_);
  if (base_options_.count(name) > 0) {
    return Status::AlreadyExists("MatchServer: pair already loaded: " + name);
  }
  EM_ASSIGN_OR_RETURN(const uint64_t version,
                      registry_.Publish(name, std::move(snapshot).value()));
  (void)version;
  base_options_[name] = options;
  return Status::OK();
}

Status MatchServer::AttachIndex(const std::string& name,
                                std::unique_ptr<CandidateIndex> index) {
  if (index == nullptr) {
    return Status::InvalidArgument("MatchServer: AttachIndex: null index");
  }
  std::lock_guard<std::mutex> lock(pairs_mu_);
  std::shared_ptr<const PairSnapshot> current = registry_.Acquire(name);
  if (current == nullptr) {
    return Status::NotFound("MatchServer: unknown pair: " + name);
  }
  if (current->index() != nullptr) {
    return Status::AlreadyExists("MatchServer: pair already has an index: " +
                                 name);
  }
  if (index->num_targets() != current->target().rows()) {
    return Status::InvalidArgument(
        "MatchServer: candidate index was built over a different target set "
        "than pair '" + name + "'");
  }
  // Sibling snapshot: shares the embeddings and every built cache, so the
  // publish is cheap and nothing warm is lost.
  std::shared_ptr<PairSnapshot> with_index = current->WithIndex(
      std::shared_ptr<const CandidateIndex>(std::move(index)));
  EM_ASSIGN_OR_RETURN(const uint64_t version,
                      registry_.Publish(name, std::move(with_index)));
  (void)version;
  return Status::OK();
}

Result<uint64_t> MatchServer::SwapPair(const std::string& name, Matrix source,
                                       Matrix target,
                                       std::unique_ptr<CandidateIndex> index,
                                       uint64_t min_version) {
  std::lock_guard<std::mutex> lock(pairs_mu_);
  auto base_it = base_options_.find(name);
  if (base_it == base_options_.end()) {
    return Status::NotFound("MatchServer: unknown pair: " + name +
                            " (SwapPair replaces; LoadPair introduces)");
  }
  Result<std::shared_ptr<PairSnapshot>> built =
      PairSnapshot::Build(std::move(source), std::move(target));
  if (!built.ok()) {
    return Status(built.status().code(),
                  "MatchServer: " + built.status().message());
  }
  std::shared_ptr<PairSnapshot> snapshot = std::move(built).value();
  if (index != nullptr) {
    if (index->num_targets() != snapshot->target().rows()) {
      return Status::InvalidArgument(
          "MatchServer: candidate index was built over a different target "
          "set than the new embeddings of pair '" + name + "'");
    }
    snapshot = snapshot->WithIndex(
        std::shared_ptr<const CandidateIndex>(std::move(index)));
  }
  // Build-then-flip: warm the new version's similarity cache *before*
  // publishing so the swap never serves a cold cache build from the hot
  // path.
  snapshot->EnsureCache(base_it->second.metric);
  EM_ASSIGN_OR_RETURN(const uint64_t version,
                      registry_.Publish(name, std::move(snapshot),
                                        min_version));
  stats_.RecordSwap();
  // Correctness does not need this (the version is in every cache key);
  // reclaiming the dead entries' bytes eagerly does.
  cache_.InvalidatePair(name);
  return version;
}

std::shared_ptr<const PairSnapshot> MatchServer::CurrentSnapshot(
    const std::string& name) const {
  return registry_.Acquire(name);
}

Status MatchServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (scheduler_.joinable()) {
    return Status::FailedPrecondition("MatchServer: already started");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return Status::FailedPrecondition("MatchServer: already shut down");
    }
  }
  scheduler_ = std::thread(&MatchServer::SchedulerLoop, this);
  workers_.reserve(num_workers_);
  for (size_t i = 0; i < num_workers_; ++i) {
    workers_.emplace_back(&MatchServer::WorkerLoop, this);
  }
  return Status::OK();
}

std::future<ServeResponse> MatchServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  // Admission control: answer doomed or unservable requests now, on the
  // submitting thread, instead of letting them queue behind real work. The
  // acquired snapshot is only consulted — execution pins its own later.
  Status verdict = Status::OK();
  const std::shared_ptr<const PairSnapshot> snapshot =
      registry_.Acquire(request.pair);
  if (snapshot == nullptr) {
    verdict = Status::NotFound("MatchServer: unknown pair: " + request.pair);
  } else if (request.kind == ServeQueryKind::kMatch &&
             request.options.matcher == MatcherKind::kRl) {
    verdict = Status::InvalidArgument(
        "MatchServer: the RL matcher needs KG context and cannot be served");
  } else if (request.kind == ServeQueryKind::kTopK && request.topk == 0) {
    verdict = Status::InvalidArgument("MatchServer: topk must be >= 1");
  } else if (request.kind == ServeQueryKind::kMatch && request.want_scores) {
    verdict = Status::InvalidArgument(
        "MatchServer: want_scores applies to top-k queries only");
  } else if (HasRowRange(request) &&
             (request.row_begin >= request.row_end ||
              request.row_end > snapshot->source().rows())) {
    verdict = Status::OutOfRange(
        "MatchServer: row range [" + std::to_string(request.row_begin) + ", " +
        std::to_string(request.row_end) + ") is empty or exceeds the " +
        std::to_string(snapshot->source().rows()) + " source rows of pair '" +
        request.pair + "'");
  } else if (UsesSparsePath(request.options) &&
             request.kind == ServeQueryKind::kTopK) {
    verdict = Status::InvalidArgument(
        "MatchServer: top-k serving needs the dense score path; drop the "
        "candidate index / quantized precision for top-k queries");
  } else if (UsesSparsePath(request.options) &&
             request.options.num_candidates == 0) {
    verdict = Status::InvalidArgument(
        "MatchServer: a sparse query (candidate_index or score_precision) "
        "needs num_candidates >= 1");
  } else if (UsesQuantizedCandidates(request.options) &&
             request.options.metric == SimilarityMetric::kNegManhattan) {
    verdict = Status::InvalidArgument(
        "MatchServer: manhattan has no quantized surrogate; use "
        "score_precision = float32 with this metric");
  } else if (UsesSparsePath(request.options) &&
             !TransformSupportsSparse(request.options.transform)) {
    verdict = Status::InvalidArgument(
        "MatchServer: the requested transform has no sparse variant; drop "
        "the candidate index / quantized precision for this query");
  } else if (UsesSparsePath(request.options) &&
             !MatcherSupportsSparse(request.options.matcher)) {
    verdict = Status::InvalidArgument(
        "MatchServer: the requested matcher cannot decide over candidate "
        "lists; drop the candidate index / quantized precision for this "
        "query");
  } else if (UsesCandidateIndex(request.options) &&
             request.options.candidate_index->num_targets() !=
                 snapshot->target().rows()) {
    verdict = Status::InvalidArgument(
        "MatchServer: candidate index was built over a different target set "
        "than pair '" + request.pair + "'");
  } else if (config_.workspace_budget_bytes > 0) {
    MatchOptions declared = request.options;
    // Top-k runs no decision stage; only stages 1+2 count against it.
    if (request.kind == ServeQueryKind::kTopK) {
      declared.matcher = MatcherKind::kGreedy;
    }
    const size_t bytes = MatchEngine::DeclaredWorkspaceBytesFor(
        snapshot->source().rows(), snapshot->target().rows(), declared);
    if (bytes > config_.workspace_budget_bytes) {
      verdict = Status::ResourceExhausted(
          "MatchServer: declared workspace of " + std::to_string(bytes) +
          " B exceeds the arena budget of " +
          std::to_string(config_.workspace_budget_bytes) + " B");
    }
  }

  // Degrade-to-sparse eligibility: a dense full-match whose stages all have
  // sparse variants, against a pair whose snapshot carries an index. Only
  // the *flag* is set here — the scheduler rewrites the options from the
  // snapshot it pins for the group, so the index pointer in the rewritten
  // options can never outlive its snapshot across a swap.
  const bool degradable =
      verdict.ok() && config_.degrade_watermark > 0 &&
      snapshot->index() != nullptr &&
      request.kind == ServeQueryKind::kMatch &&
      !UsesSparsePath(request.options) &&
      TransformSupportsSparse(request.options.transform) &&
      MatcherSupportsSparse(request.options.matcher);

  size_t depth_after = 0;
  bool shed = false;
  uint64_t retry_after_micros = 0;
  bool degraded = false;
  if (verdict.ok()) {
    Pending pending;
    pending.request = std::move(request);
    pending.enqueued = Clock::now();
    pending.deadline =
        pending.request.timeout_micros > 0
            ? pending.enqueued +
                  std::chrono::microseconds(pending.request.timeout_micros)
            : Clock::time_point::max();
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t depth = queue_.size();
    if (stopping_) {
      verdict = Status::FailedPrecondition("MatchServer: shut down");
    } else if (depth >= config_.queue_capacity) {
      // kUnavailable, not kResourceExhausted: the queue being full is a
      // transient load condition the client may retry, unlike a request
      // whose own footprint exceeds the arena budget.
      shed = true;
      retry_after_micros = RetryAfterHintMicros(depth);
      verdict = Status::Unavailable(
          "MatchServer: request queue full (" +
          std::to_string(config_.queue_capacity) + ")");
    } else {
      if (degradable && depth >= config_.degrade_watermark) {
        pending.degraded = true;
        degraded = true;
      } else if (config_.shed_watermark > 0 &&
                 depth >= config_.shed_watermark) {
        shed = true;
        retry_after_micros = RetryAfterHintMicros(depth);
        verdict = Status::Unavailable(
            "MatchServer: shedding at queue depth " + std::to_string(depth) +
            " (watermark " + std::to_string(config_.shed_watermark) + ")");
      }
      if (verdict.ok()) {
        pending.promise = std::move(promise);
        queue_.push_back(std::move(pending));
        depth_after = queue_.size();
      }
    }
  }

  if (!verdict.ok()) {
    stats_.RecordRejected();
    if (shed) stats_.RecordShed();
    ServeResponse response;
    response.status = std::move(verdict);
    response.retry_after_micros = retry_after_micros;
    promise.set_value(std::move(response));
    return future;
  }
  if (degraded) stats_.RecordDegraded();
  stats_.RecordAdmitted(depth_after);
  queue_cv_.notify_one();
  return future;
}

uint64_t MatchServer::RetryAfterHintMicros(size_t queue_depth) const {
  // Rough time-to-drain estimate: every queued request costs at most one
  // flush window (batching only shortens it). Floor of 1ms so a hint is
  // never "retry immediately" while we are actively shedding.
  const uint64_t per_request =
      config_.flush_micros > 0 ? config_.flush_micros : 200;
  return std::max<uint64_t>(1000, per_request * (queue_depth + 1));
}

ServeResponse MatchServer::Query(ServeRequest request) {
  return Submit(std::move(request)).get();
}

ServerStatsSnapshot MatchServer::Stats() const {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  ServerStatsSnapshot snap =
      stats_.Snapshot(depth, cache_.evictions(), cache_.bytes());
  for (const std::string& name : registry_.Names()) {
    const std::shared_ptr<const PairSnapshot> snapshot =
        registry_.Acquire(name);
    if (snapshot != nullptr) {
      snap.pair_versions.emplace_back(name, snapshot->version());
    }
  }
  return snap;
}

std::string MatchServer::HealthJson() const {
  const ServerStatsSnapshot snapshot = Stats();
  const double shed_rate =
      snapshot.submitted > 0
          ? static_cast<double>(snapshot.shed) /
                static_cast<double>(snapshot.submitted)
          : 0.0;
  std::string json = "{";
  json += "\"queue_depth\": " + std::to_string(snapshot.queue_depth);
  json += ", \"queue_capacity\": " + std::to_string(config_.queue_capacity);
  json += ", \"shed_watermark\": " + std::to_string(config_.shed_watermark);
  json +=
      ", \"degrade_watermark\": " + std::to_string(config_.degrade_watermark);
  json += ", \"serve_workers\": " + std::to_string(num_workers_);
  json += ", \"submitted\": " + std::to_string(snapshot.submitted);
  json += ", \"shed\": " + std::to_string(snapshot.shed);
  json += ", \"degraded\": " + std::to_string(snapshot.degraded);
  json += ", \"shed_rate\": " + std::to_string(shed_rate);
  json += ", \"snapshot_swaps\": " + std::to_string(snapshot.snapshot_swaps);
  json += ", \"cache_hits\": " + std::to_string(snapshot.cache_hits);
  json += ", \"cache_misses\": " + std::to_string(snapshot.cache_misses);
  json +=
      ", \"cache_evictions\": " + std::to_string(snapshot.cache_evictions);
  json += ", \"result_cache_bytes\": " +
          std::to_string(snapshot.result_cache_bytes);
  json += ", \"pairs\": {";
  for (size_t i = 0; i < snapshot.pair_versions.size(); ++i) {
    json += (i > 0 ? ", " : "") + JsonEscape(snapshot.pair_versions[i].first) +
            ": " + std::to_string(snapshot.pair_versions[i].second);
  }
  json += "}";
  json += ", \"fault_plan\": \"" + FaultInjector::Global().Fingerprint() +
          "\"";
  json += ", \"kernels\": " + KernelStatusJson();
  json += "}";
  return json;
}

void MatchServer::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Order matters for definite termination: the scheduler drains the queue
  // into the task deque and exits; only then do the workers get their stop
  // flag, so every dispatched group is executed before they exit.
  if (scheduler_.joinable()) scheduler_.join();
  {
    std::lock_guard<std::mutex> lock(tasks_mu_);
    tasks_stopping_ = true;
  }
  tasks_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  // Only reachable with a non-empty queue when the scheduler never started:
  // a running scheduler drains everything before exiting.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    ServeResponse response;
    response.status = Status::FailedPrecondition(
        "MatchServer: shut down before the request executed");
    Respond(&pending, std::move(response));
  }
}

std::vector<MatchServer::Pending> MatchServer::NextCycle() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping, fully drained

  std::vector<Pending> cycle;
  cycle.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const Clock::time_point flush_deadline =
      Clock::now() + std::chrono::microseconds(config_.flush_micros);
  while (cycle.size() < config_.max_batch) {
    if (!queue_.empty()) {
      cycle.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    if (stopping_ || config_.flush_micros == 0) break;
    // Keep the batch open until the flush window closes or it fills.
    if (!queue_cv_.wait_until(lock, flush_deadline, [&] {
          return stopping_ || !queue_.empty();
        })) {
      break;
    }
  }
  return cycle;
}

void MatchServer::SchedulerLoop() {
  for (;;) {
    std::vector<Pending> cycle = NextCycle();
    if (cycle.empty()) return;

    // Pin one snapshot per pair for this whole cycle — every group formed
    // below carries it, so a concurrent SwapPair cannot split a batch
    // across versions.
    std::map<std::string, std::shared_ptr<const PairSnapshot>> snapshots;
    std::map<std::string, MatchOptions> bases;
    for (const Pending& pending : cycle) {
      const std::string& pair = pending.request.pair;
      if (snapshots.count(pair) > 0) continue;
      snapshots[pair] = registry_.Acquire(pair);
      std::lock_guard<std::mutex> lock(pairs_mu_);
      auto it = base_options_.find(pair);
      if (it != base_options_.end()) bases[pair] = it->second;
    }

    const Clock::time_point now = Clock::now();
    std::vector<Pending> runnable;
    runnable.reserve(cycle.size());
    for (Pending& pending : cycle) {
      const std::shared_ptr<const PairSnapshot>& snapshot =
          snapshots[pending.request.pair];
      if (snapshot == nullptr) {
        // Admitted against a pair that no longer resolves — cannot happen
        // through the public API (pairs are never removed), but fail closed.
        ServeResponse response;
        response.status = Status::Internal(
            "MatchServer: pair vanished after admission");
        Respond(&pending, std::move(response));
        continue;
      }
      if (pending.degraded) {
        // Rewrite from the pinned snapshot: the index pointer lives exactly
        // as long as the snapshot the group holds. A swap may have dropped
        // the index since admission — serve dense, honestly undegraded.
        const CandidateIndex* index = snapshot->index();
        if (index != nullptr) {
          pending.request.options.candidate_index = index;
          pending.request.options.num_candidates =
              config_.degrade_num_candidates;
          pending.request.options.index_nprobe =
              std::max<size_t>(1, config_.degrade_nprobe);
          pending.request.options.index_ef =
              std::max<size_t>(1, config_.degrade_ef);
        } else {
          pending.degraded = false;
        }
      } else if (cache_.enabled() && pending.deadline > now) {
        ResultCache::Entry entry;
        const std::string key = MakeResultKey(pending.request.pair,
                                              snapshot->version(),
                                              pending.request);
        if (cache_.Lookup(key, &entry)) {
          stats_.RecordCacheHit();
          ServeResponse response;
          response.cached = true;
          response.snapshot_version = snapshot->version();
          if (pending.request.kind == ServeQueryKind::kMatch) {
            response.assignment = std::move(entry.assignment);
          } else {
            response.topk = std::move(entry.topk);
            response.topk_scores = std::move(entry.topk_scores);
          }
          SliceRowRange(pending.request, snapshot->source().rows(), &response);
          Respond(&pending, std::move(response));
          continue;
        }
        stats_.RecordCacheMiss();
      }
      runnable.push_back(std::move(pending));
    }

    // Split into compatible groups — queries sharing a pair and a
    // ScoreSignature (computed after any degrade rewrite) — preserving
    // arrival order; each group is one batch, dispatched to the pool.
    while (!runnable.empty()) {
      const std::string pair = runnable.front().request.pair;
      const ScoreSignature signature =
          ScoreSignature::Of(runnable.front().request.options);
      GroupTask task;
      task.pair = pair;
      task.snapshot = snapshots[pair];
      task.base_options = bases[pair];
      std::vector<Pending> rest;
      for (Pending& pending : runnable) {
        if (pending.request.pair == pair &&
            ScoreSignature::Of(pending.request.options) == signature) {
          task.group.push_back(std::move(pending));
        } else {
          rest.push_back(std::move(pending));
        }
      }
      runnable = std::move(rest);
      {
        std::lock_guard<std::mutex> lock(tasks_mu_);
        tasks_.push_back(std::move(task));
      }
      tasks_cv_.notify_one();
    }
  }
}

void MatchServer::WorkerLoop() {
  // Each worker keeps one warm engine per pair over the current snapshot;
  // the arena is recycled across snapshot versions (TakeWorkspace), so a
  // swap does not re-grow slabs.
  std::map<std::string, WorkerEngine> engines;
  for (;;) {
    GroupTask task;
    {
      std::unique_lock<std::mutex> lock(tasks_mu_);
      tasks_cv_.wait(lock, [&] { return tasks_stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping, fully drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    ExecuteGroup(std::move(task), &engines);
  }
}

void MatchServer::ExecuteGroup(GroupTask task,
                               std::map<std::string, WorkerEngine>* engines) {
  // Epoch guard around the whole pass: any raw borrow into the snapshot
  // (degrade index pointer, cache rows) stays valid until this guard exits,
  // even if a swap retires the snapshot mid-batch.
  EpochDomain::Guard guard = registry_.domain().Enter();

  // Requests whose deadline passed while queued are answered without paying
  // for any kernel work.
  const Clock::time_point now = Clock::now();
  std::vector<Pending> live;
  live.reserve(task.group.size());
  for (Pending& pending : task.group) {
    if (pending.deadline <= now) {
      ServeResponse response;
      response.status = Status::DeadlineExceeded(
          "MatchServer: request expired after " +
          std::to_string(static_cast<uint64_t>(
              MicrosBetween(pending.enqueued, now))) +
          " us in queue");
      Respond(&pending, std::move(response));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  const uint64_t version = task.snapshot->version();
  WorkerEngine& slot = (*engines)[task.pair];
  if (slot.engine == nullptr || slot.version != version ||
      slot.engine->snapshot() != task.snapshot) {
    std::unique_ptr<Workspace> recycled =
        slot.engine != nullptr ? slot.engine->TakeWorkspace() : nullptr;
    slot.engine.reset();
    Result<MatchEngine> rebuilt = MatchEngine::Over(
        task.snapshot, task.base_options, std::move(recycled));
    if (!rebuilt.ok()) {
      for (Pending& pending : live) {
        ServeResponse response;
        response.status = rebuilt.status();
        Respond(&pending, std::move(response));
      }
      return;
    }
    slot.engine = std::make_unique<MatchEngine>(std::move(rebuilt).value());
    slot.version = version;
  }
  MatchEngine* engine = slot.engine.get();

  const uint64_t batch_id = stats_.RecordBatch(live.size());
  // The shared scores pass runs under the *latest* live deadline: a
  // short-deadline rider must not abort a batch that other requests can
  // still use. Each decision stage then runs under its own request's
  // deadline (ScoredBatch::Match checks it at entry).
  Clock::time_point group_deadline = Clock::time_point::min();
  for (const Pending& pending : live) {
    group_deadline = std::max(group_deadline, pending.deadline);
  }
  if (group_deadline != Clock::time_point::max()) {
    engine->SetStageDeadline(group_deadline);
  }
  Result<MatchEngine::ScoredBatch> batch =
      engine->BeginBatch(live.front().request.options);
  for (Pending& pending : live) {
    ServeResponse response;
    response.batch_size = live.size();
    response.degraded = pending.degraded;
    response.snapshot_version = version;
    response.batch_id = batch_id;
    if (pending.deadline != Clock::time_point::max()) {
      engine->SetStageDeadline(pending.deadline);
    } else {
      engine->ClearStageDeadline();
    }
    if (!batch.ok()) {
      response.status = batch.status();
    } else if (pending.deadline <= Clock::now()) {
      // Expired while the shared pass ran (or while batch-mates decided).
      response.status = Status::DeadlineExceeded(
          "MatchServer: deadline expired during the scores pass");
    } else if (pending.request.kind == ServeQueryKind::kMatch) {
      Result<Assignment> assignment = batch->Match(pending.request.options);
      if (assignment.ok()) {
        response.assignment = std::move(assignment).value();
      } else {
        response.status = assignment.status();
      }
    } else {
      response.topk = RowTopKIndices(batch->scores(), pending.request.topk);
      if (pending.request.want_scores) {
        // Gather the selected entries' transformed scores, bit-exact from
        // the same matrix the indices came from.
        const Matrix& scores = batch->scores();
        const size_t rows = scores.rows();
        const size_t k_eff = rows > 0 ? response.topk.size() / rows : 0;
        response.topk_scores.reserve(response.topk.size());
        for (size_t r = 0; r < rows; ++r) {
          for (size_t j = 0; j < k_eff; ++j) {
            response.topk_scores.push_back(
                scores.At(r, response.topk[r * k_eff + j]));
          }
        }
      }
    }
    if (cache_.enabled() && response.status.ok() && !pending.degraded) {
      // The full-pair answer goes in (before any range slicing below), so
      // one entry serves every shard range of this request shape.
      ResultCache::Entry entry;
      if (pending.request.kind == ServeQueryKind::kMatch) {
        entry.assignment = response.assignment;
      } else {
        entry.topk = response.topk;
        entry.topk_scores = response.topk_scores;
      }
      cache_.Insert(MakeResultKey(task.pair, version, pending.request),
                    std::move(entry));
    }
    if (response.status.ok()) {
      SliceRowRange(pending.request, task.snapshot->source().rows(),
                    &response);
    }
    Respond(&pending, std::move(response));
  }
  engine->ClearStageDeadline();
}

void MatchServer::Respond(Pending* pending, ServeResponse response) {
  const double latency_micros =
      MicrosBetween(pending->enqueued, Clock::now());
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    stats_.RecordTimedOut();
  } else {
    stats_.RecordDone(response.status.ok(), latency_micros);
  }
  pending->promise.set_value(std::move(response));
}

}  // namespace entmatcher
