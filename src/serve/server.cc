#include "serve/server.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "index/candidate_index.h"
#include "la/kernels/dispatch.h"
#include "la/topk.h"
#include "matching/sparse_matchers.h"
#include "matching/sparse_transforms.h"

namespace entmatcher {

namespace {

double MicrosBetween(std::chrono::steady_clock::time_point from,
                     std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

}  // namespace

MatchServer::MatchServer(const MatchServerConfig& config)
    : config_(config), stats_(config.max_batch) {}

Result<std::unique_ptr<MatchServer>> MatchServer::Create(
    const MatchServerConfig& config) {
  if (config.queue_capacity == 0) {
    return Status::InvalidArgument("MatchServer: queue_capacity must be >= 1");
  }
  if (config.max_batch == 0) {
    return Status::InvalidArgument("MatchServer: max_batch must be >= 1");
  }
  if (config.shed_watermark > config.queue_capacity) {
    return Status::InvalidArgument(
        "MatchServer: shed_watermark above queue_capacity would never fire");
  }
  if (config.degrade_watermark > 0 && config.degrade_num_candidates == 0) {
    return Status::InvalidArgument(
        "MatchServer: degrade_num_candidates must be >= 1 when degrading");
  }
  return std::unique_ptr<MatchServer>(new MatchServer(config));
}

MatchServer::~MatchServer() { Shutdown(); }

Status MatchServer::LoadPair(const std::string& name, Matrix source,
                             Matrix target, const MatchOptions& base) {
  MatchOptions options = base;
  options.workspace_budget_bytes = config_.workspace_budget_bytes;
  Result<MatchEngine> engine =
      MatchEngine::Create(std::move(source), std::move(target), options);
  if (!engine.ok()) return engine.status();
  std::lock_guard<std::mutex> lock(engines_mu_);
  auto [it, inserted] = engines_.emplace(
      name, std::make_unique<MatchEngine>(std::move(engine).value()));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("MatchServer: pair already loaded: " + name);
  }
  return Status::OK();
}

Status MatchServer::AttachIndex(const std::string& name,
                                std::unique_ptr<CandidateIndex> index) {
  if (index == nullptr) {
    return Status::InvalidArgument("MatchServer: AttachIndex: null index");
  }
  std::lock_guard<std::mutex> lock(engines_mu_);
  auto it = engines_.find(name);
  if (it == engines_.end()) {
    return Status::NotFound("MatchServer: unknown pair: " + name);
  }
  if (index->num_targets() != it->second->target().rows()) {
    return Status::InvalidArgument(
        "MatchServer: candidate index was built over a different target set "
        "than pair '" + name + "'");
  }
  auto [idx_it, inserted] = indexes_.emplace(name, std::move(index));
  (void)idx_it;
  if (!inserted) {
    return Status::AlreadyExists("MatchServer: pair already has an index: " +
                                 name);
  }
  return Status::OK();
}

Status MatchServer::Start() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  if (scheduler_.joinable()) {
    return Status::FailedPrecondition("MatchServer: already started");
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stopping_) {
      return Status::FailedPrecondition("MatchServer: already shut down");
    }
  }
  scheduler_ = std::thread(&MatchServer::SchedulerLoop, this);
  return Status::OK();
}

std::future<ServeResponse> MatchServer::Submit(ServeRequest request) {
  std::promise<ServeResponse> promise;
  std::future<ServeResponse> future = promise.get_future();
  // Admission control: answer doomed or unservable requests now, on the
  // submitting thread, instead of letting them queue behind real work.
  Status verdict = Status::OK();
  MatchEngine* engine = nullptr;
  const CandidateIndex* degrade_index = nullptr;
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    auto it = engines_.find(request.pair);
    if (it != engines_.end()) engine = it->second.get();
    auto idx_it = indexes_.find(request.pair);
    if (idx_it != indexes_.end()) degrade_index = idx_it->second.get();
  }
  if (engine == nullptr) {
    verdict = Status::NotFound("MatchServer: unknown pair: " + request.pair);
  } else if (request.kind == ServeQueryKind::kMatch &&
             request.options.matcher == MatcherKind::kRl) {
    verdict = Status::InvalidArgument(
        "MatchServer: the RL matcher needs KG context and cannot be served");
  } else if (request.kind == ServeQueryKind::kTopK && request.topk == 0) {
    verdict = Status::InvalidArgument("MatchServer: topk must be >= 1");
  } else if (UsesSparsePath(request.options) &&
             request.kind == ServeQueryKind::kTopK) {
    verdict = Status::InvalidArgument(
        "MatchServer: top-k serving needs the dense score path; drop the "
        "candidate index / quantized precision for top-k queries");
  } else if (UsesSparsePath(request.options) &&
             request.options.num_candidates == 0) {
    verdict = Status::InvalidArgument(
        "MatchServer: a sparse query (candidate_index or score_precision) "
        "needs num_candidates >= 1");
  } else if (UsesQuantizedCandidates(request.options) &&
             request.options.metric == SimilarityMetric::kNegManhattan) {
    verdict = Status::InvalidArgument(
        "MatchServer: manhattan has no quantized surrogate; use "
        "score_precision = float32 with this metric");
  } else if (UsesSparsePath(request.options) &&
             !TransformSupportsSparse(request.options.transform)) {
    verdict = Status::InvalidArgument(
        "MatchServer: the requested transform has no sparse variant; drop "
        "the candidate index / quantized precision for this query");
  } else if (UsesSparsePath(request.options) &&
             !MatcherSupportsSparse(request.options.matcher)) {
    verdict = Status::InvalidArgument(
        "MatchServer: the requested matcher cannot decide over candidate "
        "lists; drop the candidate index / quantized precision for this "
        "query");
  } else if (UsesCandidateIndex(request.options) &&
             request.options.candidate_index->num_targets() !=
                 engine->target().rows()) {
    verdict = Status::InvalidArgument(
        "MatchServer: candidate index was built over a different target set "
        "than pair '" + request.pair + "'");
  } else if (config_.workspace_budget_bytes > 0) {
    MatchOptions declared = request.options;
    // Top-k runs no decision stage; only stages 1+2 count against it.
    if (request.kind == ServeQueryKind::kTopK) {
      declared.matcher = MatcherKind::kGreedy;
    }
    const size_t bytes = engine->DeclaredWorkspaceBytes(declared);
    if (bytes > config_.workspace_budget_bytes) {
      verdict = Status::ResourceExhausted(
          "MatchServer: declared workspace of " + std::to_string(bytes) +
          " B exceeds the arena budget of " +
          std::to_string(config_.workspace_budget_bytes) + " B");
    }
  }

  // Degrade-to-sparse eligibility: a dense full-match whose stages all have
  // sparse variants, against a pair that has an attached index. Decided
  // outside the queue lock; *whether* to degrade is decided at the observed
  // depth below.
  const bool degradable =
      verdict.ok() && config_.degrade_watermark > 0 &&
      degrade_index != nullptr && request.kind == ServeQueryKind::kMatch &&
      !UsesSparsePath(request.options) &&
      TransformSupportsSparse(request.options.transform) &&
      MatcherSupportsSparse(request.options.matcher);

  size_t depth_after = 0;
  bool shed = false;
  uint64_t retry_after_micros = 0;
  bool degraded = false;
  if (verdict.ok()) {
    Pending pending;
    pending.request = std::move(request);
    pending.enqueued = Clock::now();
    pending.deadline =
        pending.request.timeout_micros > 0
            ? pending.enqueued +
                  std::chrono::microseconds(pending.request.timeout_micros)
            : Clock::time_point::max();
    std::lock_guard<std::mutex> lock(queue_mu_);
    const size_t depth = queue_.size();
    if (stopping_) {
      verdict = Status::FailedPrecondition("MatchServer: shut down");
    } else if (depth >= config_.queue_capacity) {
      // kUnavailable, not kResourceExhausted: the queue being full is a
      // transient load condition the client may retry, unlike a request
      // whose own footprint exceeds the arena budget.
      shed = true;
      retry_after_micros = RetryAfterHintMicros(depth);
      verdict = Status::Unavailable(
          "MatchServer: request queue full (" +
          std::to_string(config_.queue_capacity) + ")");
    } else {
      if (degradable && depth >= config_.degrade_watermark) {
        pending.request.options.candidate_index = degrade_index;
        pending.request.options.num_candidates =
            config_.degrade_num_candidates;
        pending.request.options.index_nprobe =
            std::max<size_t>(1, config_.degrade_nprobe);
        pending.degraded = true;
        degraded = true;
      } else if (config_.shed_watermark > 0 &&
                 depth >= config_.shed_watermark) {
        shed = true;
        retry_after_micros = RetryAfterHintMicros(depth);
        verdict = Status::Unavailable(
            "MatchServer: shedding at queue depth " + std::to_string(depth) +
            " (watermark " + std::to_string(config_.shed_watermark) + ")");
      }
      if (verdict.ok()) {
        pending.promise = std::move(promise);
        queue_.push_back(std::move(pending));
        depth_after = queue_.size();
      }
    }
  }

  if (!verdict.ok()) {
    stats_.RecordRejected();
    if (shed) stats_.RecordShed();
    ServeResponse response;
    response.status = std::move(verdict);
    response.retry_after_micros = retry_after_micros;
    promise.set_value(std::move(response));
    return future;
  }
  if (degraded) stats_.RecordDegraded();
  stats_.RecordAdmitted(depth_after);
  queue_cv_.notify_one();
  return future;
}

uint64_t MatchServer::RetryAfterHintMicros(size_t queue_depth) const {
  // Rough time-to-drain estimate: every queued request costs at most one
  // flush window (batching only shortens it). Floor of 1ms so a hint is
  // never "retry immediately" while we are actively shedding.
  const uint64_t per_request =
      config_.flush_micros > 0 ? config_.flush_micros : 200;
  return std::max<uint64_t>(1000, per_request * (queue_depth + 1));
}

ServeResponse MatchServer::Query(ServeRequest request) {
  return Submit(std::move(request)).get();
}

ServerStatsSnapshot MatchServer::Stats() const {
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    depth = queue_.size();
  }
  return stats_.Snapshot(depth);
}

std::string MatchServer::HealthJson() const {
  const ServerStatsSnapshot snapshot = Stats();
  const double shed_rate =
      snapshot.submitted > 0
          ? static_cast<double>(snapshot.shed) /
                static_cast<double>(snapshot.submitted)
          : 0.0;
  std::string json = "{";
  json += "\"queue_depth\": " + std::to_string(snapshot.queue_depth);
  json += ", \"queue_capacity\": " + std::to_string(config_.queue_capacity);
  json += ", \"shed_watermark\": " + std::to_string(config_.shed_watermark);
  json +=
      ", \"degrade_watermark\": " + std::to_string(config_.degrade_watermark);
  json += ", \"submitted\": " + std::to_string(snapshot.submitted);
  json += ", \"shed\": " + std::to_string(snapshot.shed);
  json += ", \"degraded\": " + std::to_string(snapshot.degraded);
  json += ", \"shed_rate\": " + std::to_string(shed_rate);
  json += ", \"fault_plan\": \"" + FaultInjector::Global().Fingerprint() +
          "\"";
  json += ", \"kernels\": " + KernelStatusJson();
  json += "}";
  return json;
}

void MatchServer::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (scheduler_.joinable()) scheduler_.join();
  // Only reachable with a non-empty queue when the scheduler never started:
  // a running scheduler drains everything before exiting.
  std::deque<Pending> leftover;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    leftover.swap(queue_);
  }
  for (Pending& pending : leftover) {
    ServeResponse response;
    response.status = Status::FailedPrecondition(
        "MatchServer: shut down before the request executed");
    Respond(&pending, std::move(response));
  }
}

std::vector<MatchServer::Pending> MatchServer::NextCycle() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  queue_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping, fully drained

  std::vector<Pending> cycle;
  cycle.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const Clock::time_point flush_deadline =
      Clock::now() + std::chrono::microseconds(config_.flush_micros);
  while (cycle.size() < config_.max_batch) {
    if (!queue_.empty()) {
      cycle.push_back(std::move(queue_.front()));
      queue_.pop_front();
      continue;
    }
    if (stopping_ || config_.flush_micros == 0) break;
    // Keep the batch open until the flush window closes or it fills.
    if (!queue_cv_.wait_until(lock, flush_deadline, [&] {
          return stopping_ || !queue_.empty();
        })) {
      break;
    }
  }
  return cycle;
}

void MatchServer::SchedulerLoop() {
  for (;;) {
    std::vector<Pending> cycle = NextCycle();
    if (cycle.empty()) return;
    // Split the cycle into compatible groups — queries sharing a pair and a
    // ScoreSignature — preserving arrival order; each group is one batch.
    while (!cycle.empty()) {
      const std::string pair = cycle.front().request.pair;
      const ScoreSignature signature =
          ScoreSignature::Of(cycle.front().request.options);
      std::vector<Pending> group;
      std::vector<Pending> rest;
      for (Pending& pending : cycle) {
        if (pending.request.pair == pair &&
            ScoreSignature::Of(pending.request.options) == signature) {
          group.push_back(std::move(pending));
        } else {
          rest.push_back(std::move(pending));
        }
      }
      cycle = std::move(rest);
      ExecuteGroup(std::move(group));
    }
  }
}

void MatchServer::ExecuteGroup(std::vector<Pending> group) {
  // Requests whose deadline passed while queued are answered without paying
  // for any kernel work.
  const Clock::time_point now = Clock::now();
  std::vector<Pending> live;
  live.reserve(group.size());
  for (Pending& pending : group) {
    if (pending.deadline <= now) {
      ServeResponse response;
      response.status = Status::DeadlineExceeded(
          "MatchServer: request expired after " +
          std::to_string(static_cast<uint64_t>(
              MicrosBetween(pending.enqueued, now))) +
          " us in queue");
      Respond(&pending, std::move(response));
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (live.empty()) return;

  MatchEngine* engine = nullptr;
  {
    std::lock_guard<std::mutex> lock(engines_mu_);
    auto it = engines_.find(live.front().request.pair);
    if (it != engines_.end()) engine = it->second.get();
  }

  stats_.RecordBatch(live.size());
  // The shared scores pass runs under the *latest* live deadline: a
  // short-deadline rider must not abort a batch that other requests can
  // still use. Each decision stage then runs under its own request's
  // deadline (ScoredBatch::Match checks it at entry).
  Clock::time_point group_deadline = Clock::time_point::min();
  for (const Pending& pending : live) {
    group_deadline = std::max(group_deadline, pending.deadline);
  }
  if (engine != nullptr && group_deadline != Clock::time_point::max()) {
    engine->SetStageDeadline(group_deadline);
  }
  Result<MatchEngine::ScoredBatch> batch =
      engine != nullptr
          ? engine->BeginBatch(live.front().request.options)
          : Result<MatchEngine::ScoredBatch>(Status::Internal(
                "MatchServer: pair vanished after admission"));
  for (Pending& pending : live) {
    ServeResponse response;
    response.batch_size = live.size();
    response.degraded = pending.degraded;
    if (engine != nullptr) {
      if (pending.deadline != Clock::time_point::max()) {
        engine->SetStageDeadline(pending.deadline);
      } else {
        engine->ClearStageDeadline();
      }
    }
    if (!batch.ok()) {
      response.status = batch.status();
    } else if (pending.deadline <= Clock::now()) {
      // Expired while the shared pass ran (or while batch-mates decided).
      response.status = Status::DeadlineExceeded(
          "MatchServer: deadline expired during the scores pass");
    } else if (pending.request.kind == ServeQueryKind::kMatch) {
      Result<Assignment> assignment = batch->Match(pending.request.options);
      if (assignment.ok()) {
        response.assignment = std::move(assignment).value();
      } else {
        response.status = assignment.status();
      }
    } else {
      response.topk = RowTopKIndices(batch->scores(), pending.request.topk);
    }
    Respond(&pending, std::move(response));
  }
  if (engine != nullptr) engine->ClearStageDeadline();
}

void MatchServer::Respond(Pending* pending, ServeResponse response) {
  const double latency_micros =
      MicrosBetween(pending->enqueued, Clock::now());
  if (response.status.code() == StatusCode::kDeadlineExceeded) {
    stats_.RecordTimedOut();
  } else {
    stats_.RecordDone(response.status.ok(), latency_micros);
  }
  pending->promise.set_value(std::move(response));
}

}  // namespace entmatcher
