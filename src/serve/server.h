#ifndef ENTMATCHER_SERVE_SERVER_H_
#define ENTMATCHER_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "matching/engine.h"
#include "matching/types.h"
#include "serve/stats.h"

namespace entmatcher {

class CandidateIndex;

/// Tuning knobs of a MatchServer.
struct MatchServerConfig {
  /// Bound of the request queue; a Submit that finds it full is rejected
  /// with kUnavailable + a retry-after hint instead of blocking
  /// (backpressure stays at the client, the scheduler never drowns).
  size_t queue_capacity = 256;
  /// Upper bound on queries coalesced into one similarity+transform pass.
  /// 1 disables micro-batching (strict per-request execution).
  size_t max_batch = 8;
  /// After the first request of a cycle arrives, how long the scheduler
  /// keeps the batch open for more requests before flushing. 0 flushes
  /// immediately with whatever is already queued.
  uint64_t flush_micros = 200;
  /// Per-engine workspace-arena budget in bytes (0 = unlimited); each
  /// request's DeclaredWorkspaceBytes is pre-checked against it at admission.
  size_t workspace_budget_bytes = 0;
  /// Overload shedding: a queue depth at or above this watermark sheds new
  /// requests with kUnavailable + a retry-after hint *before* they queue —
  /// under sustained overload, bounded staleness beats an ever-deeper queue
  /// whose tail is doomed to time out anyway. 0 disables shedding (only the
  /// hard queue_capacity bound rejects, also with kUnavailable).
  size_t shed_watermark = 0;
  /// Graceful degradation: at or above this depth, an eligible dense kMatch
  /// request (sparse-capable transform+matcher, no index of its own, and an
  /// index attached for the pair via AttachIndex) is rewritten to the sparse
  /// candidate path — approximate answers at a fraction of the kernel cost.
  /// Checked before shed_watermark, so degrade < shed means "degrade first,
  /// shed only deeper". 0 disables.
  size_t degrade_watermark = 0;
  /// Candidates per source row / probes used for degraded requests.
  size_t degrade_num_candidates = 32;
  size_t degrade_nprobe = 4;
};

/// What a ServeRequest asks of the engine.
enum class ServeQueryKind {
  /// Full pipeline: transformed scores + decision stage -> Assignment.
  kMatch,
  /// Transformed scores + RowTopKIndices -> flattened (rows × k) candidates.
  kTopK,
};

/// One client query against a loaded embedding pair.
struct ServeRequest {
  /// Name the pair was loaded under (LoadPair).
  std::string pair = "default";
  ServeQueryKind kind = ServeQueryKind::kMatch;
  /// Pipeline configuration; the ScoreSignature part is the batching key.
  MatchOptions options;
  /// Candidates per source row (kTopK only; clamped to target rows).
  size_t topk = 10;
  /// End-to-end deadline measured from Submit; a request still queued when
  /// it expires is answered kDeadlineExceeded without executing. 0 = none.
  uint64_t timeout_micros = 0;
};

/// The server's answer. Exactly one payload field is filled on success.
struct ServeResponse {
  Status status;
  /// kMatch payload.
  Assignment assignment;
  /// kTopK payload: flattened (rows × k') indices, k' = min(k, target rows).
  std::vector<uint32_t> topk;
  /// How many queries shared this response's scores pass (1 = ran alone).
  size_t batch_size = 0;
  /// Backoff hint accompanying a shed (kUnavailable) status; 0 = none.
  uint64_t retry_after_micros = 0;
  /// True when overload rewrote this request onto the sparse candidate path
  /// (the answer is approximate relative to the dense request submitted).
  bool degraded = false;
};

/// A long-lived, multi-client serving layer over MatchEngine sessions.
///
/// One warm engine per loaded embedding pair; clients submit queries from
/// any thread into a bounded queue and a single scheduler thread drains it,
/// coalescing queries with equal (pair, ScoreSignature) into one scores pass
/// (MatchEngine::BeginBatch) of at most max_batch queries — the decision
/// stage still runs per query, so every response is bit-identical to a solo
/// MatchEngine::Match/TransformedScores with the same options (pinned by
/// tests/serve/serve_test.cc). Incompatible queries in a cycle simply form
/// their own (possibly singleton) groups: per-request execution is the
/// natural fallback, not a separate code path.
///
/// Admission control happens on the submitting thread, before queueing:
/// unknown pair (kNotFound), RL matcher (kInvalidArgument: no KG context in
/// the serving layer), a DeclaredWorkspaceBytes above the arena budget
/// (kResourceExhausted — the query is doomed, reject it now, not after it
/// queued behind real work), and a full queue (kUnavailable + retry hint).
///
/// Lifecycle: Create -> LoadPair (any number) -> Start -> Submit/Query ...
/// -> Shutdown (drains the queue, answering still-pending requests with
/// kFailedPrecondition). LoadPair is allowed while running; engines are only
/// ever *queried* by the scheduler thread, so MatchEngine's single-thread
/// contract holds.
class MatchServer {
 public:
  static Result<std::unique_ptr<MatchServer>> Create(
      const MatchServerConfig& config);

  /// Shutdown() if still running.
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Prepares a warm engine for (source, target) under `name`. `base`
  /// provides session defaults; its workspace_budget_bytes is overridden by
  /// the server-level config. kAlreadyExists if the name is taken.
  Status LoadPair(const std::string& name, Matrix source, Matrix target,
                  const MatchOptions& base = MatchOptions());

  /// Attaches a candidate index to pair `name` for degrade-to-sparse: under
  /// overload (degrade_watermark) eligible dense requests are served from it
  /// instead of being shed. The server takes ownership. kNotFound for an
  /// unloaded pair, kInvalidArgument when the index was built over a
  /// different target set, kAlreadyExists if one is attached.
  Status AttachIndex(const std::string& name,
                     std::unique_ptr<CandidateIndex> index);

  /// Spawns the scheduler thread. Requests submitted before Start wait in
  /// the queue (handy for tests and warm-up scripts). kFailedPrecondition
  /// if already started or shut down.
  Status Start();

  /// Admission-checks `request` and enqueues it; the future resolves when
  /// the scheduler answers. Admission failures resolve immediately, with
  /// the failure also recorded in the stats (rejected count).
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Blocking convenience: Submit + wait.
  ServeResponse Query(ServeRequest request);

  /// Current counters; `queue_depth` is sampled at the call.
  ServerStatsSnapshot Stats() const;

  /// Liveness summary as JSON: queue depth vs capacity/watermarks, shed and
  /// degrade counts + shed rate, and the armed fault-plan fingerprint —
  /// what a probe needs to tell "slow" from "dying" without the full stats.
  std::string HealthJson() const;

  /// Stops accepting new work, lets the scheduler drain everything already
  /// queued (executing live requests, failing the rest only if the scheduler
  /// never started), and joins it. Idempotent.
  void Shutdown();

  const MatchServerConfig& config() const { return config_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // time_point::max() when none
    bool degraded = false;       // overload rewrote it onto the sparse path
  };

  explicit MatchServer(const MatchServerConfig& config);

  /// Scheduler body: pop a cycle's worth of requests, group, execute.
  void SchedulerLoop();

  /// Blocks for the next cycle of at most max_batch requests (waiting up to
  /// flush_micros after the first arrival). Empty result means shutdown.
  std::vector<Pending> NextCycle();

  /// Executes one compatible group (same pair + signature) as one batch.
  void ExecuteGroup(std::vector<Pending> group);

  /// Answers `pending` and updates outcome/latency stats.
  void Respond(Pending* pending, ServeResponse response);

  /// Backoff hint attached to shed responses: a time-to-drain estimate from
  /// the observed queue depth.
  uint64_t RetryAfterHintMicros(size_t queue_depth) const;

  MatchServerConfig config_;
  ServerStats stats_;

  mutable std::mutex engines_mu_;
  std::map<std::string, std::unique_ptr<MatchEngine>> engines_;
  // Degrade-to-sparse indexes, keyed by pair name; owned here so rewritten
  // options' raw pointers stay valid for the server's lifetime.
  std::map<std::string, std::unique_ptr<CandidateIndex>> indexes_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  // Serializes Start/Shutdown (thread spawn + join); never taken by the
  // scheduler itself.
  std::mutex lifecycle_mu_;
  std::thread scheduler_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_SERVER_H_
