#ifndef ENTMATCHER_SERVE_SERVER_H_
#define ENTMATCHER_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "la/matrix.h"
#include "matching/engine.h"
#include "matching/snapshot.h"
#include "matching/types.h"
#include "serve/result_cache.h"
#include "serve/stats.h"

namespace entmatcher {

class CandidateIndex;

/// Tuning knobs of a MatchServer.
struct MatchServerConfig {
  /// Bound of the request queue; a Submit that finds it full is rejected
  /// with kUnavailable + a retry-after hint instead of blocking
  /// (backpressure stays at the client, the scheduler never drowns).
  size_t queue_capacity = 256;
  /// Upper bound on queries coalesced into one similarity+transform pass.
  /// 1 disables micro-batching (strict per-request execution).
  size_t max_batch = 8;
  /// After the first request of a cycle arrives, how long the scheduler
  /// keeps the batch open for more requests before flushing. 0 flushes
  /// immediately with whatever is already queued.
  uint64_t flush_micros = 200;
  /// Per-engine workspace-arena budget in bytes (0 = unlimited); each
  /// request's DeclaredWorkspaceBytes is pre-checked against it at admission.
  size_t workspace_budget_bytes = 0;
  /// Overload shedding: a queue depth at or above this watermark sheds new
  /// requests with kUnavailable + a retry-after hint *before* they queue —
  /// under sustained overload, bounded staleness beats an ever-deeper queue
  /// whose tail is doomed to time out anyway. 0 disables shedding (only the
  /// hard queue_capacity bound rejects, also with kUnavailable).
  size_t shed_watermark = 0;
  /// Graceful degradation: at or above this depth, an eligible dense kMatch
  /// request (sparse-capable transform+matcher, no index of its own, and an
  /// index attached for the pair via AttachIndex) is rewritten to the sparse
  /// candidate path — approximate answers at a fraction of the kernel cost.
  /// Checked before shed_watermark, so degrade < shed means "degrade first,
  /// shed only deeper". 0 disables.
  size_t degrade_watermark = 0;
  /// Candidates per source row / probe knobs used for degraded requests
  /// (nprobe feeds an IVF pair index, ef an HNSW one; the inactive knob is
  /// canonically zeroed out of the batch signature).
  size_t degrade_num_candidates = 32;
  size_t degrade_nprobe = 4;
  size_t degrade_ef = 64;
  /// Execution worker threads. Batch groups formed by the scheduler are
  /// dispatched to this pool; groups over different pairs or signatures run
  /// truly concurrently. 0 = resolve from EM_SERVE_WORKERS, falling back to
  /// std::thread::hardware_concurrency(). Responses are bit-identical at
  /// every worker count (groups are formed by one scheduler and each group
  /// executes sequentially on one worker).
  size_t serve_workers = 0;
  /// Byte budget of the cross-request LRU result cache (0 = disabled). A
  /// cached answer is returned without any pipeline work; keys include the
  /// snapshot version, so hot swaps can never serve stale bytes.
  size_t result_cache_bytes = 0;
};

/// What a ServeRequest asks of the engine.
enum class ServeQueryKind {
  /// Full pipeline: transformed scores + decision stage -> Assignment.
  kMatch,
  /// Transformed scores + RowTopKIndices -> flattened (rows × k) candidates.
  kTopK,
};

/// One client query against a loaded embedding pair.
struct ServeRequest {
  /// Name the pair was loaded under (LoadPair).
  std::string pair = "default";
  ServeQueryKind kind = ServeQueryKind::kMatch;
  /// Pipeline configuration; the ScoreSignature part is the batching key.
  MatchOptions options;
  /// Candidates per source row (kTopK only; clamped to target rows).
  size_t topk = 10;
  /// End-to-end deadline measured from Submit; a request still queued when
  /// it expires is answered kDeadlineExceeded without executing. 0 = none.
  uint64_t timeout_micros = 0;
  /// Routed sub-query: answer only source rows [row_begin, row_end). The
  /// full deterministic pipeline still runs (transforms are globally
  /// normalized, so a row's answer cannot depend on which rows were asked
  /// for) — only the response payload is sliced. (0, 0) = all rows.
  size_t row_begin = 0;
  size_t row_end = 0;
  /// kTopK only: also return the transformed score of every returned
  /// candidate (bit-exact), so a router can merge partial lists by
  /// (score desc, id asc).
  bool want_scores = false;
};

/// The server's answer. Exactly one payload field is filled on success.
struct ServeResponse {
  Status status;
  /// kMatch payload.
  Assignment assignment;
  /// kTopK payload: flattened (rows × k') indices, k' = min(k, target rows).
  /// For a row-ranged request, rows = row_end - row_begin.
  std::vector<uint32_t> topk;
  /// kTopK with want_scores: transformed scores parallel to `topk`.
  std::vector<float> topk_scores;
  /// How many queries shared this response's scores pass (1 = ran alone; 0 =
  /// no pass ran: admission failure, expiry, or a result-cache hit).
  size_t batch_size = 0;
  /// Backoff hint accompanying a shed (kUnavailable) status; 0 = none.
  uint64_t retry_after_micros = 0;
  /// True when overload rewrote this request onto the sparse candidate path
  /// (the answer is approximate relative to the dense request submitted).
  bool degraded = false;
  /// Version of the PairSnapshot the answer was computed against (0 when no
  /// snapshot was touched). With batch_id this is what lets tests assert
  /// that no batch ever mixed snapshot versions.
  uint64_t snapshot_version = 0;
  /// Id of the executed batch this response rode in (ServerStats ids,
  /// 1-based; 0 = no batch executed for this response).
  uint64_t batch_id = 0;
  /// True when the answer came from the cross-request result cache.
  bool cached = false;
};

/// A long-lived, multi-client serving layer over immutable PairSnapshots.
///
/// Architecture (the read-mostly concurrency refactor): every loaded pair is
/// an immutable, ref-counted PairSnapshot in a SnapshotRegistry. Clients
/// submit queries from any thread into a bounded queue; ONE scheduler thread
/// drains it and — exactly as before the refactor — coalesces queries with
/// equal (pair, ScoreSignature) into batch groups of at most max_batch
/// queries. What changed is execution: groups are dispatched to a pool of
/// `serve_workers` worker threads, each owning a private MatchEngine per
/// pair over the shared snapshot (embeddings and similarity caches are read
/// in place; only the workspace arena is per-worker). Groups over different
/// pairs or signatures therefore run truly concurrently, while each group
/// still executes sequentially on one worker — which is why every response
/// stays bit-identical to a solo MatchEngine::Match/TransformedScores with
/// the same options at EVERY worker count (pinned by
/// tests/serve/serve_concurrency_test.cc).
///
/// Hot swap: SwapPair builds a new snapshot (warming its caches first) and
/// atomically publishes it; in-flight groups keep the version they pinned
/// when scheduled, so a batch never mixes v and v+1 data, and the displaced
/// snapshot is reclaimed through the registry's EpochDomain only after every
/// pass active at the swap has drained.
///
/// Result cache: with result_cache_bytes > 0, the scheduler probes an LRU
/// cache keyed by (pair, snapshot version, ScoreSignature, matcher, kind,
/// topk) before grouping; hits answer immediately with the stored bytes
/// (bit-identical — the pipeline is deterministic), misses execute and
/// insert. Degraded answers are never cached.
///
/// Admission control happens on the submitting thread, before queueing:
/// unknown pair (kNotFound), RL matcher (kInvalidArgument: no KG context in
/// the serving layer), a DeclaredWorkspaceBytes above the arena budget
/// (kResourceExhausted — the query is doomed, reject it now, not after it
/// queued behind real work), and a full queue (kUnavailable + retry hint).
/// Under degrade_watermark pressure an eligible request is only *marked*
/// degraded at admission; the scheduler rewrites its options from the
/// snapshot it pins for the group, so the rewritten candidate_index pointer
/// can never dangle across a swap.
///
/// Lifecycle: Create -> LoadPair (any number) -> Start -> Submit/Query ...
/// -> Shutdown (drains the queue and the task pool, answering requests that
/// never reached a scheduler with kFailedPrecondition). LoadPair, SwapPair,
/// and AttachIndex are allowed while running.
class MatchServer {
 public:
  static Result<std::unique_ptr<MatchServer>> Create(
      const MatchServerConfig& config);

  /// Shutdown() if still running.
  ~MatchServer();

  MatchServer(const MatchServer&) = delete;
  MatchServer& operator=(const MatchServer&) = delete;

  /// Publishes version 1 of (source, target) under `name` and warms its
  /// similarity cache. `base` provides session defaults; its
  /// workspace_budget_bytes is overridden by the server-level config.
  /// kAlreadyExists if the name is taken (use SwapPair to replace).
  Status LoadPair(const std::string& name, Matrix source, Matrix target,
                  const MatchOptions& base = MatchOptions());

  /// Attaches a candidate index to pair `name` (publishing a sibling
  /// snapshot that shares the embeddings) for degrade-to-sparse: under
  /// overload (degrade_watermark) eligible dense requests are served from it
  /// instead of being shed. The server takes ownership. kNotFound for an
  /// unloaded pair, kInvalidArgument when the index was built over a
  /// different target set, kAlreadyExists if one is attached.
  Status AttachIndex(const std::string& name,
                     std::unique_ptr<CandidateIndex> index);

  /// Hot swap: builds a fresh snapshot from (source, target) — with `index`
  /// attached when non-null — warms its similarity cache, and atomically
  /// publishes it as the next version of `name`. In-flight batches finish on
  /// the version they pinned; new batches see the new one; the result cache
  /// drops the pair's entries. On failure (including an armed
  /// "snapshot.publish" fault) the previous snapshot keeps serving
  /// untouched. Returns the published version. kNotFound for a pair never
  /// loaded — swap replaces, LoadPair introduces. min_version > 0 floors
  /// the published version (SnapshotRegistry::Publish) so a fleet-wide
  /// fan-out can pin one target version across shards with skewed counters.
  Result<uint64_t> SwapPair(const std::string& name, Matrix source,
                            Matrix target,
                            std::unique_ptr<CandidateIndex> index = nullptr,
                            uint64_t min_version = 0);

  /// The current snapshot of `name` (nullptr if unknown) — observability
  /// and tests; queries pin their own reference internally.
  std::shared_ptr<const PairSnapshot> CurrentSnapshot(
      const std::string& name) const;

  /// Spawns the scheduler and the worker pool. Requests submitted before
  /// Start wait in the queue (handy for tests and warm-up scripts).
  /// kFailedPrecondition if already started or shut down.
  Status Start();

  /// Admission-checks `request` and enqueues it; the future resolves when
  /// the scheduler answers. Admission failures resolve immediately, with
  /// the failure also recorded in the stats (rejected count).
  std::future<ServeResponse> Submit(ServeRequest request);

  /// Blocking convenience: Submit + wait.
  ServeResponse Query(ServeRequest request);

  /// Current counters; `queue_depth` and the cache gauges are sampled at the
  /// call.
  ServerStatsSnapshot Stats() const;

  /// Liveness summary as JSON: queue depth vs capacity/watermarks, shed and
  /// degrade counts + shed rate, worker count, swap count, and the armed
  /// fault-plan fingerprint — what a probe needs to tell "slow" from
  /// "dying" without the full stats.
  std::string HealthJson() const;

  /// Stops accepting new work, lets the scheduler and workers drain
  /// everything already queued (executing live requests, failing the rest
  /// only if the scheduler never started), and joins them. Idempotent.
  void Shutdown();

  const MatchServerConfig& config() const { return config_; }

  /// The resolved worker-pool size (config.serve_workers after the
  /// EM_SERVE_WORKERS / hardware-concurrency fallback).
  size_t serve_workers() const { return num_workers_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    Clock::time_point enqueued;
    Clock::time_point deadline;  // time_point::max() when none
    bool degraded = false;       // overload marked it for the sparse path
  };

  /// One compatible batch group, ready for a worker: the requests plus the
  /// snapshot pinned for them. Pinning here — not at execution — is what
  /// makes a mixed-version batch structurally impossible.
  struct GroupTask {
    std::string pair;
    std::shared_ptr<const PairSnapshot> snapshot;
    MatchOptions base_options;
    std::vector<Pending> group;
  };

  /// A worker's warm engine over one pair's snapshot.
  struct WorkerEngine {
    uint64_t version = 0;
    std::unique_ptr<MatchEngine> engine;
  };

  explicit MatchServer(const MatchServerConfig& config);

  /// Scheduler body: pop a cycle's worth of requests, resolve snapshots,
  /// probe the result cache, group, dispatch to the pool.
  void SchedulerLoop();

  /// Worker body: execute dispatched groups until drained and stopping.
  void WorkerLoop();

  /// Blocks for the next cycle of at most max_batch requests (waiting up to
  /// flush_micros after the first arrival). Empty result means shutdown.
  std::vector<Pending> NextCycle();

  /// Executes one compatible group as one batch on the calling worker's
  /// engines.
  void ExecuteGroup(GroupTask task,
                    std::map<std::string, WorkerEngine>* engines);

  /// Answers `pending` and updates outcome/latency stats.
  void Respond(Pending* pending, ServeResponse response);

  /// Backoff hint attached to shed responses: a time-to-drain estimate from
  /// the observed queue depth.
  uint64_t RetryAfterHintMicros(size_t queue_depth) const;

  MatchServerConfig config_;
  size_t num_workers_ = 1;
  ServerStats stats_;
  ResultCache cache_;

  /// name -> current immutable snapshot; owns the epoch domain that guards
  /// in-flight passes across swaps.
  SnapshotRegistry registry_;

  /// Per-pair session defaults (LoadPair's `base` with the server budget);
  /// worker engines are built from these.
  mutable std::mutex pairs_mu_;
  std::map<std::string, MatchOptions> base_options_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;

  /// Dispatched batch groups awaiting a worker.
  std::mutex tasks_mu_;
  std::condition_variable tasks_cv_;
  std::deque<GroupTask> tasks_;
  bool tasks_stopping_ = false;

  // Serializes Start/Shutdown (thread spawn + join); never taken by the
  // scheduler or workers.
  std::mutex lifecycle_mu_;
  std::thread scheduler_;
  std::vector<std::thread> workers_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_SERVER_H_
