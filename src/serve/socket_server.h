#ifndef ENTMATCHER_SERVE_SOCKET_SERVER_H_
#define ENTMATCHER_SERVE_SOCKET_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/server.h"

namespace entmatcher {

/// Local front-end for a MatchServer: listens on a unix-domain socket and
/// forwards framed protocol requests (serve/protocol.h) to the server.
///
/// One accept thread plus one thread per live connection, each connection
/// serving frames sequentially until the peer closes. The heavy lifting —
/// queueing, admission, batching — all happens inside MatchServer; a
/// connection thread is just a blocking Query() caller, so N concurrent
/// connections exercise exactly the in-process multi-client path.
///
/// A `shutdown` request answers "ok" and then releases WaitForShutdown();
/// the owner is expected to Stop() (also called by the destructor), which
/// closes the listener, unlinks the socket path, and joins all threads.
class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking any stale socket file)
  /// and starts accepting. `server` must outlive this object and should
  /// already be Start()ed.
  static Result<std::unique_ptr<SocketServer>> Start(
      MatchServer* server, const std::string& socket_path);

  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Blocks until a client sends `shutdown` (or Stop() is called).
  void WaitForShutdown();

  /// Closes the listener and all live connections, joins every thread, and
  /// removes the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  SocketServer(MatchServer* server, std::string socket_path, int listen_fd);

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one framed request; returns false when the connection (or the
  /// whole front-end, on `shutdown`) should close.
  bool HandleFrame(int fd, const std::string& payload);

  MatchServer* server_;
  std::string socket_path_;
  int listen_fd_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;

  std::thread accept_thread_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_SOCKET_SERVER_H_
