#ifndef ENTMATCHER_SERVE_SOCKET_SERVER_H_
#define ENTMATCHER_SERVE_SOCKET_SERVER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "serve/server.h"

namespace entmatcher {

/// What a SocketServer serves: one framed request payload in, one framed
/// response payload out. Implementations are called concurrently from every
/// connection thread and must be thread-safe. Setting `*shutdown` requests
/// front-end shutdown after the response is written (the `shutdown` verb).
///
/// The indirection is what lets the shard MatchServer front end and the
/// fleet Router speak the identical wire protocol through the identical
/// accept loop — and lets tests wrap a handler to delay or fail specific
/// verbs (hedging and failover coverage) without touching socket code.
class WireHandler {
 public:
  virtual ~WireHandler() = default;

  /// Handles one request payload and returns the encoded response payload.
  virtual std::string Handle(const std::string& payload, bool* shutdown) = 0;
};

/// WireHandler over a MatchServer: the shard-side dispatch of every protocol
/// verb (hello/match/topk/route/stats/health/shutdown/swap). `shards` is
/// refused here — it is a router verb.
class MatchServerHandler : public WireHandler {
 public:
  /// `server` must outlive the handler and should already be Start()ed.
  explicit MatchServerHandler(MatchServer* server) : server_(server) {}

  std::string Handle(const std::string& payload, bool* shutdown) override;

 private:
  MatchServer* server_;
};

/// Local front-end: listens on a unix-domain socket and forwards framed
/// protocol requests (serve/protocol.h) to a WireHandler.
///
/// One accept thread plus one thread per live connection, each connection
/// serving frames sequentially until the peer closes. The heavy lifting —
/// queueing, admission, batching — all happens behind the handler; a
/// connection thread is just a blocking caller, so N concurrent connections
/// exercise exactly the in-process multi-client path.
///
/// A `shutdown` request answers "ok" and then releases WaitForShutdown();
/// the owner is expected to Stop() (also called by the destructor), which
/// closes the listener, unlinks the socket path, and joins all threads.
class SocketServer {
 public:
  /// Binds and listens on `socket_path` (unlinking any stale socket file)
  /// and starts accepting. `handler` must outlive this object.
  static Result<std::unique_ptr<SocketServer>> Start(
      WireHandler* handler, const std::string& socket_path);

  /// Convenience: serve `server` through an internally owned
  /// MatchServerHandler. `server` must outlive this object and should
  /// already be Start()ed.
  static Result<std::unique_ptr<SocketServer>> Start(
      MatchServer* server, const std::string& socket_path);

  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Blocks until a client sends `shutdown` (or Stop() is called).
  void WaitForShutdown();

  /// Closes the listener and all live connections, joins every thread, and
  /// removes the socket file. Idempotent.
  void Stop();

  const std::string& socket_path() const { return socket_path_; }

 private:
  SocketServer(WireHandler* handler, std::string socket_path, int listen_fd);

  void AcceptLoop();
  void ServeConnection(int fd);
  /// Handles one framed request; returns false when the connection (or the
  /// whole front-end, on `shutdown`) should close.
  bool HandleFrame(int fd, const std::string& payload);

  WireHandler* handler_;
  /// Set by the MatchServer convenience Start; handler_ points at it.
  std::unique_ptr<WireHandler> owned_handler_;
  std::string socket_path_;
  int listen_fd_;

  std::mutex mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool stopped_ = false;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;

  std::thread accept_thread_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_SOCKET_SERVER_H_
