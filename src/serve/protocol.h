#ifndef ENTMATCHER_SERVE_PROTOCOL_H_
#define ENTMATCHER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "matching/types.h"

namespace entmatcher {

// Wire format of the serve front-end. -----------------------------------------
//
// Every message is one frame: a 4-byte little-endian unsigned payload length
// followed by that many payload bytes. Requests are a single text line;
// responses are a text header line optionally followed by a binary int32
// array. Deliberately dependency-free and greppable — `xxd` on a capture
// shows the whole conversation.
//
// Requests (protocol v3):
//   "hello"                            version handshake: responds with a
//                                      text JSON payload carrying protocol
//                                      and build versions plus the peer's
//                                      role ("shard" or "router"); the
//                                      router refuses shards whose protocol
//                                      differs from its own.
//   "match <ALGO> [pair=NAME] [timeout_us=N]"
//                                      full pipeline -> assignment
//   "topk <ALGO> <k> [pair=NAME] [timeout_us=N]"
//                                      transformed scores -> top-k indices
//   "route <PAIR> <LO>:<HI> match <ALGO> [timeout_us=N]"
//   "route <PAIR> <LO>:<HI> topk <ALGO> <k> [timeout_us=N]"
//                                      a router-issued sub-query: answer
//                                      only source rows [LO, HI) of PAIR.
//                                      The shard still runs the full
//                                      deterministic pipeline (transforms
//                                      are globally normalized, so answers
//                                      cannot depend on the split) and
//                                      slices the response rows. Routed
//                                      topk responses additionally carry
//                                      the per-entry scores so the router
//                                      can merge by (score desc, id asc).
//   "stats"                            serving counters as JSON
//   "health"                           liveness JSON (queue depth, shed
//                                      rate, per-pair snapshot versions,
//                                      cache counters, fault-plan
//                                      fingerprint)
//   "shards"                           router only: shard plan + per-shard
//                                      channel state as JSON
//   "shutdown"                         stop the server after responding
//   "swap <PAIR> <SRC> <TGT> [index=PATH] [version=N]"
//                                      admin: hot-swap pair PAIR to the
//                                      embeddings at server-side paths
//                                      SRC/TGT (WriteMatrixBinary format),
//                                      optionally attaching the candidate
//                                      index saved at PATH; responds
//                                      "swapped <PAIR> v<N>". version=N
//                                      floors the published snapshot
//                                      version — the router pins one target
//                                      version across its fan-out so a
//                                      repair swap re-converges shards with
//                                      skewed counters. On a router this
//                                      fans out to every owning shard with
//                                      all-or-nothing semantics. Names and
//                                      paths cannot contain spaces (the
//                                      request line is space-tokenized).
// <ALGO> is a paper preset name (DInf, CSLS, RInf, RInf-wr, RInf-pb, Sink.,
// Hun., SMat). timeout_us carries the client's end-to-end deadline onto the
// wire; the scheduler drops expired work before scoring and the engine
// checks the deadline between stages.
//
// Responses:
//   "ok values <n> [version=V] [range=LO:HI] [scores=M] [coverage=LO:HI,...]\n"
//       + n little-endian int32s + M little-endian float32 bit patterns
//                                    (match / topk payload; version tags the
//                                     pair snapshot that answered, range
//                                     echoes a routed sub-query's rows, and
//                                     scores carries bit-exact float scores
//                                     for routed topk merging. coverage= is
//                                     the router's degraded-answer marker:
//                                     only the listed source-row ranges are
//                                     authoritative, rows outside them are
//                                     -1 placeholders because no live shard
//                                     owned them. Absent = full coverage.
//                                     Degraded answers are never cached.)
//   "ok text\n" + UTF-8 text         (stats / health / hello payload)
//   "error <CODE> [retry_after_us=N] <message>"  (any failure)
// retry_after_us is the server's backoff hint on kUnavailable shed
// responses; well-behaved clients (ServeClient's RetryPolicy) wait at least
// that long before retrying.

/// Wire protocol version, carried in the `hello` handshake. v2 added hello,
/// shards, route, pair= on match/topk, and the version/range/scores fields
/// of values responses. v3 added the coverage= field of values responses
/// (router partial-coverage degradation) — a v2 parser would refuse the
/// unknown field, so degraded answers require the handshake to agree on v3.
inline constexpr int kProtocolVersion = 3;

/// Hard cap on accepted frame payloads (1 GiB would be a corrupt length
/// prefix long before it is a real workload).
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/// Writes one frame to `fd`, handling short writes. IoError on failure.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. kIoError on EOF mid-frame or socket error,
/// kInvalidArgument on an over-long length prefix; clean EOF before any
/// byte yields kNotFound (the peer simply closed).
Result<std::string> ReadFrame(int fd);

/// A parsed request line.
struct WireRequest {
  enum class Verb {
    kMatch,
    kTopK,
    kStats,
    kHealth,
    kShutdown,
    kSwap,
    kHello,
    kShards,
  };
  Verb verb = Verb::kMatch;
  AlgorithmPreset algorithm = AlgorithmPreset::kDInf;  // match/topk
  size_t k = 0;                                        // topk
  uint64_t timeout_micros = 0;                         // 0 = no deadline
  /// The served pair a match/topk addresses (pair=NAME; empty = the default
  /// pair), or — for swap — the pair to republish, together with the
  /// server-side files to load.
  std::string pair;
  std::string source_path;
  std::string target_path;
  std::string index_path;  // empty = no index on the new snapshot
  /// swap only (version=N): floor for the published snapshot version. The
  /// router pins one target version across a fan-out so shards whose local
  /// counters skewed (after a partial swap) re-converge; 0 = local counter.
  uint64_t swap_min_version = 0;
  /// route sub-query: answer only source rows [row_begin, row_end).
  bool route = false;
  size_t row_begin = 0;
  size_t row_end = 0;
};

std::string EncodeRequest(const WireRequest& request);
Result<WireRequest> ParseRequest(std::string_view payload);

/// A parsed response: `status` mirrors the server-side Status; on success
/// exactly one of `values` (match/topk) or `text` (stats) is meaningful.
struct WireResponse {
  Status status;
  std::vector<int32_t> values;
  std::string text;
  /// Server backoff hint on shed (kUnavailable) errors; 0 = none.
  uint64_t retry_after_micros = 0;
  /// Snapshot version of the pair that answered (version=; 0 = untagged).
  uint64_t version = 0;
  /// Echo of a routed sub-query's row range (range=LO:HI).
  bool has_range = false;
  size_t row_begin = 0;
  size_t row_end = 0;
  /// Bit-exact scores parallel to `values` on routed topk responses.
  std::vector<float> scores;
  /// Degraded-answer marker (coverage=LO:HI,...): the sorted disjoint
  /// source-row ranges that live shards actually answered. Empty = full
  /// coverage (the normal case). Rows outside the listed ranges hold -1
  /// placeholders. Only routers emit this, and only under the degrade
  /// partial-coverage policy.
  std::vector<std::pair<size_t, size_t>> coverage;
};

/// Encodes a values response. `version` tags the answering snapshot (0 =
/// omit), the range fields echo a routed sub-query (has_range = false =
/// omit), `scores` rides along for routed topk (empty = omit), and
/// `coverage` marks a degraded partial answer (empty = full coverage, omit)
/// — the v1 one-argument form stays valid for un-routed responses.
std::string EncodeValuesResponse(
    const std::vector<int32_t>& values, uint64_t version = 0,
    bool has_range = false, size_t row_begin = 0, size_t row_end = 0,
    const std::vector<float>& scores = {},
    const std::vector<std::pair<size_t, size_t>>& coverage = {});
std::string EncodeTextResponse(std::string_view text);
std::string EncodeErrorResponse(const Status& status,
                                uint64_t retry_after_micros = 0);
Result<WireResponse> ParseResponse(std::string_view payload);

/// Maps a paper preset name ("CSLS", "Hun.", ...) to its preset;
/// kInvalidArgument for unknown names. RL is rejected here: the serving
/// layer has no KG context to run it.
Result<AlgorithmPreset> ParseServableAlgorithm(std::string_view name);

/// The `hello` handshake payload for a peer serving in `role` ("shard" or
/// "router"): {"protocol":3,"build":"...","role":"..."}.
std::string HelloJson(std::string_view role);

/// Parses a `hello` payload and checks the peer speaks kProtocolVersion.
/// kFailedPrecondition (not retryable) on a mismatch or unparseable payload
/// — the caller must refuse the peer, not retry it.
Status CheckHello(std::string_view hello_json, std::string_view peer_name);

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_PROTOCOL_H_
