#ifndef ENTMATCHER_SERVE_PROTOCOL_H_
#define ENTMATCHER_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "matching/types.h"

namespace entmatcher {

// Wire format of the serve front-end. -----------------------------------------
//
// Every message is one frame: a 4-byte little-endian unsigned payload length
// followed by that many payload bytes. Requests are a single text line;
// responses are a text header line optionally followed by a binary int32
// array. Deliberately dependency-free and greppable — `xxd` on a capture
// shows the whole conversation.
//
// Requests:
//   "match <ALGO> [timeout_us=N]"      full pipeline -> assignment
//   "topk <ALGO> <k> [timeout_us=N]"   transformed scores -> top-k indices
//   "stats"                            serving counters as JSON
//   "health"                           liveness JSON (queue depth, shed
//                                      rate, fault-plan fingerprint)
//   "shutdown"                         stop the server after responding
//   "swap <PAIR> <SRC> <TGT> [index=PATH]"
//                                      admin: hot-swap pair PAIR to the
//                                      embeddings at server-side paths
//                                      SRC/TGT (WriteMatrixBinary format),
//                                      optionally attaching the candidate
//                                      index saved at PATH; responds
//                                      "swapped <PAIR> v<N>". Names and
//                                      paths cannot contain spaces (the
//                                      request line is space-tokenized).
// <ALGO> is a paper preset name (DInf, CSLS, RInf, RInf-wr, RInf-pb, Sink.,
// Hun., SMat). timeout_us carries the client's end-to-end deadline onto the
// wire; the scheduler drops expired work before scoring and the engine
// checks the deadline between stages.
//
// Responses:
//   "ok values <n>\n" + n little-endian int32s   (match / topk payload)
//   "ok text\n" + UTF-8 text                     (stats / health payload)
//   "error <CODE> [retry_after_us=N] <message>"  (any failure)
// retry_after_us is the server's backoff hint on kUnavailable shed
// responses; well-behaved clients (ServeClient's RetryPolicy) wait at least
// that long before retrying.

/// Hard cap on accepted frame payloads (1 GiB would be a corrupt length
/// prefix long before it is a real workload).
inline constexpr size_t kMaxFrameBytes = 64ull << 20;

/// Writes one frame to `fd`, handling short writes. IoError on failure.
Status WriteFrame(int fd, std::string_view payload);

/// Reads one frame from `fd`. kIoError on EOF mid-frame or socket error,
/// kInvalidArgument on an over-long length prefix; clean EOF before any
/// byte yields kNotFound (the peer simply closed).
Result<std::string> ReadFrame(int fd);

/// A parsed request line.
struct WireRequest {
  enum class Verb { kMatch, kTopK, kStats, kHealth, kShutdown, kSwap };
  Verb verb = Verb::kMatch;
  AlgorithmPreset algorithm = AlgorithmPreset::kDInf;  // match/topk
  size_t k = 0;                                        // topk
  uint64_t timeout_micros = 0;                         // 0 = no deadline
  /// swap only: the pair to republish and the server-side files to load.
  std::string pair;
  std::string source_path;
  std::string target_path;
  std::string index_path;  // empty = no index on the new snapshot
};

std::string EncodeRequest(const WireRequest& request);
Result<WireRequest> ParseRequest(std::string_view payload);

/// A parsed response: `status` mirrors the server-side Status; on success
/// exactly one of `values` (match/topk) or `text` (stats) is meaningful.
struct WireResponse {
  Status status;
  std::vector<int32_t> values;
  std::string text;
  /// Server backoff hint on shed (kUnavailable) errors; 0 = none.
  uint64_t retry_after_micros = 0;
};

std::string EncodeValuesResponse(const std::vector<int32_t>& values);
std::string EncodeTextResponse(std::string_view text);
std::string EncodeErrorResponse(const Status& status,
                                uint64_t retry_after_micros = 0);
Result<WireResponse> ParseResponse(std::string_view payload);

/// Maps a paper preset name ("CSLS", "Hun.", ...) to its preset;
/// kInvalidArgument for unknown names. RL is rejected here: the serving
/// layer has no KG context to run it.
Result<AlgorithmPreset> ParseServableAlgorithm(std::string_view name);

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_PROTOCOL_H_
