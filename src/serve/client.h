#ifndef ENTMATCHER_SERVE_CLIENT_H_
#define ENTMATCHER_SERVE_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace entmatcher {

/// Retry discipline for CallWithRetry: capped exponential backoff with
/// deterministic jitter, a hard attempt cap, and a wall-clock budget. Only
/// idempotent reads retry (match/topk/stats/health — every verb except
/// shutdown) and only on outcomes that can heal: a transport failure
/// (IoError/NotFound from the frame layer, followed by a reconnect), a
/// server kUnavailable (shed; honors the server's retry-after hint when it
/// exceeds the local backoff — the hint is sticky, so it still floors the
/// sleep when a later attempt dies at the transport level and reconnects),
/// or kDeadlineExceeded. Anything else —
/// kInvalidArgument, kNotFound from the server, kInternal — is definitive
/// and returns immediately.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  uint32_t max_attempts = 4;
  uint64_t initial_backoff_micros = 1000;
  uint64_t max_backoff_micros = 250000;
  /// Backoff growth per attempt.
  double multiplier = 2.0;
  /// Wall-clock cap across all attempts and backoffs; once spent, the last
  /// failure is returned even if attempts remain. 0 = no budget.
  uint64_t budget_micros = 2000000;
  /// Seed of the jitter stream (full jitter over [backoff/2, backoff]);
  /// fixed seed => reproducible retry schedules in tests.
  uint64_t jitter_seed = 17;
};

/// Minimal blocking client for the serve socket protocol: one unix-domain
/// connection, one frame out / one frame in per Call. Used by
/// `entmatcher_cli query`, the serve tests, and anything else that wants to
/// talk to a running `entmatcher_cli serve` without linking the server.
class ServeClient {
 public:
  /// Connects to the socket created by SocketServer / `entmatcher_cli
  /// serve`.
  static Result<ServeClient> Connect(const std::string& socket_path);

  ServeClient(ServeClient&& other) noexcept
      : fd_(other.fd_), socket_path_(std::move(other.socket_path_)) {
    other.fd_ = -1;
  }
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  ~ServeClient();

  /// Sends one request and waits for its response frame. IoError if the
  /// connection drops; a server-side failure comes back in
  /// WireResponse::status.
  Result<WireResponse> Call(const WireRequest& request);

  /// Call with the RetryPolicy applied. A transport failure closes and
  /// reopens the connection before the next attempt (the request frame may
  /// have died mid-write; only idempotent verbs get here, so replaying is
  /// safe). Returns the last failure when retries are exhausted.
  Result<WireResponse> CallWithRetry(const WireRequest& request,
                                     const RetryPolicy& policy);

  /// Drops the current connection (if any) and dials the socket again.
  Status Reconnect();

 private:
  ServeClient(int fd, std::string socket_path)
      : fd_(fd), socket_path_(std::move(socket_path)) {}

  int fd_;
  std::string socket_path_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_CLIENT_H_
