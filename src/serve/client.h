#ifndef ENTMATCHER_SERVE_CLIENT_H_
#define ENTMATCHER_SERVE_CLIENT_H_

#include <string>

#include "common/status.h"
#include "serve/protocol.h"

namespace entmatcher {

/// Minimal blocking client for the serve socket protocol: one unix-domain
/// connection, one frame out / one frame in per Call. Used by
/// `entmatcher_cli query`, the serve tests, and anything else that wants to
/// talk to a running `entmatcher_cli serve` without linking the server.
class ServeClient {
 public:
  /// Connects to the socket created by SocketServer / `entmatcher_cli
  /// serve`.
  static Result<ServeClient> Connect(const std::string& socket_path);

  ServeClient(ServeClient&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  ServeClient& operator=(ServeClient&& other) noexcept;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  ~ServeClient();

  /// Sends one request and waits for its response frame. IoError if the
  /// connection drops; a server-side failure comes back in
  /// WireResponse::status.
  Result<WireResponse> Call(const WireRequest& request);

 private:
  explicit ServeClient(int fd) : fd_(fd) {}

  int fd_;
};

}  // namespace entmatcher

#endif  // ENTMATCHER_SERVE_CLIENT_H_
