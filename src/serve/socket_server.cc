#include "serve/socket_server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "index/candidate_index.h"
#include "la/matrix_io.h"
#include "serve/protocol.h"

namespace entmatcher {

namespace {

// "swap" admin verb: load the new embeddings (and optional index) from
// server-side files and republish the pair. Returns the confirmation text.
Result<std::string> HandleSwap(MatchServer* server,
                               const WireRequest& request) {
  EM_ASSIGN_OR_RETURN(Matrix source, ReadMatrixBinary(request.source_path));
  EM_ASSIGN_OR_RETURN(Matrix target, ReadMatrixBinary(request.target_path));
  std::unique_ptr<CandidateIndex> index;
  if (!request.index_path.empty()) {
    EM_ASSIGN_OR_RETURN(CandidateIndex loaded,
                        CandidateIndex::Load(request.index_path));
    index = std::make_unique<CandidateIndex>(std::move(loaded));
  }
  EM_ASSIGN_OR_RETURN(
      const uint64_t version,
      server->SwapPair(request.pair, std::move(source), std::move(target),
                       std::move(index), request.swap_min_version));
  return "swapped " + request.pair + " v" + std::to_string(version);
}

}  // namespace

std::string MatchServerHandler::Handle(const std::string& payload,
                                       bool* shutdown) {
  Result<WireRequest> parsed = ParseRequest(payload);
  if (!parsed.ok()) return EncodeErrorResponse(parsed.status());
  switch (parsed->verb) {
    case WireRequest::Verb::kHello:
      return EncodeTextResponse(HelloJson("shard"));
    case WireRequest::Verb::kStats:
      return EncodeTextResponse(server_->Stats().ToJson());
    case WireRequest::Verb::kHealth:
      return EncodeTextResponse(server_->HealthJson());
    case WireRequest::Verb::kShards:
      return EncodeErrorResponse(Status::Unimplemented(
          "shards is a router verb; this peer is a shard"));
    case WireRequest::Verb::kShutdown:
      *shutdown = true;
      return EncodeTextResponse("shutting down");
    case WireRequest::Verb::kSwap: {
      Result<std::string> swapped = HandleSwap(server_, *parsed);
      if (!swapped.ok()) return EncodeErrorResponse(swapped.status());
      return EncodeTextResponse(*swapped);
    }
    case WireRequest::Verb::kMatch:
    case WireRequest::Verb::kTopK:
      break;
  }

  ServeRequest request;
  if (!parsed->pair.empty()) request.pair = parsed->pair;
  request.options = MakePreset(parsed->algorithm);
  request.timeout_micros = parsed->timeout_micros;
  if (parsed->verb == WireRequest::Verb::kTopK) {
    request.kind = ServeQueryKind::kTopK;
    request.topk = parsed->k;
  }
  if (parsed->route) {
    request.row_begin = parsed->row_begin;
    request.row_end = parsed->row_end;
    // Routed topk always carries scores: the router merges partial lists by
    // (score desc, id asc) and needs the exact floats to do it.
    request.want_scores = parsed->verb == WireRequest::Verb::kTopK;
  }
  ServeResponse response = server_->Query(std::move(request));
  if (!response.status.ok()) {
    return EncodeErrorResponse(response.status, response.retry_after_micros);
  }
  std::vector<int32_t> values;
  if (parsed->verb == WireRequest::Verb::kMatch) {
    values = response.assignment.target_of_source;
  } else {
    values.reserve(response.topk.size());
    for (uint32_t index : response.topk) {
      values.push_back(static_cast<int32_t>(index));
    }
  }
  return EncodeValuesResponse(values, response.snapshot_version,
                              parsed->route, parsed->row_begin,
                              parsed->row_end, response.topk_scores);
}

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    WireHandler* handler, const std::string& socket_path) {
  if (handler == nullptr) {
    return Status::InvalidArgument("SocketServer: null handler");
  }
  sockaddr_un addr{};
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("SocketServer: bad socket path: " +
                                   socket_path);
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(socket_path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status status = Status::IoError("bind " + socket_path + ": " +
                                          std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) < 0) {
    const Status status =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    ::close(fd);
    return status;
  }
  std::unique_ptr<SocketServer> out(
      new SocketServer(handler, socket_path, fd));
  out->accept_thread_ = std::thread(&SocketServer::AcceptLoop, out.get());
  return out;
}

Result<std::unique_ptr<SocketServer>> SocketServer::Start(
    MatchServer* server, const std::string& socket_path) {
  if (server == nullptr) {
    return Status::InvalidArgument("SocketServer: null MatchServer");
  }
  auto handler = std::make_unique<MatchServerHandler>(server);
  EM_ASSIGN_OR_RETURN(std::unique_ptr<SocketServer> out,
                      Start(handler.get(), socket_path));
  out->owned_handler_ = std::move(handler);
  return out;
}

SocketServer::SocketServer(WireHandler* handler, std::string socket_path,
                           int listen_fd)
    : handler_(handler), socket_path_(std::move(socket_path)),
      listen_fd_(listen_fd) {}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::WaitForShutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
  // shutdown() (not close) reliably wakes a blocked accept()/read().
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& thread : connection_threads_) {
    if (thread.joinable()) thread.join();
  }
  connection_threads_.clear();
  ::close(listen_fd_);
  ::unlink(socket_path_.c_str());
}

void SocketServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) {
      ::close(fd);
      return;
    }
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back(&SocketServer::ServeConnection, this, fd);
  }
}

void SocketServer::ServeConnection(int fd) {
  for (;;) {
    Result<std::string> payload = ReadFrame(fd);
    if (!payload.ok()) break;  // peer closed or unreadable frame
    if (!HandleFrame(fd, *payload)) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  connection_fds_.erase(
      std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
      connection_fds_.end());
  ::close(fd);
}

bool SocketServer::HandleFrame(int fd, const std::string& payload) {
  bool shutdown = false;
  const std::string response = handler_->Handle(payload, &shutdown);
  const bool wrote = WriteFrame(fd, response).ok();
  if (shutdown) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    return false;
  }
  return wrote;
}

}  // namespace entmatcher
