// Tests for the extension modules: streaming (blocked) matching and the
// probabilistic matcher with abstention.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "matching/pipeline.h"
#include "matching/probabilistic.h"
#include "matching/streaming.h"
#include "matching/transforms.h"

namespace entmatcher {
namespace {

Matrix RandomEmbeddings(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : m.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

// ---- Streaming -----------------------------------------------------------------

class StreamingEqualityTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(StreamingEqualityTest, MatchesDensePipelineExactly) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t block = std::get<1>(GetParam());
  const Matrix src = RandomEmbeddings(157, 24, seed);
  const Matrix tgt = RandomEmbeddings(203, 24, seed + 1);

  for (bool csls : {false, true}) {
    MatchOptions dense_options;
    dense_options.transform =
        csls ? ScoreTransformKind::kCsls : ScoreTransformKind::kNone;
    dense_options.csls_k = 3;
    auto dense = MatchEmbeddings(src, tgt, dense_options);

    StreamingOptions streaming_options;
    streaming_options.use_csls = csls;
    streaming_options.csls_k = 3;
    streaming_options.block_rows = block;
    auto streamed = StreamingMatch(src, tgt, streaming_options);

    ASSERT_TRUE(dense.ok() && streamed.ok());
    EXPECT_EQ(dense->target_of_source, streamed->target_of_source)
        << "csls=" << csls << " block=" << block;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, StreamingEqualityTest,
    ::testing::Combine(::testing::Values(1, 7, 42),
                       ::testing::Values(1, 17, 64, 1000)));

TEST(StreamingTest, Validation) {
  Matrix src = RandomEmbeddings(4, 8, 1);
  Matrix tgt = RandomEmbeddings(4, 8, 2);
  StreamingOptions options;
  options.block_rows = 0;
  EXPECT_FALSE(StreamingMatch(src, tgt, options).ok());
  options.block_rows = 16;
  options.use_csls = true;
  options.csls_k = 0;
  EXPECT_FALSE(StreamingMatch(src, tgt, options).ok());
  Matrix wrong = RandomEmbeddings(4, 9, 3);
  EXPECT_FALSE(StreamingMatch(src, wrong, StreamingOptions()).ok());
  EXPECT_FALSE(StreamingMatch(Matrix(), tgt, StreamingOptions()).ok());
}

TEST(StreamingTest, UsesBoundedWorkspace) {
  const Matrix src = RandomEmbeddings(512, 16, 5);
  const Matrix tgt = RandomEmbeddings(512, 16, 6);
  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t base = tracker.current_bytes();
  tracker.ResetPeak();
  StreamingOptions options;
  options.block_rows = 16;
  auto a = StreamingMatch(src, tgt, options);
  ASSERT_TRUE(a.ok());
  const size_t peak = tracker.peak_bytes() - base;
  // Dense would need 512*512*4 = 1 MB for the score matrix alone; the
  // streamed peak must stay well below (blocks of 16 x 512 plus copies).
  EXPECT_LT(peak, 400u * 1024);
}

// ---- Probabilistic ---------------------------------------------------------------

TEST(ProbabilisticTest, AbstainsOnUniformlyWeakRows) {
  // Row 0 has one strong candidate; row 1 only weak ones below the no-match
  // pseudo-score.
  Matrix scores = Matrix::FromRows({{0.9f, 0.1f}, {0.2f, 0.25f}});
  ProbabilisticOptions options;
  options.no_match_score = 0.5;
  options.temperature = 0.05;
  options.accept_threshold = 0.3;
  auto a = ProbabilisticMatch(scores, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->targets_of_source[0], (std::vector<uint32_t>{0}));
  EXPECT_TRUE(a->targets_of_source[1].empty());
  EXPECT_EQ(a->NumLinks(), 1u);
}

TEST(ProbabilisticTest, EmitsMultipleLinksForTiedCandidates) {
  // Two equally strong candidates share the posterior; with a threshold
  // below 0.5 both are emitted — the non-1-to-1 capability.
  Matrix scores = Matrix::FromRows({{0.9f, 0.9f, 0.1f}});
  ProbabilisticOptions options;
  options.no_match_score = 0.3;
  options.temperature = 0.05;
  options.accept_threshold = 0.3;
  auto a = ProbabilisticMatch(scores, options);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->targets_of_source[0].size(), 2u);
}

TEST(ProbabilisticTest, Validation) {
  Matrix scores(2, 2);
  ProbabilisticOptions options;
  options.temperature = 0.0;
  EXPECT_FALSE(ProbabilisticMatch(scores, options).ok());
  options = ProbabilisticOptions();
  options.accept_threshold = 0.0;
  EXPECT_FALSE(ProbabilisticMatch(scores, options).ok());
  options.accept_threshold = 1.5;
  EXPECT_FALSE(ProbabilisticMatch(scores, options).ok());
  EXPECT_FALSE(ProbabilisticMatch(Matrix(), ProbabilisticOptions()).ok());
}

TEST(ProbabilisticTest, HigherNoMatchScoreNeverIncreasesLinks) {
  Rng rng(9);
  Matrix scores(20, 20);
  for (size_t i = 0; i < 20; ++i) {
    for (float& v : scores.Row(i)) {
      v = static_cast<float>(rng.NextUniform(0, 1));
    }
  }
  ProbabilisticOptions options;
  size_t previous = SIZE_MAX;
  for (double theta : {0.0, 0.3, 0.6, 0.9, 1.2}) {
    options.no_match_score = theta;
    auto a = ProbabilisticMatch(scores, options);
    ASSERT_TRUE(a.ok());
    EXPECT_LE(a->NumLinks(), previous);
    previous = a->NumLinks();
  }
}

TEST(ProbabilisticTest, DatasetLevelRunWithCalibration) {
  KgPairGeneratorConfig c;
  c.name = "prob-test";
  c.seed = 21;
  c.num_core_concepts = 300;
  c.exclusive_fraction = 0.3;
  c.unmatchable_source_fraction = 0.3;
  c.avg_degree = 4.0;
  c.num_world_relations = 40;
  c.num_relations_source = 30;
  c.num_relations_target = 30;
  auto d = GenerateKgPair(c);
  ASSERT_TRUE(d.ok());
  auto emb = ComputeStructuralEmbeddings(*d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());

  auto theta = CalibrateNoMatchScore(*d, *emb, ProbabilisticOptions());
  ASSERT_TRUE(theta.ok());

  auto predicted = RunProbabilisticMatching(*d, *emb, ProbabilisticOptions());
  ASSERT_TRUE(predicted.ok());
  // The probabilistic matcher must actually abstain on some of the
  // unmatchable sources: fewer links than test source candidates.
  EXPECT_LT(predicted->size(), d->test_source_entities.size());
  EXPECT_GT(predicted->size(), 0u);
}

TEST(ProbabilisticTest, CalibrationNeedsValidationLinks) {
  KgPairDataset d;
  EmbeddingPair emb;
  EXPECT_FALSE(CalibrateNoMatchScore(d, emb, ProbabilisticOptions()).ok());
}

// ---- RInf-k ------------------------------------------------------------------------

TEST(RinfKTest, KOneMatchesDefault) {
  Matrix s = RandomEmbeddings(10, 10, 3);
  auto a = RinfTransform(s, 1);
  auto b = RinfTransform(s);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->ApproxEquals(*b, 0.0f));
}

TEST(RinfKTest, LargerKChangesPreferences) {
  Matrix s = RandomEmbeddings(12, 12, 4);
  auto k1 = RinfTransform(s, 1);
  auto k5 = RinfTransform(s, 5);
  ASSERT_TRUE(k1.ok() && k5.ok());
  EXPECT_FALSE(k1->ApproxEquals(*k5, 1e-6f));
}

TEST(RinfKTest, RejectsZeroK) {
  EXPECT_FALSE(RinfTransform(Matrix(2, 2), 0).ok());
}

}  // namespace
}  // namespace entmatcher
