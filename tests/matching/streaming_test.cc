// StreamingMatch workspace-budget behavior: a budget below what one block
// tile needs fails the whole sweep with kResourceExhausted and no partial
// assignment; a sufficient budget leaves the decisions bit-identical to the
// unbudgeted run.

#include "matching/streaming.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/matrix.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

class StreamingBudgetTest : public ::testing::Test {
 protected:
  StreamingBudgetTest()
      : source_(RandomEmbeddings(40, /*seed=*/3)),
        target_(RandomEmbeddings(48, /*seed=*/9)) {}

  Matrix source_;
  Matrix target_;
};

TEST_F(StreamingBudgetTest, TinyBudgetRejectedCleanly) {
  StreamingOptions options;
  options.block_rows = 8;
  options.workspace_budget_bytes = 64;  // far below one 8 x 48 float tile
  Result<Assignment> result = StreamingMatch(source_, target_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(StreamingBudgetTest, TinyBudgetRejectedCleanlyWithCsls) {
  StreamingOptions options;
  options.use_csls = true;
  options.csls_k = 2;
  options.block_rows = 8;
  options.workspace_budget_bytes = 64;
  Result<Assignment> result = StreamingMatch(source_, target_, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(StreamingBudgetTest, GenerousBudgetMatchesUnbudgetedRun) {
  for (const bool use_csls : {false, true}) {
    SCOPED_TRACE(use_csls ? "csls" : "dinf");
    StreamingOptions options;
    options.use_csls = use_csls;
    options.csls_k = 2;
    options.block_rows = 8;

    Result<Assignment> unbudgeted = StreamingMatch(source_, target_, options);
    ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status().ToString();

    options.workspace_budget_bytes = 64ull << 20;
    Result<Assignment> budgeted = StreamingMatch(source_, target_, options);
    ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
    EXPECT_EQ(budgeted->target_of_source, unbudgeted->target_of_source);
  }
}

}  // namespace
}  // namespace entmatcher
