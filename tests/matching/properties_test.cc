// Cross-cutting property tests over the matching stack: invariances of the
// score transforms, dominance relations between the decision algorithms,
// and rectangular/degenerate edge cases.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/topk.h"
#include "matching/gale_shapley.h"
#include "matching/greedy.h"
#include "matching/hungarian_matcher.h"
#include "matching/transforms.h"

namespace entmatcher {
namespace {

Matrix RandomScores(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : s.Row(i)) v = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return s;
}

Matrix Shifted(const Matrix& s, float delta) {
  Matrix out = s;
  for (size_t i = 0; i < out.rows(); ++i) {
    for (float& v : out.Row(i)) v += delta;
  }
  return out;
}

class TransformInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

// CSLS(S + c) == CSLS(S) + 0: constant shifts cancel exactly in Eq. (1).
TEST_P(TransformInvarianceTest, CslsIsShiftInvariant) {
  Matrix s = RandomScores(9, 11, GetParam());
  auto base = CslsTransform(s, 3);
  auto shifted = CslsTransform(Shifted(s, 0.37f), 3);
  ASSERT_TRUE(base.ok() && shifted.ok());
  EXPECT_TRUE(base->ApproxEquals(*shifted, 1e-4f));
}

// RInf operates on ranks, so any strictly monotone per-matrix transform of
// the scores (here: a shift) leaves the output unchanged.
TEST_P(TransformInvarianceTest, RinfIsShiftInvariant) {
  Matrix s = RandomScores(9, 11, GetParam() + 100);
  auto base = RinfTransform(s);
  auto shifted = RinfTransform(Shifted(s, -0.21f));
  ASSERT_TRUE(base.ok() && shifted.ok());
  EXPECT_TRUE(base->ApproxEquals(*shifted, 0.0f));
}

// Sinkhorn subtracts the global max before exponentiation, so shifts cancel.
TEST_P(TransformInvarianceTest, SinkhornIsShiftInvariant) {
  Matrix s = RandomScores(8, 8, GetParam() + 200);
  auto base = SinkhornTransform(s, 30, 0.1);
  auto shifted = SinkhornTransform(Shifted(s, 5.0f), 30, 0.1);
  ASSERT_TRUE(base.ok() && shifted.ok());
  EXPECT_TRUE(base->ApproxEquals(*shifted, 1e-4f));
}

// Positive scaling preserves every transform's row-argmax decisions.
TEST_P(TransformInvarianceTest, PositiveScalingPreservesDecisions) {
  Matrix s = RandomScores(10, 10, GetParam() + 300);
  Matrix scaled = s;
  scaled.Scale(3.5f);
  for (ScoreTransformKind kind :
       {ScoreTransformKind::kCsls, ScoreTransformKind::kRinf,
        ScoreTransformKind::kRinfWr}) {
    MatchOptions options;
    options.transform = kind;
    auto a = ApplyScoreTransform(s, options);
    auto b = ApplyScoreTransform(scaled, options);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(RowArgmax(*a), RowArgmax(*b)) << static_cast<int>(kind);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformInvarianceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

// ---- Decision-stage dominance ---------------------------------------------------

class DominanceTest : public ::testing::TestWithParam<uint64_t> {};

// Hungarian maximizes total similarity over 1-to-1 assignments, so its total
// must dominate the (also 1-to-1) Gale–Shapley matching.
TEST_P(DominanceTest, HungarianTotalDominatesGaleShapley) {
  const size_t n = 6 + GetParam() % 15;
  Matrix s = RandomScores(n, n, GetParam() * 13 + 7);
  auto hun = HungarianMatch(s);
  auto gs = GaleShapleyMatch(s);
  ASSERT_TRUE(hun.ok() && gs.ok());
  auto total = [&s](const Assignment& a) {
    double t = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a.target_of_source[i] != Assignment::kUnmatched) {
        t += s.At(i, static_cast<size_t>(a.target_of_source[i]));
      }
    }
    return t;
  };
  EXPECT_GE(total(*hun), total(*gs) - 1e-4);
}

// Greedy's per-row score dominates every feasible assignment row-wise.
TEST_P(DominanceTest, GreedyRowScoreDominatesHungarianRowScore) {
  const size_t n = 5 + GetParam() % 10;
  Matrix s = RandomScores(n, n, GetParam() * 17 + 3);
  auto hun = HungarianMatch(s);
  auto greedy = GreedyMatch(s);
  ASSERT_TRUE(hun.ok() && greedy.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_GE(s.At(i, greedy->target_of_source[i]),
              s.At(i, static_cast<size_t>(hun->target_of_source[i])) - 1e-6);
  }
}

// With a strongly diagonal score matrix, all 1-to-1-aware procedures agree:
// Sinkhorn+greedy, Hungarian, and Gale–Shapley all recover the planted
// permutation.
TEST_P(DominanceTest, AllOneToOneMethodsRecoverPlantedPermutation) {
  const size_t n = 8;
  Rng rng(GetParam() + 50);
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  rng.Shuffle(&perm);
  Matrix s(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      s.At(i, j) = static_cast<float>(rng.NextUniform(0.0, 0.3));
    }
    s.At(i, perm[i]) = static_cast<float>(rng.NextUniform(0.8, 1.0));
  }
  auto hun = HungarianMatch(s);
  auto gs = GaleShapleyMatch(s);
  auto sink = SinkhornTransform(s, 50, 0.05);
  ASSERT_TRUE(hun.ok() && gs.ok() && sink.ok());
  auto sink_greedy = GreedyMatch(*sink);
  ASSERT_TRUE(sink_greedy.ok());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hun->target_of_source[i], static_cast<int32_t>(perm[i]));
    EXPECT_EQ(gs->target_of_source[i], static_cast<int32_t>(perm[i]));
    EXPECT_EQ(sink_greedy->target_of_source[i], static_cast<int32_t>(perm[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominanceTest, ::testing::Range<uint64_t>(0, 12));

// ---- Rectangular and degenerate inputs -----------------------------------------

TEST(RectangularTest, TransformsHandleNonSquare) {
  for (auto [n, m] : std::vector<std::pair<size_t, size_t>>{
           {3, 9}, {9, 3}, {1, 5}, {5, 1}}) {
    Matrix s = RandomScores(n, m, n * 31 + m);
    EXPECT_TRUE(CslsTransform(s, 2).ok()) << n << "x" << m;
    EXPECT_TRUE(RinfTransform(s).ok()) << n << "x" << m;
    EXPECT_TRUE(RinfWrTransform(s).ok()) << n << "x" << m;
    EXPECT_TRUE(RinfPbTransform(s, 2).ok()) << n << "x" << m;
    auto sink = SinkhornTransform(s, 10, 0.1);
    ASSERT_TRUE(sink.ok()) << n << "x" << m;
    for (size_t i = 0; i < sink->rows(); ++i) {
      for (float v : sink->Row(i)) {
        ASSERT_FALSE(std::isnan(v));
      }
    }
  }
}

TEST(RectangularTest, OneByOneMatchers) {
  Matrix s = Matrix::FromRows({{0.5f}});
  auto greedy = GreedyMatch(s);
  auto hun = HungarianMatch(s);
  auto gs = GaleShapleyMatch(s);
  ASSERT_TRUE(greedy.ok() && hun.ok() && gs.ok());
  EXPECT_EQ(greedy->target_of_source[0], 0);
  EXPECT_EQ(hun->target_of_source[0], 0);
  EXPECT_EQ(gs->target_of_source[0], 0);
}

TEST(RectangularTest, SingleRowManyColumns) {
  Matrix s = Matrix::FromRows({{0.1f, 0.9f, 0.4f}});
  auto hun = HungarianMatch(s);
  auto gs = GaleShapleyMatch(s);
  ASSERT_TRUE(hun.ok() && gs.ok());
  EXPECT_EQ(hun->target_of_source[0], 1);
  EXPECT_EQ(gs->target_of_source[0], 1);
}

TEST(RectangularTest, ManyRowsSingleColumn) {
  Matrix s = Matrix::FromRows({{0.2f}, {0.8f}, {0.5f}});
  auto hun = HungarianMatch(s);
  ASSERT_TRUE(hun.ok());
  // Only the best row keeps the single target.
  EXPECT_EQ(hun->NumMatched(), 1u);
  EXPECT_EQ(hun->target_of_source[1], 0);
  EXPECT_EQ(hun->target_of_source[0], Assignment::kUnmatched);

  auto gs = GaleShapleyMatch(s);
  ASSERT_TRUE(gs.ok());
  EXPECT_EQ(gs->NumMatched(), 1u);
  EXPECT_EQ(gs->target_of_source[1], 0);
}

TEST(DegenerateTest, ConstantScoreMatrixStillProducesValidOneToOne) {
  Matrix s(5, 5);
  s.Fill(0.5f);
  auto hun = HungarianMatch(s);
  auto gs = GaleShapleyMatch(s);
  ASSERT_TRUE(hun.ok() && gs.ok());
  std::set<int32_t> hun_used(hun->target_of_source.begin(),
                             hun->target_of_source.end());
  std::set<int32_t> gs_used(gs->target_of_source.begin(),
                            gs->target_of_source.end());
  EXPECT_EQ(hun_used.size(), 5u);
  EXPECT_EQ(gs_used.size(), 5u);
}

TEST(DegenerateTest, CslsWithKLargerThanColumnsClamps) {
  Matrix s = RandomScores(4, 3, 9);
  auto out = CslsTransform(s, 10);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->cols(), 3u);
}

}  // namespace
}  // namespace entmatcher
