#include "matching/greedy_one_to_one.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/greedy.h"
#include "matching/hungarian_matcher.h"

namespace entmatcher {
namespace {

Matrix RandomScores(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : s.Row(i)) v = static_cast<float>(rng.NextUniform(0, 1));
  }
  return s;
}

TEST(GreedyOneToOneTest, ResolvesCollisions) {
  // Both rows prefer column 0; row 0 wins (higher score), row 1 settles.
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.7f}});
  auto a = GreedyOneToOneMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source, (std::vector<int32_t>{0, 1}));
}

TEST(GreedyOneToOneTest, OneToOneProperty) {
  Matrix s = RandomScores(20, 20, 5);
  auto a = GreedyOneToOneMatch(s);
  ASSERT_TRUE(a.ok());
  std::set<int32_t> used;
  for (int32_t j : a->target_of_source) {
    ASSERT_NE(j, Assignment::kUnmatched);
    EXPECT_TRUE(used.insert(j).second);
  }
}

TEST(GreedyOneToOneTest, RectangularLeavesOverflowUnmatched) {
  Matrix s = RandomScores(6, 4, 7);
  auto a = GreedyOneToOneMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 4u);
}

TEST(GreedyOneToOneTest, TwoApproximationOfHungarian) {
  // Greedy global matching is a 1/2-approximation of the optimal assignment.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Matrix s = RandomScores(15, 15, seed + 30);
    auto greedy = GreedyOneToOneMatch(s);
    auto hun = HungarianMatch(s);
    ASSERT_TRUE(greedy.ok() && hun.ok());
    auto total = [&s](const Assignment& a) {
      double t = 0.0;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a.target_of_source[i] != Assignment::kUnmatched) {
          t += s.At(i, static_cast<size_t>(a.target_of_source[i]));
        }
      }
      return t;
    };
    EXPECT_GE(total(*greedy), 0.5 * total(*hun) - 1e-6);
    EXPECT_LE(total(*greedy), total(*hun) + 1e-6);
  }
}

TEST(GreedyOneToOneTest, RejectsEmpty) {
  EXPECT_FALSE(GreedyOneToOneMatch(Matrix()).ok());
}

TEST(MutualBestTest, KeepsOnlyReciprocalPairs) {
  // Row 0 <-> col 0 mutual; row 1's best is col 0 but col 0 prefers row 0.
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.2f}});
  auto a = MutualBestMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source[0], 0);
  EXPECT_EQ(a->target_of_source[1], Assignment::kUnmatched);
}

TEST(MutualBestTest, PerfectDiagonalAllMutual) {
  Matrix s(5, 5);
  for (size_t i = 0; i < 5; ++i) s.At(i, i) = 1.0f;
  auto a = MutualBestMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 5u);
}

TEST(MutualBestTest, SubsetOfGreedyDecisions) {
  Matrix s = RandomScores(25, 25, 9);
  auto mutual = MutualBestMatch(s);
  auto greedy = GreedyMatch(s);
  ASSERT_TRUE(mutual.ok() && greedy.ok());
  size_t matched = 0;
  for (size_t i = 0; i < 25; ++i) {
    if (mutual->target_of_source[i] == Assignment::kUnmatched) continue;
    ++matched;
    // Every mutual decision coincides with the greedy row decision.
    EXPECT_EQ(mutual->target_of_source[i], greedy->target_of_source[i]);
  }
  EXPECT_LE(matched, 25u);
  EXPECT_GT(matched, 0u);
}

TEST(MutualBestTest, RejectsEmpty) {
  EXPECT_FALSE(MutualBestMatch(Matrix()).ok());
}

}  // namespace
}  // namespace entmatcher
