#include "matching/partitioned.h"

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "matching/pipeline.h"

namespace entmatcher {
namespace {

// Matched embedding spaces: target row perm[i] is a noisy copy of source
// row i.
struct ToyPair {
  Matrix source;
  Matrix target;
  std::vector<uint32_t> gold;
};

ToyPair MakeToyPair(size_t n, size_t dim, double noise, uint64_t seed) {
  Rng rng(seed);
  ToyPair toy;
  toy.source = Matrix(n, dim);
  toy.target = Matrix(n, dim);
  toy.gold.resize(n);
  for (size_t i = 0; i < n; ++i) toy.gold[i] = static_cast<uint32_t>(i);
  rng.Shuffle(&toy.gold);
  for (size_t i = 0; i < n; ++i) {
    for (size_t d = 0; d < dim; ++d) {
      const float v = static_cast<float>(rng.NextGaussian());
      toy.source.At(i, d) = v;
      toy.target.At(toy.gold[i], d) =
          v + static_cast<float>(noise * rng.NextGaussian());
    }
  }
  return toy;
}

double Accuracy(const Assignment& a, const std::vector<uint32_t>& gold) {
  size_t correct = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a.target_of_source[i] == static_cast<int32_t>(gold[i])) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(a.size());
}

TEST(CoClusterTest, PartitionsCoverBothSides) {
  ToyPair toy = MakeToyPair(120, 16, 0.2, 3);
  PartitionedOptions options;
  options.num_partitions = 4;
  auto partitioning = CoClusterCandidates(toy.source, toy.target, options);
  ASSERT_TRUE(partitioning.ok());
  EXPECT_EQ(partitioning->partition_of_source.size(), 120u);
  EXPECT_EQ(partitioning->partition_of_target.size(), 120u);
  for (uint32_t p : partitioning->partition_of_source) {
    EXPECT_LT(p, partitioning->num_partitions);
  }
  EXPECT_GT(partitioning->MaxBlockCells(), 0u);
  EXPECT_LT(partitioning->MaxBlockCells(), 120u * 120u);
}

TEST(CoClusterTest, MatchingEntitiesCoClusterMostly) {
  ToyPair toy = MakeToyPair(200, 16, 0.1, 7);
  PartitionedOptions options;
  options.num_partitions = 4;
  auto partitioning = CoClusterCandidates(toy.source, toy.target, options);
  ASSERT_TRUE(partitioning.ok());
  size_t together = 0;
  for (size_t i = 0; i < 200; ++i) {
    if (partitioning->partition_of_source[i] ==
        partitioning->partition_of_target[toy.gold[i]]) {
      ++together;
    }
  }
  // With low noise, the vast majority of gold pairs share a partition.
  EXPECT_GT(together, 160u);
}

TEST(PartitionedMatchTest, NearDenseQualityOnEasyInstance) {
  ToyPair toy = MakeToyPair(300, 16, 0.25, 11);
  MatchOptions dense;
  auto dense_result = MatchEmbeddings(toy.source, toy.target, dense);
  ASSERT_TRUE(dense_result.ok());
  const double dense_acc = Accuracy(*dense_result, toy.gold);

  PartitionedOptions options;
  options.num_partitions = 5;
  auto partitioned = PartitionedMatch(toy.source, toy.target, options);
  ASSERT_TRUE(partitioned.ok());
  const double part_acc = Accuracy(*partitioned, toy.gold);
  EXPECT_GT(part_acc, 0.8 * dense_acc);
}

TEST(PartitionedMatchTest, WorksWithHungarianBlocks) {
  ToyPair toy = MakeToyPair(150, 16, 0.3, 13);
  PartitionedOptions options;
  options.num_partitions = 4;
  options.block_options = MakePreset(AlgorithmPreset::kHungarian);
  auto a = PartitionedMatch(toy.source, toy.target, options);
  ASSERT_TRUE(a.ok());
  EXPECT_GT(Accuracy(*a, toy.gold), 0.5);
  // 1-to-1 within blocks implies 1-to-1 globally.
  std::vector<uint8_t> used(150, 0);
  for (int32_t j : a->target_of_source) {
    if (j == Assignment::kUnmatched) continue;
    EXPECT_EQ(used[static_cast<size_t>(j)], 0);
    used[static_cast<size_t>(j)] = 1;
  }
}

TEST(PartitionedMatchTest, ReducesPeakWorkspace) {
  ToyPair toy = MakeToyPair(600, 16, 0.2, 17);
  MemoryTracker& tracker = MemoryTracker::Global();

  const size_t base = tracker.current_bytes();
  tracker.ResetPeak();
  auto dense = MatchEmbeddings(toy.source, toy.target, MatchOptions());
  ASSERT_TRUE(dense.ok());
  const size_t dense_peak = tracker.peak_bytes() - base;

  tracker.ResetPeak();
  PartitionedOptions options;
  options.num_partitions = 8;
  auto partitioned = PartitionedMatch(toy.source, toy.target, options);
  ASSERT_TRUE(partitioned.ok());
  const size_t part_peak = tracker.peak_bytes() - base;

  EXPECT_LT(part_peak, dense_peak);
}

TEST(PartitionedMatchTest, Validation) {
  ToyPair toy = MakeToyPair(20, 8, 0.2, 19);
  PartitionedOptions options;
  options.num_partitions = 0;
  EXPECT_FALSE(PartitionedMatch(toy.source, toy.target, options).ok());
  options = PartitionedOptions();
  options.block_options.matcher = MatcherKind::kRl;
  EXPECT_FALSE(PartitionedMatch(toy.source, toy.target, options).ok());
  EXPECT_FALSE(
      CoClusterCandidates(Matrix(), toy.target, PartitionedOptions()).ok());
}

TEST(PartitionedMatchTest, SinglePartitionEqualsDense) {
  ToyPair toy = MakeToyPair(80, 8, 0.3, 23);
  PartitionedOptions options;
  options.num_partitions = 1;
  auto partitioned = PartitionedMatch(toy.source, toy.target, options);
  auto dense = MatchEmbeddings(toy.source, toy.target, options.block_options);
  ASSERT_TRUE(partitioned.ok() && dense.ok());
  EXPECT_EQ(partitioned->target_of_source, dense->target_of_source);
}

}  // namespace
}  // namespace entmatcher
