#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/similarity.h"
#include "matching/transforms.h"

namespace entmatcher {
namespace {

// The threading contract (DESIGN.md "Threading model") is that every
// parallelized kernel is BIT-identical to the serial path at any thread
// count. These tests pin that guarantee for the full similarity + transform
// hot path at 1 / 2 / 7 threads.

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(), a.ByteSize()) == 0;
}

class ThreadingDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

  // Runs `compute` at 1 thread, then asserts the 2- and 7-thread results are
  // bit-identical to it.
  template <typename Fn>
  void ExpectBitIdenticalAcrossThreadCounts(const char* label, Fn compute) {
    SetNumThreads(1);
    const Matrix serial = compute();
    for (size_t threads : {2u, 7u}) {
      SetNumThreads(threads);
      const Matrix parallel = compute();
      EXPECT_TRUE(BitIdentical(serial, parallel))
          << label << ": " << threads << "-thread result differs from serial";
    }
  }

 private:
  size_t previous_threads_;
};

TEST_F(ThreadingDeterminismTest, ComputeSimilarityAllMetrics) {
  const Matrix src = RandomMatrix(83, 24, 1);
  const Matrix tgt = RandomMatrix(61, 24, 2);
  for (SimilarityMetric metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean,
        SimilarityMetric::kNegManhattan}) {
    ExpectBitIdenticalAcrossThreadCounts(
        SimilarityMetricName(metric), [&] {
          Result<Matrix> r = ComputeSimilarity(src, tgt, metric);
          EXPECT_TRUE(r.ok());
          return std::move(r).value();
        });
  }
}

TEST_F(ThreadingDeterminismTest, CslsTransform) {
  const Matrix scores = RandomMatrix(83, 61, 3);
  ExpectBitIdenticalAcrossThreadCounts("csls", [&] {
    Result<Matrix> r = CslsTransform(scores, 5);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  });
}

TEST_F(ThreadingDeterminismTest, RinfTransform) {
  const Matrix scores = RandomMatrix(83, 61, 4);
  for (size_t k : {size_t{1}, size_t{3}}) {
    ExpectBitIdenticalAcrossThreadCounts("rinf", [&] {
      Result<Matrix> r = RinfTransform(scores, k);
      EXPECT_TRUE(r.ok());
      return std::move(r).value();
    });
  }
}

TEST_F(ThreadingDeterminismTest, RinfWrAndPbAndSinkhorn) {
  const Matrix scores = RandomMatrix(53, 47, 5);
  ExpectBitIdenticalAcrossThreadCounts("rinf-wr", [&] {
    Result<Matrix> r = RinfWrTransform(scores);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  });
  ExpectBitIdenticalAcrossThreadCounts("rinf-pb", [&] {
    Result<Matrix> r = RinfPbTransform(scores, 10);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  });
  ExpectBitIdenticalAcrossThreadCounts("sinkhorn", [&] {
    Result<Matrix> r = SinkhornTransform(scores, 10, 0.05);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  });
}

}  // namespace
}  // namespace entmatcher
