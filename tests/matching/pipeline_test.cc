#include "matching/pipeline.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "matching/rl_matcher.h"

namespace entmatcher {
namespace {

KgPairDataset TinyDataset() {
  KgPairGeneratorConfig c;
  c.name = "pipe-test";
  c.seed = 31;
  c.num_core_concepts = 200;
  c.exclusive_fraction = 0.1;
  c.avg_degree = 4.0;
  c.num_world_relations = 30;
  c.num_relations_source = 25;
  c.num_relations_target = 20;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

// ---- Presets ----------------------------------------------------------------

TEST(PresetTest, NamesAndCombinations) {
  EXPECT_STREQ(PresetName(AlgorithmPreset::kDInf), "DInf");
  EXPECT_STREQ(PresetName(AlgorithmPreset::kSinkhorn), "Sink.");
  EXPECT_STREQ(PresetName(AlgorithmPreset::kHungarian), "Hun.");
  EXPECT_STREQ(PresetName(AlgorithmPreset::kStableMatch), "SMat");
  EXPECT_STREQ(PresetName(AlgorithmPreset::kRinfWr), "RInf-wr");

  MatchOptions dinf = MakePreset(AlgorithmPreset::kDInf);
  EXPECT_EQ(dinf.transform, ScoreTransformKind::kNone);
  EXPECT_EQ(dinf.matcher, MatcherKind::kGreedy);

  MatchOptions hun = MakePreset(AlgorithmPreset::kHungarian);
  EXPECT_EQ(hun.transform, ScoreTransformKind::kNone);
  EXPECT_EQ(hun.matcher, MatcherKind::kHungarian);

  MatchOptions csls = MakePreset(AlgorithmPreset::kCsls);
  EXPECT_EQ(csls.transform, ScoreTransformKind::kCsls);
  EXPECT_EQ(csls.matcher, MatcherKind::kGreedy);

  MatchOptions rl = MakePreset(AlgorithmPreset::kRl);
  EXPECT_EQ(rl.matcher, MatcherKind::kRl);
}

TEST(PresetTest, PresetLists) {
  EXPECT_EQ(MainPresets().size(), 7u);
  EXPECT_EQ(ScalabilityPresets().size(), 9u);
}

// ---- Matrix-level pipeline ------------------------------------------------------

TEST(PipelineTest, PerfectEmbeddingsGivePerfectMatching) {
  // Paper Fig. 1(a): identical KGs + ideal representation learning. Every
  // algorithm must produce the identity alignment.
  Rng rng(1);
  const size_t n = 20, d = 16;
  Matrix emb(n, d);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : emb.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kRinfWr, AlgorithmPreset::kRinfPb,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
        AlgorithmPreset::kStableMatch}) {
    auto a = MatchEmbeddings(emb, emb, MakePreset(preset));
    ASSERT_TRUE(a.ok()) << PresetName(preset);
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(a->target_of_source[i], static_cast<int32_t>(i))
          << PresetName(preset) << " row " << i;
    }
  }
}

TEST(PipelineTest, MatchScoresRejectsRl) {
  Matrix s(3, 3);
  MatchOptions options;
  options.matcher = MatcherKind::kRl;
  EXPECT_FALSE(MatchScores(s, options).ok());
  EXPECT_FALSE(MatchEmbeddings(s, s, options).ok());
}

TEST(PipelineTest, ComputeScoresAppliesTransform) {
  Matrix emb = Matrix::FromRows({{1, 0}, {0, 1}});
  MatchOptions options;
  options.transform = ScoreTransformKind::kSinkhorn;
  options.sinkhorn_iterations = 50;
  auto scores = ComputeScores(emb, emb, options);
  ASSERT_TRUE(scores.ok());
  // Doubly-stochastic-ish output.
  EXPECT_NEAR(scores->At(0, 0) + scores->At(0, 1), 1.0, 0.05);
}

// ---- Dataset-level RunMatching ------------------------------------------------------

TEST(RunMatchingTest, AllPresetsProduceValidRuns) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  for (AlgorithmPreset preset : ScalabilityPresets()) {
    MatchOptions options = MakePreset(preset);
    options.rl.epochs = 5;  // keep the test fast
    auto run = RunMatching(d, *emb, options);
    ASSERT_TRUE(run.ok()) << PresetName(preset);
    EXPECT_EQ(run->assignment.size(), d.test_source_entities.size());
    EXPECT_GT(run->predicted.size(), 0u);
    EXPECT_GE(run->seconds, 0.0);
    EXPECT_GT(run->peak_workspace_bytes, 0u);
    // Every predicted pair references test candidates.
    for (const EntityPair& p : run->predicted.pairs()) {
      EXPECT_LT(p.source, d.source.num_entities());
      EXPECT_LT(p.target, d.target.num_entities());
    }
  }
}

TEST(RunMatchingTest, FailsWithoutCandidates) {
  KgPairDataset d = TinyDataset();
  d.test_source_entities.clear();
  EmbeddingPair emb;
  emb.source = Matrix(d.source.num_entities(), 8);
  emb.target = Matrix(d.target.num_entities(), 8);
  EXPECT_FALSE(RunMatching(d, emb, MakePreset(AlgorithmPreset::kDInf)).ok());
}

TEST(RunMatchingTest, HungarianYieldsOneToOnePredictions) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto run = RunMatching(d, *emb, MakePreset(AlgorithmPreset::kHungarian));
  ASSERT_TRUE(run.ok());
  std::set<EntityId> used;
  for (const EntityPair& p : run->predicted.pairs()) {
    EXPECT_TRUE(used.insert(p.target).second);
  }
}

// ---- RL matcher ---------------------------------------------------------------------

TEST(RlMatcherTest, ProducesValidAssignment) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  MatchOptions options = MakePreset(AlgorithmPreset::kRl);
  options.rl.epochs = 10;
  auto run = RunMatching(d, *emb, options);
  ASSERT_TRUE(run.ok());
  for (int32_t j : run->assignment.target_of_source) {
    ASSERT_GE(j, 0);
    ASSERT_LT(j, static_cast<int32_t>(d.test_target_entities.size()));
  }
}

TEST(RlMatcherTest, DeterministicGivenSeed) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  MatchOptions options = MakePreset(AlgorithmPreset::kRl);
  options.rl.epochs = 5;
  auto a = RunMatching(d, *emb, options);
  auto b = RunMatching(d, *emb, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment.target_of_source, b->assignment.target_of_source);
}

TEST(RlMatcherTest, FallsBackToGreedyWithoutTrainLinks) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  // Erase the train split.
  d.split.train = AlignmentSet();
  MatchOptions options = MakePreset(AlgorithmPreset::kRl);
  auto run = RunMatching(d, *emb, options);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->assignment.size(), d.test_source_entities.size());
}

TEST(RlMatcherTest, ValidatesScoreShape) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  Matrix wrong(3, 3);
  EXPECT_FALSE(RlMatch(d, *emb, wrong, RlMatcherOptions()).ok());
}

}  // namespace
}  // namespace entmatcher
