#include <algorithm>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/gale_shapley.h"
#include "matching/greedy.h"
#include "matching/hungarian_matcher.h"
#include "matching/lap.h"

namespace entmatcher {
namespace {

Matrix RandomScores(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : s.Row(i)) v = static_cast<float>(rng.NextUniform(0, 1));
  }
  return s;
}

// ---- Greedy -------------------------------------------------------------------

TEST(GreedyTest, PicksRowArgmax) {
  Matrix s = Matrix::FromRows({{0.1f, 0.9f}, {0.8f, 0.3f}});
  auto a = GreedyMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source, (std::vector<int32_t>{1, 0}));
  EXPECT_EQ(a->NumMatched(), 2u);
}

TEST(GreedyTest, AllowsDuplicateTargets) {
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.2f}});
  auto a = GreedyMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source[0], 0);
  EXPECT_EQ(a->target_of_source[1], 0);  // greedy ignores the conflict
}

TEST(GreedyTest, RejectsEmpty) { EXPECT_FALSE(GreedyMatch(Matrix()).ok()); }

// ---- LAP solver -----------------------------------------------------------------

TEST(LapTest, SolvesKnownInstance) {
  // Classic 3x3: optimal assignment 0->1, 1->0, 2->2 with cost 1+2+3 = 6?
  Matrix cost = Matrix::FromRows({{4, 1, 3}, {2, 0, 5}, {3, 2, 2}});
  auto sol = SolveLapMin(cost);
  ASSERT_TRUE(sol.ok());
  // Optimal: (0,1)=1,(1,0)=2,(2,2)=2 -> 5.
  EXPECT_DOUBLE_EQ(sol->total_cost, 5.0);
  EXPECT_EQ(sol->col_of_row[0], 1);
  EXPECT_EQ(sol->col_of_row[1], 0);
  EXPECT_EQ(sol->col_of_row[2], 2);
}

TEST(LapTest, RejectsNonSquare) {
  EXPECT_FALSE(SolveLapMin(Matrix(2, 3)).ok());
  EXPECT_FALSE(SolveLapMin(Matrix()).ok());
}

TEST(LapTest, SingleCell) {
  Matrix cost = Matrix::FromRows({{7}});
  auto sol = SolveLapMin(cost);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->col_of_row[0], 0);
  EXPECT_DOUBLE_EQ(sol->total_cost, 7.0);
}

// Exhaustive optimality property: compare against brute-force over all
// permutations for small random instances.
class LapOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LapOptimalityTest, MatchesBruteForceOptimum) {
  const size_t n = 3 + GetParam() % 5;  // 3..7
  Matrix cost = RandomScores(n, n, GetParam() * 71 + 5);
  auto sol = SolveLapMin(cost);
  ASSERT_TRUE(sol.ok());

  // Assignment is a permutation.
  std::set<int32_t> used(sol->col_of_row.begin(), sol->col_of_row.end());
  EXPECT_EQ(used.size(), n);

  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  double best = 1e18;
  do {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) total += cost.At(i, perm[i]);
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(sol->total_cost, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LapOptimalityTest,
                         ::testing::Range<uint64_t>(0, 24));

// ---- Hungarian matcher ------------------------------------------------------------

TEST(HungarianTest, MaximizesSimilarity) {
  // Greedy would match both rows to column 0; Hungarian resolves 1-to-1.
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.7f}});
  auto a = HungarianMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source, (std::vector<int32_t>{0, 1}));
}

TEST(HungarianTest, OneToOneProperty) {
  Matrix s = RandomScores(30, 30, 11);
  auto a = HungarianMatch(s);
  ASSERT_TRUE(a.ok());
  std::set<int32_t> used;
  for (int32_t j : a->target_of_source) {
    ASSERT_NE(j, Assignment::kUnmatched);
    EXPECT_TRUE(used.insert(j).second);
  }
}

TEST(HungarianTest, RectangularMoreSourcesLeavesSomeUnmatched) {
  Matrix s = RandomScores(5, 3, 7);
  auto a = HungarianMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 3u);
  std::set<int32_t> used;
  for (int32_t j : a->target_of_source) {
    if (j == Assignment::kUnmatched) continue;
    EXPECT_GE(j, 0);
    EXPECT_LT(j, 3);
    EXPECT_TRUE(used.insert(j).second);
  }
}

TEST(HungarianTest, RectangularMoreTargetsMatchesAllSources) {
  Matrix s = RandomScores(3, 6, 8);
  auto a = HungarianMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 3u);
}

TEST(HungarianTest, BeatsGreedyTotalSimilarity) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Matrix s = RandomScores(12, 12, seed + 100);
    auto hun = HungarianMatch(s);
    auto greedy = GreedyMatch(s);
    ASSERT_TRUE(hun.ok() && greedy.ok());
    // Restrict comparison to 1-to-1 feasibility: Hungarian's total over its
    // (feasible) assignment must at least equal any other permutation's;
    // compare with the identity permutation as a sanity floor.
    double hun_total = 0.0;
    for (size_t i = 0; i < 12; ++i) {
      hun_total += s.At(i, static_cast<size_t>(hun->target_of_source[i]));
    }
    double id_total = 0.0;
    for (size_t i = 0; i < 12; ++i) id_total += s.At(i, i);
    EXPECT_GE(hun_total, id_total - 1e-4);
  }
}

TEST(HungarianTest, RejectsEmpty) { EXPECT_FALSE(HungarianMatch(Matrix()).ok()); }

// ---- Gale–Shapley -----------------------------------------------------------------

TEST(GaleShapleyTest, ClassicInstance) {
  // Row preferences and column preferences interact; verify stability and
  // the known source-optimal outcome for this matrix.
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.7f}});
  auto a = GaleShapleyMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source, (std::vector<int32_t>{0, 1}));
}

TEST(GaleShapleyTest, RejectsEmpty) {
  EXPECT_FALSE(GaleShapleyMatch(Matrix()).ok());
}

TEST(GaleShapleyTest, RectangularMoreSources) {
  Matrix s = RandomScores(6, 4, 17);
  auto a = GaleShapleyMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 4u);  // only 4 targets exist
}

TEST(GaleShapleyTest, RectangularMoreTargets) {
  Matrix s = RandomScores(4, 7, 18);
  auto a = GaleShapleyMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->NumMatched(), 4u);
}

// Stability property: no blocking pair (u, v) such that u prefers v to its
// partner and v prefers u to its partner.
class StabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StabilityTest, NoBlockingPair) {
  const size_t n = 4 + GetParam() % 9;
  const size_t m = 4 + (GetParam() / 3) % 9;
  Matrix s = RandomScores(n, m, GetParam() * 37 + 1);
  auto a = GaleShapleyMatch(s);
  ASSERT_TRUE(a.ok());

  // partner_of_target from the assignment.
  std::vector<int32_t> partner(m, -1);
  for (size_t i = 0; i < n; ++i) {
    const int32_t j = a->target_of_source[i];
    if (j != Assignment::kUnmatched) partner[static_cast<size_t>(j)] = static_cast<int32_t>(i);
  }
  for (size_t u = 0; u < n; ++u) {
    const int32_t mu = a->target_of_source[u];
    for (size_t v = 0; v < m; ++v) {
      if (mu == static_cast<int32_t>(v)) continue;
      const bool u_prefers_v =
          mu == Assignment::kUnmatched ||
          s.At(u, v) > s.At(u, static_cast<size_t>(mu));
      const int32_t pv = partner[v];
      const bool v_prefers_u =
          pv < 0 || s.At(u, v) > s.At(static_cast<size_t>(pv), v);
      ASSERT_FALSE(u_prefers_v && v_prefers_u)
          << "blocking pair (" << u << ", " << v << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilityTest, ::testing::Range<uint64_t>(0, 20));

TEST(GaleShapleyTest, OneToOneProperty) {
  Matrix s = RandomScores(25, 25, 3);
  auto a = GaleShapleyMatch(s);
  ASSERT_TRUE(a.ok());
  std::set<int32_t> used;
  for (int32_t j : a->target_of_source) {
    ASSERT_NE(j, Assignment::kUnmatched);
    EXPECT_TRUE(used.insert(j).second);
  }
}

}  // namespace
}  // namespace entmatcher
