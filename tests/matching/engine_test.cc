#include "matching/engine.h"

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "matching/pipeline.h"

namespace entmatcher {
namespace {

// The engine-reuse contract (DESIGN.md "Engine and workspace model"): every
// query through a warm MatchEngine is BIT-identical to the one-shot
// ComputeScores/MatchEmbeddings path, at any thread count, no matter how many
// queries the session has already served.

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(), a.ByteSize()) == 0;
}

std::vector<AlgorithmPreset> EnginePresets() {
  return {AlgorithmPreset::kDInf,     AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf,     AlgorithmPreset::kRinfWr,
          AlgorithmPreset::kRinfPb,   AlgorithmPreset::kSinkhorn,
          AlgorithmPreset::kHungarian, AlgorithmPreset::kStableMatch};
}

class MatchEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  size_t previous_threads_;
};

TEST_F(MatchEngineTest, EveryPresetTwiceBitIdenticalToOneShot) {
  const Matrix src = RandomMatrix(57, 16, 11);
  const Matrix tgt = RandomMatrix(43, 16, 12);
  for (size_t threads : {1u, 7u}) {
    SetNumThreads(threads);
    Result<MatchEngine> engine =
        MatchEngine::Create(src, tgt, MatchOptions());
    ASSERT_TRUE(engine.ok());
    for (AlgorithmPreset preset : EnginePresets()) {
      const MatchOptions options = MakePreset(preset);
      Result<Matrix> reference = ComputeScores(src, tgt, options);
      ASSERT_TRUE(reference.ok()) << PresetName(preset);
      Result<Assignment> one_shot = MatchEmbeddings(src, tgt, options);
      ASSERT_TRUE(one_shot.ok()) << PresetName(preset);
      // Twice through one engine: the second pass runs entirely on recycled
      // arena buffers and must not perturb a single bit.
      for (int repeat = 0; repeat < 2; ++repeat) {
        Result<Matrix> scores = engine->TransformedScores(options);
        ASSERT_TRUE(scores.ok()) << PresetName(preset);
        EXPECT_TRUE(BitIdentical(*reference, *scores))
            << PresetName(preset) << " scores differ at " << threads
            << " threads, repeat " << repeat;
        Result<Assignment> assignment = engine->Match(options);
        ASSERT_TRUE(assignment.ok()) << PresetName(preset);
        EXPECT_EQ(assignment->target_of_source, one_shot->target_of_source)
            << PresetName(preset) << " assignment differs at " << threads
            << " threads, repeat " << repeat;
      }
    }
  }
}

TEST_F(MatchEngineTest, WarmQueriesDoNotGrowArena) {
  const Matrix src = RandomMatrix(40, 8, 21);
  const Matrix tgt = RandomMatrix(30, 8, 22);
  Result<MatchEngine> engine =
      MatchEngine::Create(src, tgt, MakePreset(AlgorithmPreset::kRinf));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Match().ok());  // cold query sizes the pool
  const size_t capacity = engine->workspace().capacity_bytes();
  const size_t high_water = engine->workspace().high_water_bytes();
  EXPECT_GT(capacity, 0u);
  for (int warm = 0; warm < 3; ++warm) {
    ASSERT_TRUE(engine->Match().ok());
    EXPECT_EQ(engine->workspace().capacity_bytes(), capacity)
        << "arena grew on warm query " << warm;
    EXPECT_EQ(engine->workspace().high_water_bytes(), high_water)
        << "per-query peak drifted on warm query " << warm;
    EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
  }
}

TEST_F(MatchEngineTest, BudgetRejectsInfeasibleQueryCleanly) {
  const Matrix src = RandomMatrix(20, 8, 31);
  const Matrix tgt = RandomMatrix(16, 8, 32);
  const size_t cells = src.rows() * tgt.rows();
  // Room for the score matrix plus one more matrix of scratch: DInf (scores
  // only) and RInf (scores + one rank table) fit; SMat's preference tables
  // need 3 more and must be rejected — Table 6's "Mem: No" as a real error.
  MatchOptions base = MakePreset(AlgorithmPreset::kDInf);
  base.workspace_budget_bytes = 2 * cells * sizeof(float);
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, base);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->Match().ok());
  EXPECT_TRUE(engine->Match(MakePreset(AlgorithmPreset::kRinf)).ok());

  const MatchOptions smat = MakePreset(AlgorithmPreset::kStableMatch);
  EXPECT_GT(engine->DeclaredWorkspaceBytes(smat), base.workspace_budget_bytes);
  Result<Assignment> rejected = engine->Match(smat);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The rejection happened before any buffer was touched: nothing leaked and
  // the session still serves feasible queries.
  EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
  EXPECT_TRUE(engine->Match().ok());
}

TEST_F(MatchEngineTest, CreateValidatesShapes) {
  EXPECT_FALSE(MatchEngine::Create(Matrix(), Matrix(3, 4), MatchOptions()).ok());
  EXPECT_FALSE(
      MatchEngine::Create(Matrix(2, 3), Matrix(2, 4), MatchOptions()).ok());
  MatchOptions rl;
  rl.matcher = MatcherKind::kRl;
  Result<MatchEngine> engine =
      MatchEngine::Create(RandomMatrix(4, 3, 1), RandomMatrix(4, 3, 2),
                          MatchOptions());
  ASSERT_TRUE(engine.ok());
  EXPECT_FALSE(engine->Match(rl).ok());  // RL needs KG context
}

TEST_F(MatchEngineTest, StageDeadlineAbortsBetweenStagesAndClears) {
  const Matrix src = RandomMatrix(20, 8, 51);
  const Matrix tgt = RandomMatrix(16, 8, 52);
  Result<MatchEngine> engine =
      MatchEngine::Create(src, tgt, MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());

  // A deadline already in the past fails the query at the next stage
  // boundary — the engine never interrupts mid-kernel, it checks *between*
  // similarity, transform, and decision.
  engine->SetStageDeadline(std::chrono::steady_clock::now() -
                           std::chrono::milliseconds(1));
  Result<Assignment> expired = engine->Match();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  // The abort left no workspace leases behind.
  EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);

  // A generous deadline does not perturb the answer, and clearing restores
  // un-deadlined behavior.
  engine->SetStageDeadline(std::chrono::steady_clock::now() +
                           std::chrono::hours(1));
  Result<Assignment> within = engine->Match();
  ASSERT_TRUE(within.ok()) << within.status().ToString();
  engine->ClearStageDeadline();
  Result<Assignment> cleared = engine->Match();
  ASSERT_TRUE(cleared.ok());
  EXPECT_EQ(within->target_of_source, cleared->target_of_source);
}

TEST_F(MatchEngineTest, MatchEmbeddingsHonorsBudget) {
  const Matrix src = RandomMatrix(20, 8, 41);
  const Matrix tgt = RandomMatrix(16, 8, 42);
  MatchOptions options = MakePreset(AlgorithmPreset::kStableMatch);
  options.workspace_budget_bytes = 2 * src.rows() * tgt.rows() * sizeof(float);
  Result<Assignment> rejected = MatchEmbeddings(src, tgt, options);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  options.workspace_budget_bytes = 0;
  EXPECT_TRUE(MatchEmbeddings(src, tgt, options).ok());
}

}  // namespace
}  // namespace entmatcher
