#include "matching/transforms.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/topk.h"

namespace entmatcher {
namespace {

Matrix RandomScores(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : s.Row(i)) v = static_cast<float>(rng.NextUniform(-1, 1));
  }
  return s;
}

// ---- CSLS -------------------------------------------------------------------

TEST(CslsTest, MatchesManualComputation) {
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.4f, 0.6f}});
  // k=1: phi_s = {0.9, 0.6}; phi_t = {0.9, 0.6}.
  auto out = CslsTransform(s, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_NEAR(out->At(0, 0), 2 * 0.9 - 0.9 - 0.9, 1e-6);
  EXPECT_NEAR(out->At(0, 1), 2 * 0.1 - 0.9 - 0.6, 1e-6);
  EXPECT_NEAR(out->At(1, 0), 2 * 0.4 - 0.6 - 0.9, 1e-6);
  EXPECT_NEAR(out->At(1, 1), 2 * 0.6 - 0.6 - 0.6, 1e-6);
}

TEST(CslsTest, K2UsesTopTwoMean) {
  Matrix s = Matrix::FromRows({{1.0f, 0.5f, 0.0f}});
  auto out = CslsTransform(s, 2);
  ASSERT_TRUE(out.ok());
  // phi_s(0) = (1.0 + 0.5)/2 = 0.75; single row so phi_t(j) = s(0, j).
  EXPECT_NEAR(out->At(0, 0), 2 * 1.0 - 0.75 - 1.0, 1e-6);
  EXPECT_NEAR(out->At(0, 1), 2 * 0.5 - 0.75 - 0.5, 1e-6);
}

TEST(CslsTest, PenalizesHubs) {
  // Column 0 is a hub: high similarity to every source. CSLS should demote
  // it relative to the non-hub column for the row whose true match is col 1.
  Matrix s = Matrix::FromRows({{0.90f, 0.2f},
                               {0.91f, 0.1f},
                               {0.92f, 0.1f},
                               {0.89f, 0.85f}});
  auto out = CslsTransform(s, 2);
  ASSERT_TRUE(out.ok());
  // Row 3's argmax under raw scores is the hub column 0...
  EXPECT_GT(s.At(3, 0), s.At(3, 1));
  // ...but after CSLS the isolated column 1 wins.
  EXPECT_GT(out->At(3, 1), out->At(3, 0));
}

TEST(CslsTest, RejectsBadInput) {
  EXPECT_FALSE(CslsTransform(Matrix(), 1).ok());
  EXPECT_FALSE(CslsTransform(Matrix(2, 2), 0).ok());
}

// ---- RInf -------------------------------------------------------------------

TEST(RinfTest, MatchesManualComputationOnTiny) {
  // S = [[0.9, 0.4], [0.8, 0.7]]
  // col_max = {0.9, 0.7}; row_max = {0.9, 0.8}
  // P_st = S - col_max + 1 = [[1.0, 0.7], [0.9, 1.0]]
  // P_ts(v,u) = S(u,v) - row_max(u) + 1:
  //   P_ts = [[1.0, 1.0], [0.5, 0.9]]
  // R_st rows ranked desc: row0: {1,2}; row1: {2,1}
  // R_ts rows: row0 (target0 over sources): P=(1.0,1.0) ranks {1,2} (tie->idx)
  //            row1: P=(0.5,0.9) ranks {2,1}
  // out(u,v) = -(R_st(u,v) + R_ts(v,u))/2:
  //   out(0,0) = -(1+1)/2 = -1;    out(0,1) = -(2+2)/2 = -2
  //   out(1,0) = -(2+2)/2 = -2;    out(1,1) = -(1+1)/2 = -1
  Matrix s = Matrix::FromRows({{0.9f, 0.4f}, {0.8f, 0.7f}});
  auto out = RinfTransform(s);
  ASSERT_TRUE(out.ok());
  EXPECT_FLOAT_EQ(out->At(0, 0), -1.0f);
  EXPECT_FLOAT_EQ(out->At(0, 1), -2.0f);
  EXPECT_FLOAT_EQ(out->At(1, 0), -2.0f);
  EXPECT_FLOAT_EQ(out->At(1, 1), -1.0f);
}

TEST(RinfTest, ResolvesHubCollision) {
  // Rows 0 and 1 both prefer column 0, but column 0 prefers row 0; the
  // reciprocal ranking should steer row 1 to column 1.
  Matrix s = Matrix::FromRows({{0.9f, 0.3f}, {0.8f, 0.6f}});
  auto out = RinfTransform(s);
  ASSERT_TRUE(out.ok());
  EXPECT_GT(out->At(0, 0), out->At(0, 1));
  EXPECT_GT(out->At(1, 1), out->At(1, 0));
}

// RInf-wr is order-equivalent to CSLS with k=1 (both reduce to
// S - (row_max + col_max)/2 up to a monotone transform) — the identity that
// explains why the paper's Table 6 reports identical F1 for CSLS and
// RInf-wr.
class RinfWrEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RinfWrEquivalenceTest, RowArgmaxAgreesWithCslsK1) {
  Matrix s = RandomScores(15, 12, GetParam());
  auto wr = RinfWrTransform(s);
  auto csls = CslsTransform(s, 1);
  ASSERT_TRUE(wr.ok() && csls.ok());
  EXPECT_EQ(RowArgmax(*wr), RowArgmax(*csls));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RinfWrEquivalenceTest,
                         ::testing::Values(1, 7, 13, 29, 47, 83));

// RInf-pb approximates full RInf: the argmax of each row must agree whenever
// the full-RInf winner lies within the candidate set (here: always, since
// candidates >= columns).
TEST(RinfPbTest, DegeneratesToRinfWhenCandidatesCoverAllColumns) {
  Matrix s = RandomScores(10, 8, 3);
  auto full = RinfTransform(s);
  auto pb = RinfPbTransform(s, 8);
  ASSERT_TRUE(full.ok() && pb.ok());
  EXPECT_EQ(RowArgmax(*full), RowArgmax(*pb));
}

TEST(RinfPbTest, PrunedCandidatesGetSentinel) {
  Matrix s = RandomScores(6, 20, 4);
  auto pb = RinfPbTransform(s, 3);
  ASSERT_TRUE(pb.ok());
  // Each row has exactly 3 non-sentinel entries.
  for (size_t i = 0; i < pb->rows(); ++i) {
    size_t real = 0;
    float sentinel = -2.0f * (6 + 20);
    for (float v : pb->Row(i)) real += (v != sentinel);
    EXPECT_EQ(real, 3u);
  }
}

TEST(RinfPbTest, RejectsZeroCandidates) {
  EXPECT_FALSE(RinfPbTransform(Matrix(2, 2), 0).ok());
}

// ---- Sinkhorn ------------------------------------------------------------------

class SinkhornPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SinkhornPropertyTest, ConvergesToDoublyStochastic) {
  Matrix s = RandomScores(12, 12, GetParam());
  auto out = SinkhornTransform(s, 200, 0.1);
  ASSERT_TRUE(out.ok());
  // Columns were normalized last; rows should be near-stochastic too.
  for (size_t j = 0; j < out->cols(); ++j) {
    double col = 0.0;
    for (size_t i = 0; i < out->rows(); ++i) col += out->At(i, j);
    ASSERT_NEAR(col, 1.0, 1e-3);
  }
  for (size_t i = 0; i < out->rows(); ++i) {
    double row = 0.0;
    for (float v : out->Row(i)) row += v;
    ASSERT_NEAR(row, 1.0, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SinkhornPropertyTest,
                         ::testing::Values(2, 9, 21, 55));

TEST(SinkhornTest, RecoversPlantedPermutation) {
  // Strong diagonal-like structure under a random permutation: Sinkhorn+argmax
  // must recover it exactly.
  const size_t n = 10;
  Rng rng(5);
  std::vector<uint32_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = static_cast<uint32_t>(i);
  rng.Shuffle(&perm);
  Matrix s(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      s.At(i, j) = static_cast<float>(rng.NextUniform(0.0, 0.4));
    }
    s.At(i, perm[i]) = static_cast<float>(rng.NextUniform(0.7, 1.0));
  }
  auto out = SinkhornTransform(s, 100, 0.05);
  ASSERT_TRUE(out.ok());
  const auto argmax = RowArgmax(*out);
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(argmax[i], perm[i]);
}

TEST(SinkhornTest, MoreIterationsSharpenTheCoupling) {
  // With a contested column, later iterations push mass toward a 1-to-1
  // coupling: the max column share of a contested target decreases toward 1.
  Matrix s = Matrix::FromRows({{0.9f, 0.2f}, {0.85f, 0.6f}});
  auto few = SinkhornTransform(s, 1, 0.1);
  auto many = SinkhornTransform(s, 100, 0.1);
  ASSERT_TRUE(few.ok() && many.ok());
  // After many iterations row 1 must prefer column 1 (1-to-1 pressure).
  EXPECT_GT(many->At(1, 1), many->At(1, 0));
}

TEST(SinkhornTest, NumericallyStableWithLargeScores) {
  Matrix s = Matrix::FromRows({{500.0f, -500.0f}, {-500.0f, 500.0f}});
  auto out = SinkhornTransform(s, 10, 1.0);
  ASSERT_TRUE(out.ok());
  for (size_t i = 0; i < 2; ++i) {
    for (float v : out->Row(i)) {
      ASSERT_FALSE(std::isnan(v));
      ASSERT_FALSE(std::isinf(v));
    }
  }
  EXPECT_GT(out->At(0, 0), out->At(0, 1));
}

TEST(SinkhornTest, Validation) {
  EXPECT_FALSE(SinkhornTransform(Matrix(2, 2), 0, 0.1).ok());
  EXPECT_FALSE(SinkhornTransform(Matrix(2, 2), 10, 0.0).ok());
  EXPECT_FALSE(SinkhornTransform(Matrix(), 10, 0.1).ok());
}

// ---- Dispatch -------------------------------------------------------------------

TEST(ApplyScoreTransformTest, DispatchesAllKinds) {
  for (ScoreTransformKind kind :
       {ScoreTransformKind::kNone, ScoreTransformKind::kCsls,
        ScoreTransformKind::kRinf, ScoreTransformKind::kRinfWr,
        ScoreTransformKind::kRinfPb, ScoreTransformKind::kSinkhorn}) {
    MatchOptions options;
    options.transform = kind;
    auto out = ApplyScoreTransform(RandomScores(5, 6, 1), options);
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->rows(), 5u);
    EXPECT_EQ(out->cols(), 6u);
  }
}

TEST(ApplyScoreTransformTest, NoneIsIdentity) {
  Matrix s = RandomScores(4, 4, 2);
  Matrix copy = s;
  MatchOptions options;
  options.transform = ScoreTransformKind::kNone;
  auto out = ApplyScoreTransform(std::move(s), options);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ApproxEquals(copy, 0.0f));
}

}  // namespace
}  // namespace entmatcher
