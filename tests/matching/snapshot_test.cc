// PairSnapshot + SnapshotRegistry: build validation, shared-Core siblings,
// lazy derived caches (thread-safe, built once), version stamping, and
// RCU-style retirement of displaced versions through the epoch domain.

#include "matching/snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/candidate_index.h"

namespace entmatcher {
namespace {

Matrix RandomEmbeddings(size_t rows, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, dim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::shared_ptr<PairSnapshot> MakeSnapshot(size_t rows = 12, size_t cols = 16,
                                           size_t dim = 8) {
  Result<std::shared_ptr<PairSnapshot>> snapshot = PairSnapshot::Build(
      RandomEmbeddings(rows, dim, 3), RandomEmbeddings(cols, dim, 4));
  EXPECT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  return std::move(snapshot).value();
}

TEST(PairSnapshotTest, BuildValidatesShapes) {
  EXPECT_FALSE(PairSnapshot::Build(Matrix(), RandomEmbeddings(4, 8, 1)).ok());
  EXPECT_FALSE(PairSnapshot::Build(RandomEmbeddings(4, 8, 1), Matrix()).ok());
  EXPECT_FALSE(
      PairSnapshot::Build(RandomEmbeddings(4, 8, 1), RandomEmbeddings(4, 6, 2))
          .ok());
  EXPECT_TRUE(
      PairSnapshot::Build(RandomEmbeddings(4, 8, 1), RandomEmbeddings(4, 8, 2))
          .ok());
}

TEST(PairSnapshotTest, StartsUnpublishedWithoutIndex) {
  std::shared_ptr<PairSnapshot> snapshot = MakeSnapshot();
  EXPECT_EQ(snapshot->version(), 0u);
  EXPECT_EQ(snapshot->index(), nullptr);
}

TEST(PairSnapshotTest, EnsureCacheIsBuiltOnceAndStable) {
  std::shared_ptr<PairSnapshot> snapshot = MakeSnapshot();
  const SimilarityCache& first = snapshot->EnsureCache(SimilarityMetric::kCosine);
  const SimilarityCache& again =
      snapshot->EnsureCache(SimilarityMetric::kCosine);
  EXPECT_EQ(&first, &again) << "cache rebuilt on second use";
  // A different metric gets its own slot.
  const SimilarityCache& euclid =
      snapshot->EnsureCache(SimilarityMetric::kNegEuclidean);
  EXPECT_NE(&first, &euclid);
}

TEST(PairSnapshotTest, ConcurrentEnsureCacheYieldsOneCache) {
  std::shared_ptr<PairSnapshot> snapshot = MakeSnapshot(64, 64, 16);
  constexpr int kThreads = 8;
  std::vector<const SimilarityCache*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      seen[t] = &snapshot->EnsureCache(SimilarityMetric::kCosine);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
}

TEST(PairSnapshotTest, EnsureQuantizedBuildsBothArms) {
  std::shared_ptr<PairSnapshot> snapshot = MakeSnapshot();
  auto bf16 = snapshot->EnsureQuantized(ScorePrecision::kBf16);
  ASSERT_TRUE(bf16.ok()) << bf16.status().ToString();
  EXPECT_EQ((*bf16)->first.rows(), snapshot->source().rows());
  auto int8 = snapshot->EnsureQuantized(ScorePrecision::kInt8);
  ASSERT_TRUE(int8.ok()) << int8.status().ToString();
  // Second call returns the same built pair.
  auto again = snapshot->EnsureQuantized(ScorePrecision::kBf16);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*bf16, *again);
}

TEST(PairSnapshotTest, WithIndexSharesCoreAndCaches) {
  std::shared_ptr<PairSnapshot> base = MakeSnapshot(12, 16, 8);
  const SimilarityCache& cache = base->EnsureCache(SimilarityMetric::kCosine);
  Result<CandidateIndex> index =
      CandidateIndex::Build(base->target(), CandidateIndexOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  auto shared_index = std::make_shared<const CandidateIndex>(
      std::move(index).value());
  std::shared_ptr<PairSnapshot> sibling = base->WithIndex(shared_index);
  EXPECT_EQ(sibling->index(), shared_index.get());
  // Same Core: the embeddings and the already-built cache are the same
  // objects, not copies.
  EXPECT_EQ(&sibling->source(), &base->source());
  EXPECT_EQ(&sibling->EnsureCache(SimilarityMetric::kCosine), &cache);
  // Detach again.
  std::shared_ptr<PairSnapshot> detached = sibling->WithIndex(nullptr);
  EXPECT_EQ(detached->index(), nullptr);
}

TEST(SnapshotRegistryTest, PublishStampsMonotonicVersions) {
  SnapshotRegistry registry;
  Result<uint64_t> v1 = registry.Publish("pair", MakeSnapshot());
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  EXPECT_EQ(*v1, 1u);
  Result<uint64_t> v2 = registry.Publish("pair", MakeSnapshot());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v2, 2u);
  std::shared_ptr<const PairSnapshot> current = registry.Acquire("pair");
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version(), 2u);
  EXPECT_EQ(registry.Acquire("other"), nullptr);
  EXPECT_EQ(registry.Names(), std::vector<std::string>{"pair"});
}

TEST(SnapshotRegistryTest, AcquiredReferenceSurvivesPublish) {
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish("pair", MakeSnapshot()).ok());
  std::shared_ptr<const PairSnapshot> old = registry.Acquire("pair");
  const float first_value = old->source().Row(0)[0];
  ASSERT_TRUE(registry.Publish("pair", MakeSnapshot()).ok());
  // The displaced version stays readable through our reference.
  EXPECT_EQ(old->version(), 1u);
  EXPECT_EQ(old->source().Row(0)[0], first_value);
  EXPECT_EQ(registry.Acquire("pair")->version(), 2u);
}

TEST(SnapshotRegistryTest, DisplacedSnapshotIsReclaimedAfterGuardsDrain) {
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish("pair", MakeSnapshot()).ok());
  std::weak_ptr<const PairSnapshot> displaced = registry.Acquire("pair");
  {
    // An in-flight pass pins the epoch across the swap.
    EpochDomain::Guard guard = registry.domain().Enter();
    ASSERT_TRUE(registry.Publish("pair", MakeSnapshot()).ok());
    registry.domain().TryReclaim();
    EXPECT_FALSE(displaced.expired())
        << "displaced snapshot reclaimed under an active pass";
  }
  registry.domain().TryReclaim();
  EXPECT_TRUE(displaced.expired())
      << "displaced snapshot leaked after all passes drained";
}

}  // namespace
}  // namespace entmatcher
