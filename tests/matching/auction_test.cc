#include "matching/auction.h"

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "matching/hungarian_matcher.h"

namespace entmatcher {
namespace {

Matrix RandomScores(size_t n, uint64_t seed) {
  Rng rng(seed);
  Matrix s(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : s.Row(i)) v = static_cast<float>(rng.NextUniform(0, 1));
  }
  return s;
}

double Total(const Matrix& s, const Assignment& a) {
  double t = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    t += s.At(i, static_cast<size_t>(a.target_of_source[i]));
  }
  return t;
}

TEST(AuctionTest, SolvesSmallKnownInstance) {
  Matrix s = Matrix::FromRows({{0.9f, 0.1f}, {0.8f, 0.7f}});
  auto a = AuctionMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source, (std::vector<int32_t>{0, 1}));
}

TEST(AuctionTest, ProducesPermutation) {
  Matrix s = RandomScores(30, 3);
  auto a = AuctionMatch(s);
  ASSERT_TRUE(a.ok());
  std::set<int32_t> used(a->target_of_source.begin(),
                         a->target_of_source.end());
  EXPECT_EQ(used.size(), 30u);
  EXPECT_EQ(used.count(Assignment::kUnmatched), 0u);
}

class AuctionOptimalityTest : public ::testing::TestWithParam<uint64_t> {};

// Auction with epsilon-scaling is within n*eps_final of optimal; with the
// default eps_final = 1e-4 and n <= 25, totals must match the Hungarian
// optimum to within n * eps.
TEST_P(AuctionOptimalityTest, NearHungarianOptimum) {
  const size_t n = 5 + GetParam() % 21;
  Matrix s = RandomScores(n, GetParam() * 31 + 11);
  auto auction = AuctionMatch(s);
  auto hungarian = HungarianMatch(s);
  ASSERT_TRUE(auction.ok() && hungarian.ok());
  EXPECT_GE(Total(s, *auction),
            Total(s, *hungarian) - static_cast<double>(n) * 1e-4 - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AuctionOptimalityTest,
                         ::testing::Range<uint64_t>(0, 16));

TEST(AuctionTest, Validation) {
  EXPECT_FALSE(AuctionMatch(Matrix()).ok());
  EXPECT_FALSE(AuctionMatch(Matrix(2, 3)).ok());
  AuctionOptions bad;
  bad.epsilon_scaling = 1.5;
  EXPECT_FALSE(AuctionMatch(Matrix(2, 2), bad).ok());
  bad = AuctionOptions();
  bad.starting_epsilon = 0.0;
  EXPECT_FALSE(AuctionMatch(Matrix(2, 2), bad).ok());
}

TEST(AuctionTest, SingleCell) {
  Matrix s = Matrix::FromRows({{0.4f}});
  auto a = AuctionMatch(s);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->target_of_source[0], 0);
}

TEST(AuctionTest, IterationCapReturnsError) {
  Matrix s = RandomScores(40, 9);
  AuctionOptions options;
  options.max_iterations = 10;  // absurdly small
  auto a = AuctionMatch(s, options);
  EXPECT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace entmatcher
