#include "matching/relation_context.h"

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "la/similarity.h"
#include "la/topk.h"

namespace entmatcher {
namespace {

// A hand-built pair where the relation correspondence is unambiguous:
// source relation 0 <-> target relation 1, relation 1 <-> relation 0.
KgPairDataset ManualDataset() {
  KgPairDataset d;
  // Source: 0 -r0-> 1, 0 -r1-> 2, 3 -r0-> 1.
  auto src = KnowledgeGraph::Create(4, 2, {{0, 0, 1}, {0, 1, 2}, {3, 0, 1}});
  // Target: 0 -r1-> 1, 0 -r0-> 2, 3 -r1-> 1.
  auto tgt = KnowledgeGraph::Create(4, 2, {{0, 1, 1}, {0, 0, 2}, {3, 1, 1}});
  d.source = std::move(src).value();
  d.target = std::move(tgt).value();
  d.gold = AlignmentSet({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  d.split.train = AlignmentSet({{0, 0}, {1, 1}, {2, 2}});
  d.split.test = AlignmentSet({{3, 3}});
  PopulateTestCandidates(&d);
  return d;
}

TEST(RelationCorrespondenceTest, LearnsSwappedRelations) {
  KgPairDataset d = ManualDataset();
  RelationContextOptions options;
  options.smoothing = 0.0;
  auto model = RelationCorrespondence::Learn(d, options);
  ASSERT_TRUE(model.ok());
  // Around seed (0, 0): source r0(out)/r1(out) co-occur with target
  // r1(out)/r0(out) — the swapped correspondence must dominate same-id.
  const float swapped =
      model->Probability(0, false, 1, false);
  const float same = model->Probability(0, false, 0, false);
  EXPECT_GT(swapped, 0.0f);
  EXPECT_GE(swapped, same);
}

TEST(RelationCorrespondenceTest, RequiresTrainLinks) {
  KgPairDataset d = ManualDataset();
  d.split.train = AlignmentSet();
  EXPECT_FALSE(RelationCorrespondence::Learn(d, RelationContextOptions()).ok());
}

TEST(RelationCorrespondenceTest, RejectsNegativeSmoothing) {
  KgPairDataset d = ManualDataset();
  RelationContextOptions options;
  options.smoothing = -1.0;
  EXPECT_FALSE(RelationCorrespondence::Learn(d, options).ok());
}

TEST(RelationContextRescoreTest, ValidatesInput) {
  KgPairDataset d = ManualDataset();
  EXPECT_FALSE(
      RelationContextRescore(d, Matrix(5, 5), RelationContextOptions()).ok());
  RelationContextOptions options;
  options.candidates = 0;
  EXPECT_FALSE(RelationContextRescore(d, Matrix(1, 1), options).ok());
}

TEST(RelationContextRescoreTest, BoostsRelationCompatibleCandidate) {
  KgPairDataset d = ManualDataset();
  // Ambiguous raw scores for test source 3 (columns = test targets = {3}).
  // Extend the candidate columns by adding another test link first.
  Matrix scores(1, 1);
  scores.Fill(0.5f);
  auto rescored = RelationContextRescore(d, scores, RelationContextOptions());
  ASSERT_TRUE(rescored.ok());
  // Source 3 has r0(out); target 3 has r1(out); the learned correspondence
  // r0->r1 must produce a positive bonus.
  EXPECT_GT(rescored->At(0, 0), 0.5f);
}

TEST(RelationContextRescoreTest, ImprovesGreedyOnGeneratedData) {
  KgPairGeneratorConfig c;
  c.seed = 33;
  c.num_core_concepts = 400;
  c.avg_degree = 3.0;  // sparse: where relation evidence helps most
  c.num_world_relations = 40;
  c.num_relations_source = 35;
  c.num_relations_target = 30;
  auto d = GenerateKgPair(c);
  ASSERT_TRUE(d.ok());
  auto emb = ComputeStructuralEmbeddings(*d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());

  const Matrix src = ExtractRows(emb->source, d->test_source_entities);
  const Matrix tgt = ExtractRows(emb->target, d->test_target_entities);
  auto raw = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(raw.ok());

  auto accuracy = [&](const Matrix& scores) {
    const auto argmax = RowArgmax(scores);
    size_t correct = 0;
    for (size_t i = 0; i < argmax.size(); ++i) {
      if (d->split.test.Contains(d->test_source_entities[i],
                                 d->test_target_entities[argmax[i]])) {
        ++correct;
      }
    }
    return static_cast<double>(correct) / static_cast<double>(argmax.size());
  };

  const double before = accuracy(*raw);
  auto rescored = RelationContextRescore(*d, *raw, RelationContextOptions());
  ASSERT_TRUE(rescored.ok());
  const double after = accuracy(*rescored);
  EXPECT_GE(after, before);
}

}  // namespace
}  // namespace entmatcher
