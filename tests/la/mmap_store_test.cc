// EMBF1 / MmapStore tests: bitwise round trips, header validation, writer
// misuse, MemoryTracker resident-budget accounting, and the load-bearing
// property of the whole out-of-core path — an engine fed borrowed mmap
// matrices scores bit-identically to one fed heap copies.

#include "la/mmap_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "datagen/embf_synth.h"
#include "la/similarity.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(MmapStoreTest, RoundTripIsBitwise) {
  const Matrix original = RandomMatrix(37, 12, 301);
  const std::string path = TempPath("round_trip.embf");
  ASSERT_TRUE(MmapStore::Write(original, path).ok());

  Result<MmapStore> store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->rows(), 37u);
  EXPECT_EQ(store->cols(), 12u);
  EXPECT_EQ(store->logical_bytes(), original.ByteSize());

  const Matrix view = store->AsMatrix();
  ASSERT_EQ(view.rows(), original.rows());
  ASSERT_EQ(view.cols(), original.cols());
  EXPECT_EQ(std::memcmp(view.data(), original.data(), original.ByteSize()),
            0);
  for (size_t r = 0; r < original.rows(); ++r) {
    auto row = store->RowView(r);
    ASSERT_EQ(row.size(), original.cols());
    EXPECT_EQ(std::memcmp(row.data(), original.Row(r).data(),
                          original.cols() * sizeof(float)),
              0);
  }
  std::remove(path.c_str());
}

TEST(MmapStoreTest, WriterEnforcesTheDeclaredShape) {
  const std::string path = TempPath("writer_misuse.embf");
  EXPECT_FALSE(EmbfWriter::Create(path, 4, 0).ok());

  const std::vector<float> narrow = {1.0f, 2.0f};
  const std::vector<float> row = {1.0f, 2.0f, 3.0f};

  // Finish is terminal: an incomplete writer fails it AND becomes inert.
  {
    Result<EmbfWriter> incomplete = EmbfWriter::Create(path, 2, 3);
    ASSERT_TRUE(incomplete.ok());
    ASSERT_TRUE(incomplete->Append(row).ok());
    EXPECT_FALSE(incomplete->Finish().ok());  // one row short
    EXPECT_FALSE(incomplete->Append(row).ok());
    EXPECT_FALSE(incomplete->Finish().ok());
  }

  Result<EmbfWriter> writer = EmbfWriter::Create(path, 2, 3);
  ASSERT_TRUE(writer.ok());
  EXPECT_FALSE(writer->Append(narrow).ok());  // wrong width
  ASSERT_TRUE(writer->Append(row).ok());
  ASSERT_TRUE(writer->Append(row).ok());
  EXPECT_FALSE(writer->Append(row).ok());  // over-append
  EXPECT_EQ(writer->rows_written(), 2u);
  ASSERT_TRUE(writer->Finish().ok());

  Result<MmapStore> store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->rows(), 2u);
  EXPECT_EQ(store->cols(), 3u);
  std::remove(path.c_str());
}

TEST(MmapStoreTest, OpenRejectsCorruptFiles) {
  EXPECT_FALSE(MmapStore::Open(TempPath("does_not_exist.embf")).ok());

  const Matrix m = RandomMatrix(9, 5, 311);
  const std::string good = TempPath("good.embf");
  ASSERT_TRUE(MmapStore::Write(m, good).ok());
  const std::string bytes = FileBytes(good);
  ASSERT_GT(bytes.size(), kEmbfHeaderBytes);

  const std::string bad = TempPath("bad.embf");
  {  // header shorter than the fixed 64 bytes
    WriteBytes(bad, bytes.substr(0, 20));
    EXPECT_FALSE(MmapStore::Open(bad).ok());
  }
  {  // wrong magic
    std::string mutated = bytes;
    mutated[0] = 'X';
    WriteBytes(bad, mutated);
    EXPECT_FALSE(MmapStore::Open(bad).ok());
  }
  {  // unknown format version
    std::string mutated = bytes;
    mutated[4] = 9;
    WriteBytes(bad, mutated);
    EXPECT_FALSE(MmapStore::Open(bad).ok());
  }
  {  // payload truncated mid-row
    WriteBytes(bad, bytes.substr(0, bytes.size() - 7));
    EXPECT_FALSE(MmapStore::Open(bad).ok());
  }
  {  // payload offset pointing past the file
    std::string mutated = bytes;
    const uint64_t offset = mutated.size() + 64;
    std::memcpy(&mutated[28], &offset, sizeof(offset));
    WriteBytes(bad, mutated);
    EXPECT_FALSE(MmapStore::Open(bad).ok());
  }
  std::remove(bad.c_str());
  std::remove(good.c_str());
}

// The tracker charge is the declared resident budget capped at the logical
// size — never the logical size of a store bigger than its budget — and it
// is released (exactly once, despite moves) when the store dies.
TEST(MmapStoreTest, TrackerChargesResidentBudgetNotLogicalBytes) {
  const Matrix m = RandomMatrix(64, 16, 321);  // 4 KB logical
  const std::string path = TempPath("tracked.embf");
  ASSERT_TRUE(MmapStore::Write(m, path).ok());
  const size_t logical = m.ByteSize();

  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t before = tracker.stats().current_bytes;
  {
    MmapStoreOptions small_budget;
    small_budget.resident_budget_bytes = 1024;
    Result<MmapStore> store = MmapStore::Open(path, small_budget);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->tracked_bytes(), 1024u);
    EXPECT_EQ(tracker.stats().current_bytes, before + 1024);

    MmapStore moved = std::move(store).value();
    EXPECT_EQ(moved.tracked_bytes(), 1024u);
    EXPECT_EQ(tracker.stats().current_bytes, before + 1024);
  }
  EXPECT_EQ(tracker.stats().current_bytes, before);

  {
    MmapStoreOptions big_budget;
    big_budget.resident_budget_bytes = 1ull << 30;
    Result<MmapStore> store = MmapStore::Open(path, big_budget);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ(store->tracked_bytes(), logical);
    EXPECT_EQ(tracker.stats().current_bytes, before + logical);
  }
  EXPECT_EQ(tracker.stats().current_bytes, before);
  std::remove(path.c_str());
}

TEST(MmapStoreTest, DropResidentKeepsDataReadable) {
  const Matrix m = RandomMatrix(50, 8, 331);
  const std::string path = TempPath("drop.embf");
  ASSERT_TRUE(MmapStore::Write(m, path).ok());
  Result<MmapStore> store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok());
  const Matrix before_drop = store->AsMatrix();  // borrowed
  ASSERT_TRUE(store->DropResident().ok());
  // Pages fault straight back in from the file: same bits.
  EXPECT_EQ(
      std::memcmp(before_drop.data(), m.data(), m.ByteSize()), 0);
  std::remove(path.c_str());
}

// The whole point of the out-of-core path: feeding the engine borrowed
// mmap-backed matrices changes where the bytes live, not a single bit of
// what it computes.
TEST(MmapStoreTest, EngineScoresBitIdenticalOverHeapAndMmap) {
  const Matrix src = RandomMatrix(25, 10, 341);
  const Matrix tgt = RandomMatrix(30, 10, 342);
  const std::string src_path = TempPath("engine_src.embf");
  const std::string tgt_path = TempPath("engine_tgt.embf");
  ASSERT_TRUE(MmapStore::Write(src, src_path).ok());
  ASSERT_TRUE(MmapStore::Write(tgt, tgt_path).ok());
  Result<MmapStore> src_store = MmapStore::Open(src_path);
  Result<MmapStore> tgt_store = MmapStore::Open(tgt_path);
  ASSERT_TRUE(src_store.ok());
  ASSERT_TRUE(tgt_store.ok());

  const MatchOptions options = MakePreset(AlgorithmPreset::kCsls);
  Result<MatchEngine> heap_engine = MatchEngine::Create(src, tgt, options);
  Result<MatchEngine> mmap_engine = MatchEngine::Create(
      src_store->AsMatrix(), tgt_store->AsMatrix(), options);
  ASSERT_TRUE(heap_engine.ok());
  ASSERT_TRUE(mmap_engine.ok());

  Result<Matrix> heap_scores = heap_engine->TransformedScores(options);
  Result<Matrix> mmap_scores = mmap_engine->TransformedScores(options);
  ASSERT_TRUE(heap_scores.ok());
  ASSERT_TRUE(mmap_scores.ok());
  EXPECT_EQ(std::memcmp(heap_scores->data(), mmap_scores->data(),
                        heap_scores->ByteSize()),
            0);

  Result<Assignment> heap_match = heap_engine->Match();
  Result<Assignment> mmap_match = mmap_engine->Match();
  ASSERT_TRUE(heap_match.ok());
  ASSERT_TRUE(mmap_match.ok());
  EXPECT_EQ(heap_match->target_of_source, mmap_match->target_of_source);

  std::remove(src_path.c_str());
  std::remove(tgt_path.c_str());
}

// The synthetic generator is a pure function of its options: regenerating
// produces byte-identical files, rows are unit-norm, and source row r stays
// nearest to target row r (the property recall benchmarks lean on).
TEST(MmapStoreTest, SynthPairIsDeterministicAndAligned) {
  EmbfSynthOptions options;
  options.rows = 120;
  options.dim = 16;
  options.clusters = 8;
  options.seed = 99;
  const std::string src_a = TempPath("synth_src_a.embf");
  const std::string tgt_a = TempPath("synth_tgt_a.embf");
  const std::string src_b = TempPath("synth_src_b.embf");
  const std::string tgt_b = TempPath("synth_tgt_b.embf");
  ASSERT_TRUE(SynthEmbfPair(options, src_a, tgt_a).ok());
  ASSERT_TRUE(SynthEmbfPair(options, src_b, tgt_b).ok());
  EXPECT_EQ(FileBytes(src_a), FileBytes(src_b));
  EXPECT_EQ(FileBytes(tgt_a), FileBytes(tgt_b));

  Result<MmapStore> src = MmapStore::Open(src_a);
  Result<MmapStore> tgt = MmapStore::Open(tgt_a);
  ASSERT_TRUE(src.ok());
  ASSERT_TRUE(tgt.ok());
  ASSERT_EQ(src->rows(), options.rows);
  ASSERT_EQ(tgt->cols(), options.dim);
  for (size_t r = 0; r < src->rows(); ++r) {
    double sq = 0.0;
    for (float v : src->RowView(r)) sq += static_cast<double>(v) * v;
    EXPECT_NEAR(sq, 1.0, 1e-4) << "source row " << r << " not unit-norm";
  }

  Result<Matrix> sims = ComputeSimilarity(
      src->AsMatrix(), tgt->AsMatrix(), SimilarityMetric::kCosine);
  ASSERT_TRUE(sims.ok());
  size_t identity_argmax = 0;
  for (size_t i = 0; i < src->rows(); ++i) {
    size_t argmax = 0;
    for (size_t j = 1; j < tgt->rows(); ++j) {
      if (sims->At(i, j) > sims->At(i, argmax)) argmax = j;
    }
    identity_argmax += (argmax == i);
  }
  EXPECT_GE(identity_argmax, options.rows * 9 / 10);

  for (const std::string& p : {src_a, tgt_a, src_b, tgt_b}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace entmatcher
