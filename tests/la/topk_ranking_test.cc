#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "la/ranking.h"
#include "la/topk.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t n, size_t m, uint64_t seed) {
  Rng rng(seed);
  Matrix out(n, m);
  for (size_t i = 0; i < n; ++i) {
    for (float& v : out.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  return out;
}

TEST(TopkTest, RowArgmaxPicksMaximum) {
  Matrix m = Matrix::FromRows({{1, 5, 2}, {7, 0, 3}});
  auto idx = RowArgmax(m);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 0u);
}

TEST(TopkTest, RowArgmaxTieBreaksLow) {
  Matrix m = Matrix::FromRows({{2, 2, 1}});
  EXPECT_EQ(RowArgmax(m)[0], 0u);
}

TEST(TopkTest, RowAndColMax) {
  Matrix m = Matrix::FromRows({{1, 5}, {7, 0}});
  auto rmax = RowMax(m);
  EXPECT_EQ(rmax[0], 5.0f);
  EXPECT_EQ(rmax[1], 7.0f);
  auto cmax = ColMax(m);
  EXPECT_EQ(cmax[0], 7.0f);
  EXPECT_EQ(cmax[1], 5.0f);
}

TEST(TopkTest, RowTopKMean) {
  Matrix m = Matrix::FromRows({{1, 2, 3, 4}});
  EXPECT_FLOAT_EQ(RowTopKMean(m, 1)[0], 4.0f);
  EXPECT_FLOAT_EQ(RowTopKMean(m, 2)[0], 3.5f);
  EXPECT_FLOAT_EQ(RowTopKMean(m, 4)[0], 2.5f);
  // k larger than row length clamps.
  EXPECT_FLOAT_EQ(RowTopKMean(m, 10)[0], 2.5f);
}

TEST(TopkTest, ColTopKMeanMatchesRowTopKMeanOnTranspose) {
  Matrix m = RandomMatrix(17, 23, 55);
  for (size_t k : {1u, 2u, 5u, 30u}) {
    const std::vector<float> streamed = ColTopKMean(m, k);
    Matrix t = m.Transposed();
    const std::vector<float> reference = RowTopKMean(t, k);
    ASSERT_EQ(streamed.size(), reference.size());
    for (size_t j = 0; j < streamed.size(); ++j) {
      ASSERT_NEAR(streamed[j], reference[j], 1e-5f) << "k=" << k << " j=" << j;
    }
  }
}

TEST(TopkTest, ColTopKMeanSmallKnown) {
  Matrix m = Matrix::FromRows({{1, 5}, {3, 2}, {2, 8}});
  const std::vector<float> top2 = ColTopKMean(m, 2);
  EXPECT_FLOAT_EQ(top2[0], 2.5f);  // (3 + 2) / 2
  EXPECT_FLOAT_EQ(top2[1], 6.5f);  // (8 + 5) / 2
}

TEST(TopkTest, RowTopKIndicesSortedByValue) {
  Matrix m = Matrix::FromRows({{0.1f, 0.9f, 0.5f, 0.7f}});
  auto idx = RowTopKIndices(m, 3);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 1u);
  EXPECT_EQ(idx[1], 3u);
  EXPECT_EQ(idx[2], 2u);
}

TEST(TopkTest, RowTopKIndicesPropertyAgainstSort) {
  Matrix m = RandomMatrix(12, 30, 77);
  const size_t k = 5;
  auto idx = RowTopKIndices(m, k);
  for (size_t r = 0; r < m.rows(); ++r) {
    auto row = m.Row(r);
    std::vector<float> values(row.begin(), row.end());
    std::sort(values.begin(), values.end(), std::greater<float>());
    for (size_t p = 0; p < k; ++p) {
      ASSERT_FLOAT_EQ(m.At(r, idx[r * k + p]), values[p]);
    }
  }
}

TEST(TopkTest, MeanRowTopKStdMatchesManual) {
  Matrix m = Matrix::FromRows({{1, 2, 3}});
  // top-2 = {3, 2}: mean 2.5, var 0.25, std 0.5
  EXPECT_NEAR(MeanRowTopKStd(m, 2), 0.5, 1e-6);
  // k = 1 has zero spread by definition.
  EXPECT_EQ(MeanRowTopKStd(m, 1), 0.0);
}

TEST(TopkTest, MeanRowTopKStdUniformRowIsZero) {
  Matrix m = Matrix::FromRows({{2, 2, 2, 2}});
  EXPECT_NEAR(MeanRowTopKStd(m, 3), 0.0, 1e-9);
}

// ---- RowRankMatrix ----------------------------------------------------------

TEST(RankingTest, SmallKnownRanks) {
  Matrix m = Matrix::FromRows({{0.2f, 0.9f, 0.5f}});
  Matrix r = RowRankMatrix(m);
  EXPECT_EQ(r.At(0, 0), 3.0f);
  EXPECT_EQ(r.At(0, 1), 1.0f);
  EXPECT_EQ(r.At(0, 2), 2.0f);
}

TEST(RankingTest, TiesBreakByColumnIndex) {
  Matrix m = Matrix::FromRows({{1.0f, 1.0f, 2.0f}});
  Matrix r = RowRankMatrix(m);
  EXPECT_EQ(r.At(0, 2), 1.0f);
  EXPECT_EQ(r.At(0, 0), 2.0f);
  EXPECT_EQ(r.At(0, 1), 3.0f);
}

class RankingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RankingPropertyTest, EachRowIsPermutationConsistentWithScores) {
  Matrix m = RandomMatrix(10, 25, GetParam());
  Matrix r = RowRankMatrix(m);
  for (size_t i = 0; i < m.rows(); ++i) {
    std::set<float> seen;
    for (size_t j = 0; j < m.cols(); ++j) {
      const float rank = r.At(i, j);
      ASSERT_GE(rank, 1.0f);
      ASSERT_LE(rank, static_cast<float>(m.cols()));
      ASSERT_TRUE(seen.insert(rank).second) << "duplicate rank";
    }
    // Higher score => lower (better) rank.
    for (size_t a = 0; a < m.cols(); ++a) {
      for (size_t b = a + 1; b < m.cols(); ++b) {
        if (m.At(i, a) > m.At(i, b)) {
          ASSERT_LT(r.At(i, a), r.At(i, b));
        } else if (m.At(i, a) < m.At(i, b)) {
          ASSERT_GT(r.At(i, a), r.At(i, b));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 29, 101));

}  // namespace
}  // namespace entmatcher
