#include "la/matrix.h"

#include <gtest/gtest.h>

#include "common/memory_tracker.h"

namespace entmatcher {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 4; ++c) EXPECT_EQ(m.At(r, c), 0.0f);
  }
}

TEST(MatrixTest, AtReadWrite) {
  Matrix m(2, 2);
  m.At(0, 1) = 5.0f;
  m.At(1, 0) = -2.0f;
  EXPECT_EQ(m.At(0, 1), 5.0f);
  EXPECT_EQ(m.At(1, 0), -2.0f);
}

TEST(MatrixTest, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  ASSERT_EQ(row.size(), 3u);
  row[2] = 9.0f;
  EXPECT_EQ(m.At(1, 2), 9.0f);
}

TEST(MatrixTest, FillScaleAdd) {
  Matrix m(2, 2);
  m.Fill(2.0f);
  m.Scale(3.0f);
  EXPECT_EQ(m.At(1, 1), 6.0f);
  Matrix other(2, 2);
  other.Fill(1.0f);
  m.Add(other);
  EXPECT_EQ(m.At(0, 0), 7.0f);
}

TEST(MatrixTest, FromRowsAndApproxEquals) {
  Matrix m = Matrix::FromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_EQ(m.At(0, 1), 2.0f);
  EXPECT_EQ(m.At(1, 0), 3.0f);

  Matrix close = Matrix::FromRows({{1.0001f, 2.0f}, {3.0f, 4.0f}});
  EXPECT_TRUE(m.ApproxEquals(close, 1e-3f));
  EXPECT_FALSE(m.ApproxEquals(close, 1e-6f));
  Matrix other_shape(1, 2);
  EXPECT_FALSE(m.ApproxEquals(other_shape, 1.0f));
}

TEST(MatrixTest, Transposed) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(m.At(r, c), t.At(c, r));
  }
}

TEST(MatrixTest, TransposeLargeBlocked) {
  Matrix m(130, 70);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      m.At(r, c) = static_cast<float>(r * 1000 + c);
    }
  }
  Matrix t = m.Transposed();
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      ASSERT_EQ(t.At(c, r), m.At(r, c));
    }
  }
}

TEST(MatrixTest, CopyIsDeep) {
  Matrix a(2, 2);
  a.Fill(1.0f);
  Matrix b = a;
  b.At(0, 0) = 5.0f;
  EXPECT_EQ(a.At(0, 0), 1.0f);
  Matrix c(1, 1);
  c = a;
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.At(1, 1), 1.0f);
}

TEST(MatrixTest, MoveTransfersAndEmptiesSource) {
  Matrix a(2, 2);
  a.Fill(3.0f);
  Matrix b = std::move(a);
  EXPECT_EQ(b.At(0, 0), 3.0f);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(MatrixTest, TracksMemory) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.current_bytes();
  {
    Matrix m(100, 100);
    EXPECT_EQ(t.current_bytes(), base + 100 * 100 * sizeof(float));
    Matrix moved = std::move(m);
    EXPECT_EQ(t.current_bytes(), base + 100 * 100 * sizeof(float));
  }
  EXPECT_EQ(t.current_bytes(), base);
}

TEST(MatrixTest, BorrowedViewsExternalBuffer) {
  std::vector<float> buffer(6, 0.0f);
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.current_bytes();
  Matrix m = Matrix::Borrowed(buffer.data(), 2, 3);
  EXPECT_TRUE(m.borrowed());
  EXPECT_EQ(t.current_bytes(), base);  // borrowed memory is not tracked here
  m.At(1, 2) = 7.0f;
  EXPECT_EQ(buffer[5], 7.0f);  // writes land in the external buffer
  buffer[0] = 3.0f;
  EXPECT_EQ(m.At(0, 0), 3.0f);
}

TEST(MatrixTest, CopyOfBorrowedIsOwnedAndDeep) {
  std::vector<float> buffer = {1, 2, 3, 4};
  Matrix borrowed = Matrix::Borrowed(buffer.data(), 2, 2);
  Matrix copy = borrowed;
  EXPECT_FALSE(copy.borrowed());
  copy.At(0, 0) = 9.0f;
  EXPECT_EQ(buffer[0], 1.0f);
  EXPECT_EQ(borrowed.At(0, 0), 1.0f);
}

TEST(MatrixTest, MoveOfBorrowedKeepsPointer) {
  std::vector<float> buffer = {1, 2, 3, 4};
  Matrix borrowed = Matrix::Borrowed(buffer.data(), 2, 2);
  Matrix moved = std::move(borrowed);
  EXPECT_TRUE(moved.borrowed());
  EXPECT_EQ(moved.data(), buffer.data());
  EXPECT_TRUE(borrowed.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(MatMulTransposedTest, SmallKnownProduct) {
  // A (2x3), B (2x3): C = A * B^T is 2x2.
  Matrix a = Matrix::FromRows({{1, 2, 3}, {0, 1, 0}});
  Matrix b = Matrix::FromRows({{1, 0, 0}, {1, 1, 1}});
  Result<Matrix> c = MatMulTransposed(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_FLOAT_EQ(c->At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(c->At(0, 1), 6.0f);
  EXPECT_FLOAT_EQ(c->At(1, 0), 0.0f);
  EXPECT_FLOAT_EQ(c->At(1, 1), 1.0f);
}

TEST(MatMulTransposedTest, DimensionMismatchFails) {
  Matrix a(2, 3);
  Matrix b(2, 4);
  EXPECT_FALSE(MatMulTransposed(a, b).ok());
}

TEST(MatMulTransposedTest, LargeMatchesNaive) {
  // Exercise the blocked path against a naive triple loop.
  const size_t n = 45, m = 37, d = 19;
  Matrix a(n, d);
  Matrix b(m, d);
  uint32_t x = 1;
  auto next = [&x]() {
    x = x * 1664525u + 1013904223u;
    return static_cast<float>(x % 17) - 8.0f;
  };
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < d; ++k) a.At(i, k) = next();
  }
  for (size_t j = 0; j < m; ++j) {
    for (size_t k = 0; k < d; ++k) b.At(j, k) = next();
  }
  Result<Matrix> c = MatMulTransposed(a, b);
  ASSERT_TRUE(c.ok());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      float acc = 0.0f;
      for (size_t k = 0; k < d; ++k) acc += a.At(i, k) * b.At(j, k);
      ASSERT_NEAR(c->At(i, j), acc, 1e-3f);
    }
  }
}

TEST(L2NormalizeRowsTest, UnitNorms) {
  Matrix m = Matrix::FromRows({{3, 4}, {0, 0}, {1, 0}});
  L2NormalizeRows(&m);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.6f);
  EXPECT_FLOAT_EQ(m.At(0, 1), 0.8f);
  // Zero rows stay zero.
  EXPECT_EQ(m.At(1, 0), 0.0f);
  EXPECT_EQ(m.At(1, 1), 0.0f);
  EXPECT_FLOAT_EQ(m.At(2, 0), 1.0f);
}

}  // namespace
}  // namespace entmatcher
