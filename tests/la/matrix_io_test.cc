#include "la/matrix_io.h"

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <limits>

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

class MatrixIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("entmatcher_mio_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(MatrixIoTest, TsvRoundTrip) {
  Matrix m = Matrix::FromRows({{1.5f, -2.25f}, {0.0f, 1e-3f}});
  ASSERT_TRUE(WriteMatrixTsv(m, Path("m.tsv")).ok());
  auto loaded = ReadMatrixTsv(Path("m.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ApproxEquals(m, 1e-6f));
}

TEST_F(MatrixIoTest, BinaryRoundTripIsExact) {
  Matrix m(37, 19);
  for (size_t r = 0; r < m.rows(); ++r) {
    for (size_t c = 0; c < m.cols(); ++c) {
      m.At(r, c) = static_cast<float>(r * 100 + c) * 0.37f;
    }
  }
  ASSERT_TRUE(WriteMatrixBinary(m, Path("m.emat")).ok());
  auto loaded = ReadMatrixBinary(Path("m.emat"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->ApproxEquals(m, 0.0f));
}

TEST_F(MatrixIoTest, TsvRejectsRaggedRows) {
  std::ofstream(Path("bad.tsv")) << "1\t2\n3\n";
  EXPECT_FALSE(ReadMatrixTsv(Path("bad.tsv")).ok());
}

TEST_F(MatrixIoTest, TsvRejectsNonNumeric) {
  std::ofstream(Path("bad2.tsv")) << "1\tx\n";
  EXPECT_FALSE(ReadMatrixTsv(Path("bad2.tsv")).ok());
}

TEST_F(MatrixIoTest, EmptyTsvIsEmptyMatrix) {
  std::ofstream(Path("empty.tsv")) << "";
  auto loaded = ReadMatrixTsv(Path("empty.tsv"));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(MatrixIoTest, BinaryRejectsWrongMagic) {
  std::ofstream(Path("bad.emat"), std::ios::binary) << "NOPE1234567890123456";
  EXPECT_FALSE(ReadMatrixBinary(Path("bad.emat")).ok());
}

TEST_F(MatrixIoTest, BinaryRejectsTruncated) {
  Matrix m(4, 4);
  ASSERT_TRUE(WriteMatrixBinary(m, Path("t.emat")).ok());
  // Truncate the file.
  std::filesystem::resize_file(Path("t.emat"), 24);
  EXPECT_FALSE(ReadMatrixBinary(Path("t.emat")).ok());
}

TEST_F(MatrixIoTest, MissingFilesFail) {
  EXPECT_FALSE(ReadMatrixTsv(Path("nope.tsv")).ok());
  EXPECT_FALSE(ReadMatrixBinary(Path("nope.emat")).ok());
}

// Non-finite embeddings would silently poison every downstream similarity
// (NaN compares false, so a poisoned row "matches" nothing or everything
// depending on the kernel) — both readers must refuse them at the door and
// say exactly where the bad value sits.
TEST_F(MatrixIoTest, TsvRejectsNonFiniteNamingRowAndColumn) {
  std::ofstream(Path("nan.tsv")) << "1\t2\n3\tnan\n";
  Result<Matrix> loaded = ReadMatrixTsv(Path("nan.tsv"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("row 1, column 1"),
            std::string::npos)
      << loaded.status().ToString();

  std::ofstream(Path("inf.tsv")) << "inf\t2\n";
  Result<Matrix> inf_loaded = ReadMatrixTsv(Path("inf.tsv"));
  ASSERT_FALSE(inf_loaded.ok());
  EXPECT_EQ(inf_loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(inf_loaded.status().message().find("row 0, column 0"),
            std::string::npos);
}

TEST_F(MatrixIoTest, BinaryRejectsNonFiniteNamingRowAndColumn) {
  Matrix m(3, 2);
  m.At(2, 1) = std::numeric_limits<float>::quiet_NaN();
  ASSERT_TRUE(WriteMatrixBinary(m, Path("nan.emat")).ok());
  Result<Matrix> loaded = ReadMatrixBinary(Path("nan.emat"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("row 2, column 1"),
            std::string::npos)
      << loaded.status().ToString();
}

TEST_F(MatrixIoTest, ValidateMatrixFiniteAcceptsCleanMatrix) {
  Matrix m = Matrix::FromRows({{1.0f, -2.0f}, {0.0f, 3.5f}});
  EXPECT_TRUE(ValidateMatrixFinite(m, "test").ok());
}

}  // namespace
}  // namespace entmatcher
