#include "la/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entmatcher {
namespace {

TEST(SimilarityTest, MetricNames) {
  EXPECT_STREQ(SimilarityMetricName(SimilarityMetric::kCosine), "cosine");
  EXPECT_STREQ(SimilarityMetricName(SimilarityMetric::kNegEuclidean),
               "euclidean");
  EXPECT_STREQ(SimilarityMetricName(SimilarityMetric::kNegManhattan),
               "manhattan");
}

TEST(SimilarityTest, CosineKnownValues) {
  Matrix src = Matrix::FromRows({{1, 0}, {1, 1}});
  Matrix tgt = Matrix::FromRows({{2, 0}, {0, 3}});
  Result<Matrix> s = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->At(0, 0), 1.0f, 1e-6);                      // parallel
  EXPECT_NEAR(s->At(0, 1), 0.0f, 1e-6);                      // orthogonal
  EXPECT_NEAR(s->At(1, 0), 1.0f / std::sqrt(2.0f), 1e-6);
  EXPECT_NEAR(s->At(1, 1), 1.0f / std::sqrt(2.0f), 1e-6);
}

TEST(SimilarityTest, CosineInvariantToInputScale) {
  Matrix src = Matrix::FromRows({{0.3f, -0.7f, 0.1f}});
  Matrix tgt = Matrix::FromRows({{1.0f, 2.0f, -0.5f}});
  Matrix src_scaled = src;
  src_scaled.Scale(42.0f);
  Result<Matrix> a = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  Result<Matrix> b =
      ComputeSimilarity(src_scaled, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NEAR(a->At(0, 0), b->At(0, 0), 1e-6);
}

TEST(SimilarityTest, CosineRangeProperty) {
  Rng rng(5);
  Matrix src(20, 8);
  Matrix tgt(15, 8);
  for (size_t i = 0; i < src.rows(); ++i) {
    for (float& v : src.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  for (size_t i = 0; i < tgt.rows(); ++i) {
    for (float& v : tgt.Row(i)) v = static_cast<float>(rng.NextGaussian());
  }
  Result<Matrix> s = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < s->rows(); ++i) {
    for (float v : s->Row(i)) {
      ASSERT_GE(v, -1.0f - 1e-5f);
      ASSERT_LE(v, 1.0f + 1e-5f);
    }
  }
}

TEST(SimilarityTest, NegEuclideanKnownValues) {
  Matrix src = Matrix::FromRows({{0, 0}});
  Matrix tgt = Matrix::FromRows({{3, 4}, {0, 0}});
  Result<Matrix> s =
      ComputeSimilarity(src, tgt, SimilarityMetric::kNegEuclidean);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->At(0, 0), -5.0f, 1e-5);
  EXPECT_NEAR(s->At(0, 1), 0.0f, 1e-5);
}

TEST(SimilarityTest, NegManhattanKnownValues) {
  Matrix src = Matrix::FromRows({{1, 2}});
  Matrix tgt = Matrix::FromRows({{4, 0}, {1, 2}});
  Result<Matrix> s =
      ComputeSimilarity(src, tgt, SimilarityMetric::kNegManhattan);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s->At(0, 0), -5.0f, 1e-6);
  EXPECT_NEAR(s->At(0, 1), 0.0f, 1e-6);
}

TEST(SimilarityTest, IdenticalVectorsMaximizeEveryMetric) {
  Matrix src = Matrix::FromRows({{0.5f, -1.5f, 2.0f}});
  Matrix tgt = Matrix::FromRows({{0.5f, -1.5f, 2.0f}, {2.0f, 0.5f, -1.5f}});
  for (SimilarityMetric metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean,
        SimilarityMetric::kNegManhattan}) {
    Result<Matrix> s = ComputeSimilarity(src, tgt, metric);
    ASSERT_TRUE(s.ok());
    EXPECT_GE(s->At(0, 0), s->At(0, 1)) << SimilarityMetricName(metric);
  }
}

TEST(SimilarityTest, RejectsEmptyAndMismatchedInputs) {
  Matrix empty;
  Matrix m(2, 3);
  EXPECT_FALSE(ComputeSimilarity(empty, m, SimilarityMetric::kCosine).ok());
  EXPECT_FALSE(ComputeSimilarity(m, empty, SimilarityMetric::kCosine).ok());
  Matrix wrong(2, 4);
  EXPECT_FALSE(ComputeSimilarity(m, wrong, SimilarityMetric::kCosine).ok());
}

}  // namespace
}  // namespace entmatcher
