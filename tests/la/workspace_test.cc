#include "la/workspace.h"

#include <gtest/gtest.h>

#include "common/memory_tracker.h"

namespace entmatcher {
namespace {

TEST(WorkspaceTest, ReusesReleasedSlab) {
  Workspace ws;
  Result<Matrix> first = ws.AcquireMatrix(8, 8);
  ASSERT_TRUE(first.ok());
  const float* ptr = first->data();
  ws.Release(*first);
  Result<Matrix> second = ws.AcquireMatrix(8, 8);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->data(), ptr);  // same slab came back from the pool
  EXPECT_EQ(ws.capacity_bytes(), 8 * 8 * sizeof(float));
  ws.Release(*second);
}

TEST(WorkspaceTest, BestFitPrefersSmallestSufficientSlab) {
  Workspace ws;
  Result<Matrix> big = ws.AcquireMatrix(16, 16);
  Result<Matrix> small = ws.AcquireMatrix(4, 4);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  const float* small_ptr = small->data();
  ws.Release(*big);
  ws.Release(*small);
  // A 4x4 request fits both slabs; best-fit must pick the 4x4 one.
  Result<Matrix> again = ws.AcquireMatrix(4, 4);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data(), small_ptr);
  ws.Release(*again);
}

TEST(WorkspaceTest, ReacquiredMatrixIsZeroFilled) {
  Workspace ws;
  Result<Matrix> m = ws.AcquireMatrix(3, 3);
  ASSERT_TRUE(m.ok());
  m->Fill(42.0f);
  ws.Release(*m);
  Result<Matrix> again = ws.AcquireMatrix(3, 3);
  ASSERT_TRUE(again.ok());
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_EQ(again->At(r, c), 0.0f);
  }
  ws.Release(*again);
}

TEST(WorkspaceTest, BudgetRejectsOversizedAcquire) {
  Workspace ws(/*budget_bytes=*/100);
  EXPECT_TRUE(ws.CheckBudget(100).ok());
  EXPECT_FALSE(ws.CheckBudget(101).ok());
  Result<Matrix> too_big = ws.AcquireMatrix(10, 10);  // 400 bytes
  ASSERT_FALSE(too_big.ok());
  EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ws.in_use_bytes(), 0u);  // failed acquire leaves no residue

  Result<Matrix> fits = ws.AcquireMatrix(5, 5);  // 100 bytes
  ASSERT_TRUE(fits.ok());
  EXPECT_FALSE(ws.CheckBudget(1).ok());  // budget is now fully committed
  Result<std::span<uint32_t>> over = ws.AcquireIndices(1);
  EXPECT_FALSE(over.ok());
  ws.Release(*fits);
  EXPECT_TRUE(ws.CheckBudget(100).ok());
}

TEST(WorkspaceTest, HighWaterTracksAndResets) {
  Workspace ws;
  Result<Matrix> a = ws.AcquireMatrix(4, 4);  // 64 bytes
  Result<Matrix> b = ws.AcquireMatrix(2, 2);  // 16 bytes
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(ws.in_use_bytes(), 80u);
  EXPECT_EQ(ws.high_water_bytes(), 80u);
  ws.Release(*b);
  EXPECT_EQ(ws.in_use_bytes(), 64u);
  EXPECT_EQ(ws.high_water_bytes(), 80u);  // high water sticks
  ws.ResetHighWater();
  EXPECT_EQ(ws.high_water_bytes(), 64u);  // resets to current in-use
  ws.Release(*a);
}

TEST(WorkspaceTest, MirrorsLogicalBytesIntoMemoryTracker) {
  MemoryTracker& tracker = MemoryTracker::Global();
  Workspace ws;
  const size_t base = tracker.current_bytes();
  Result<Matrix> m = ws.AcquireMatrix(10, 10);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(tracker.current_bytes(), base + 10 * 10 * sizeof(float));
  ws.Release(*m);
  EXPECT_EQ(tracker.current_bytes(), base);

  // Reuse charges the tracker exactly like a fresh allocation: the tracked
  // peak of a warm query equals the tracked peak of a cold one.
  tracker.ResetPeak();
  const size_t peak_base = tracker.peak_bytes();
  Result<Matrix> warm = ws.AcquireMatrix(10, 10);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(tracker.peak_bytes(), peak_base + 10 * 10 * sizeof(float));
  ws.Release(*warm);
}

TEST(WorkspaceTest, TrimFreesPooledSlabsOnly) {
  Workspace ws;
  Result<Matrix> kept = ws.AcquireMatrix(4, 4);
  Result<Matrix> freed = ws.AcquireMatrix(8, 8);
  ASSERT_TRUE(kept.ok());
  ASSERT_TRUE(freed.ok());
  ws.Release(*freed);
  ws.Trim();
  EXPECT_EQ(ws.capacity_bytes(), 4 * 4 * sizeof(float));
  // The still-leased matrix survives trimming.
  kept->At(3, 3) = 1.0f;
  EXPECT_EQ(kept->At(3, 3), 1.0f);
  ws.Release(*kept);
}

TEST(WorkspaceTest, AcquireIndicesZeroed) {
  Workspace ws;
  Result<std::span<uint32_t>> idx = ws.AcquireIndices(16);
  ASSERT_TRUE(idx.ok());
  ASSERT_EQ(idx->size(), 16u);
  for (uint32_t v : *idx) EXPECT_EQ(v, 0u);
  (*idx)[3] = 7;
  ws.Release(*idx);
  EXPECT_EQ(ws.in_use_bytes(), 0u);
}

TEST(ScratchMatrixTest, NullWorkspaceFallsBackToOwned) {
  Result<ScratchMatrix> scratch = ScratchMatrix::Acquire(nullptr, 3, 4);
  ASSERT_TRUE(scratch.ok());
  EXPECT_EQ(scratch->get().rows(), 3u);
  EXPECT_EQ(scratch->get().cols(), 4u);
  EXPECT_FALSE(scratch->get().borrowed());
  scratch->get().At(2, 3) = 5.0f;
  EXPECT_EQ(scratch->get().At(2, 3), 5.0f);
}

TEST(ScratchMatrixTest, ReleasesLeaseOnDestruction) {
  Workspace ws;
  {
    Result<ScratchMatrix> scratch = ScratchMatrix::Acquire(&ws, 5, 5);
    ASSERT_TRUE(scratch.ok());
    EXPECT_TRUE(scratch->get().borrowed());
    EXPECT_EQ(ws.in_use_bytes(), 5 * 5 * sizeof(float));
  }
  EXPECT_EQ(ws.in_use_bytes(), 0u);
  EXPECT_EQ(ws.capacity_bytes(), 5 * 5 * sizeof(float));
}

TEST(ScratchIndicesTest, NullAndWorkspacePaths) {
  Result<ScratchIndices> owned = ScratchIndices::Acquire(nullptr, 8);
  ASSERT_TRUE(owned.ok());
  EXPECT_EQ(owned->get().size(), 8u);
  owned->get()[7] = 3;
  EXPECT_EQ(owned->get()[7], 3u);

  Workspace ws;
  {
    Result<ScratchIndices> leased = ScratchIndices::Acquire(&ws, 8);
    ASSERT_TRUE(leased.ok());
    EXPECT_EQ(ws.in_use_bytes(), 8 * sizeof(uint32_t));
  }
  EXPECT_EQ(ws.in_use_bytes(), 0u);
}

}  // namespace
}  // namespace entmatcher
