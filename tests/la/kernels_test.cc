#include "la/kernels/dispatch.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/quantized_candidates.h"
#include "la/kernels/quantized.h"
#include "la/matrix.h"
#include "la/similarity.h"
#include "la/topk.h"
#include "matching/engine.h"
#include "matching/pipeline.h"

namespace entmatcher {
namespace {

// The kernel-tier contract (DESIGN.md "Kernel tiers & mixed precision"):
//  - the scalar tier is the bit-exactness oracle (the pre-SIMD loops kept
//    verbatim);
//  - elementwise ops, argmax/max, the mask filters, RowTopKIndices,
//    ColTopKMean, and dot_i8 are bit-identical to scalar at EVERY tier;
//  - reassociating reductions (dot, squared_norm, sum, manhattan, dot_bf16,
//    RowTopKMean) agree within 1e-5 per value;
//  - each tier's matmul_tile cell replays that tier's `dot` exactly, which is
//    what makes the sparse rerank bit-identical to dense cells at any tier.
//
// Adversarial lengths straddle every vector width in play: 8 (AVX2), 16
// (AVX-512), 64 (mask chunks), each +/- the remainders 1..width-1.
const size_t kLengths[] = {1,  2,  3,  5,  7,  8,  9,  15, 16, 17,
                           23, 31, 32, 33, 48, 63, 64, 65, 67, 130};

std::vector<KernelTier> AvailableVectorTiers() {
  std::vector<KernelTier> tiers;
  for (KernelTier tier :
       {KernelTier::kAvx2, KernelTier::kAvx512, KernelTier::kNeon}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

std::vector<float> RandomVec(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.NextGaussian());
  return v;
}

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

// Well-separated pair: target rows are cluster centers, source rows are the
// same centers lightly perturbed — assignments are insensitive to <=1e-5
// score wiggle, so every tier must produce identical decisions.
void ClusteredPair(size_t n, size_t d, uint64_t seed, Matrix* src,
                   Matrix* tgt) {
  *tgt = RandomMatrix(n, d, seed);
  *src = Matrix(n, d);
  Rng rng(seed + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      src->At(r, c) =
          tgt->At(r, c) + 0.01f * static_cast<float>(rng.NextGaussian());
    }
  }
}

bool BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.data(), b.data(), a.ByteSize()) == 0;
}

// Restores the entry tier and thread count around every test, so a failing
// assertion cannot leak a forced tier into the rest of the binary.
class KernelsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = GetNumThreads();
    previous_tier_ = ActiveKernelTier();
  }
  void TearDown() override {
    SetNumThreads(previous_threads_);
    ASSERT_TRUE(SetKernelTier(previous_tier_).ok());
  }

 private:
  size_t previous_threads_;
  KernelTier previous_tier_;
};

TEST_F(KernelsTest, DispatchSurface) {
  EXPECT_TRUE(KernelTierAvailable(KernelTier::kScalar));
  EXPECT_EQ(ActiveKernels().tier, ActiveKernelTier());
  EXPECT_STREQ(KernelTierName(KernelTier::kScalar), "scalar");
  ASSERT_TRUE(ParseKernelTier("avx512").ok());
  EXPECT_EQ(*ParseKernelTier("avx512"), KernelTier::kAvx512);
  EXPECT_FALSE(ParseKernelTier("auto").ok());  // resolved by callers
  EXPECT_FALSE(ParseKernelTier("sse9").ok());
  // The best tier is always available (it is how auto resolves).
  EXPECT_TRUE(KernelTierAvailable(BestAvailableKernelTier()));
  ASSERT_TRUE(SetKernelTier(KernelTier::kScalar).ok());
  EXPECT_EQ(ActiveKernelTier(), KernelTier::kScalar);
  const std::string json = KernelStatusJson();
  EXPECT_NE(json.find("\"tier\":\"scalar\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"available\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cpu\""), std::string::npos) << json;
}

TEST_F(KernelsTest, ElementwiseOpsBitIdenticalToScalar) {
  const KernelOps& scalar = *GetScalarKernels();
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    const KernelOps& ops = ActiveKernels();
    for (size_t d : kLengths) {
      SCOPED_TRACE(std::string(ops.name) + " d=" + std::to_string(d));
      const std::vector<float> a = RandomVec(d, 100 + d);
      const std::vector<float> b = RandomVec(d, 200 + d);

      std::vector<float> va = a, vb = a;
      scalar.scale(va.data(), d, 1.7f);
      ops.scale(vb.data(), d, 1.7f);
      EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), d * sizeof(float)));

      std::vector<float> ca(d), cb(d);
      scalar.scale_copy(a.data(), ca.data(), d, -0.3f);
      ops.scale_copy(a.data(), cb.data(), d, -0.3f);
      EXPECT_EQ(0, std::memcmp(ca.data(), cb.data(), d * sizeof(float)));

      va = a;
      vb = a;
      scalar.cosine_scale_row(va.data(), b.data(), d, 0.77f);
      ops.cosine_scale_row(vb.data(), b.data(), d, 0.77f);
      EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), d * sizeof(float)));

      va = a;
      vb = a;
      scalar.accumulate_max(va.data(), b.data(), d);
      ops.accumulate_max(vb.data(), b.data(), d);
      EXPECT_EQ(0, std::memcmp(va.data(), vb.data(), d * sizeof(float)));

      std::vector<double> da(d, 0.25), db(d, 0.25);
      scalar.accumulate_cols(da.data(), a.data(), d);
      ops.accumulate_cols(db.data(), a.data(), d);
      EXPECT_EQ(0, std::memcmp(da.data(), db.data(), d * sizeof(double)));

      const std::vector<double> inv(da.begin(), da.end());
      scalar.mul_cols(ca.data(), a.data(), inv.data(), d);
      ops.mul_cols(cb.data(), a.data(), inv.data(), d);
      EXPECT_EQ(0, std::memcmp(ca.data(), cb.data(), d * sizeof(float)));

      EXPECT_EQ(scalar.max(a.data(), d), ops.max(a.data(), d));
      EXPECT_EQ(scalar.argmax(a.data(), d), ops.argmax(a.data(), d));
      if (d <= 64) {
        EXPECT_EQ(scalar.mask_gt(a.data(), b.data(), d),
                  ops.mask_gt(a.data(), b.data(), d));
        EXPECT_EQ(scalar.mask_gt_scalar(a.data(), 0.1f, d),
                  ops.mask_gt_scalar(a.data(), 0.1f, d));
      }
    }
  }
}

TEST_F(KernelsTest, NanRejectionMatchesScalarStrictCompares) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const KernelOps& scalar = *GetScalarKernels();
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    const KernelOps& ops = ActiveKernels();
    for (size_t d : {size_t(3), size_t(17), size_t(64), size_t(65)}) {
      for (size_t where : {size_t(0), d / 2, d - 1}) {
        SCOPED_TRACE(std::string(ops.name) + " d=" + std::to_string(d) +
                     " nan@" + std::to_string(where));
        std::vector<float> v = RandomVec(d, 300 + d);
        v[where] = nan;
        // Scalar strict `>` never selects a NaN (and an all-NaN prefix keeps
        // the first element, NaN or not); every tier must agree bitwise.
        const float smax = scalar.max(v.data(), d);
        const float vmax = ops.max(v.data(), d);
        EXPECT_TRUE((std::isnan(smax) && std::isnan(vmax)) || smax == vmax);
        EXPECT_EQ(scalar.argmax(v.data(), d), ops.argmax(v.data(), d));

        std::vector<float> acc_s = RandomVec(d, 400 + d), acc_v = acc_s;
        scalar.accumulate_max(acc_s.data(), v.data(), d);
        ops.accumulate_max(acc_v.data(), v.data(), d);
        EXPECT_EQ(0,
                  std::memcmp(acc_s.data(), acc_v.data(), d * sizeof(float)));
        if (d <= 64) {
          std::vector<float> thr = RandomVec(d, 500 + d);
          EXPECT_EQ(scalar.mask_gt(v.data(), thr.data(), d),
                    ops.mask_gt(v.data(), thr.data(), d));
          EXPECT_EQ(scalar.mask_gt_scalar(v.data(), 0.0f, d),
                    ops.mask_gt_scalar(v.data(), 0.0f, d));
        }
      }
    }
  }
}

TEST_F(KernelsTest, ReductionsWithinToleranceOfScalar) {
  const KernelOps& scalar = *GetScalarKernels();
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    const KernelOps& ops = ActiveKernels();
    for (size_t d : kLengths) {
      SCOPED_TRACE(std::string(ops.name) + " d=" + std::to_string(d));
      const std::vector<float> a = RandomVec(d, 600 + d);
      const std::vector<float> b = RandomVec(d, 700 + d);
      // Reassociated accumulation: tolerance is relative to the magnitude
      // (an absolute 1e-5 is unreachable for sums of ~d unit-scale terms).
      const auto near = [](float want, float got) {
        EXPECT_NEAR(want, got, 1e-5 * std::max(1.0, std::abs(double{want})));
      };
      near(scalar.dot(a.data(), b.data(), d), ops.dot(a.data(), b.data(), d));
      near(scalar.squared_norm(a.data(), d), ops.squared_norm(a.data(), d));
      near(scalar.sum(a.data(), d), ops.sum(a.data(), d));
      near(scalar.manhattan(a.data(), b.data(), d),
           ops.manhattan(a.data(), b.data(), d));
    }
  }
}

TEST_F(KernelsTest, MatmulTileCellsReplayDotExactlyPerTier) {
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    const KernelOps& ops = ActiveKernels();
    for (size_t d : {size_t(1), size_t(7), size_t(16), size_t(33),
                     size_t(65)}) {
      SCOPED_TRACE(std::string(ops.name) + " d=" + std::to_string(d));
      const Matrix a = RandomMatrix(5, d, 800 + d);
      const Matrix b = RandomMatrix(7, d, 900 + d);
      Matrix c(5, 7);
      ops.matmul_tile(a.data(), a.cols(), a.rows(), b.data(), b.cols(),
                      b.rows(), d, c.data(), c.cols());
      for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < b.rows(); ++j) {
          EXPECT_EQ(c.At(i, j), ops.dot(a.Row(i).data(), b.Row(j).data(), d))
              << i << "," << j;
        }
      }
    }
  }
}

TEST_F(KernelsTest, TopKOpsAgreeWithScalarTier) {
  // Duplicate values in the data exercise the tie rules (lowest index wins).
  Matrix scores = RandomMatrix(19, 67, 41);
  for (size_t r = 0; r < scores.rows(); r += 3) {
    for (size_t c = 1; c < scores.cols(); c += 5) {
      scores.At(r, c) = scores.At(r, c - 1);
    }
  }
  ASSERT_TRUE(SetKernelTier(KernelTier::kScalar).ok());
  std::vector<std::vector<uint32_t>> want_idx;
  std::vector<std::vector<float>> want_colmean, want_rowmean;
  std::vector<uint32_t> want_argmax = RowArgmax(scores);
  std::vector<float> want_rowmax = RowMax(scores);
  std::vector<float> want_colmax = ColMax(scores);
  for (size_t k : {size_t(1), size_t(2), size_t(7), size_t(64), size_t(67),
                   size_t(100)}) {
    want_idx.push_back(RowTopKIndices(scores, k));
    want_colmean.push_back(ColTopKMean(scores, k));
    want_rowmean.push_back(RowTopKMean(scores, k));
  }
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    SCOPED_TRACE(KernelTierName(tier));
    EXPECT_EQ(RowArgmax(scores), want_argmax);
    EXPECT_EQ(RowMax(scores), want_rowmax);
    EXPECT_EQ(ColMax(scores), want_colmax);
    size_t ki = 0;
    for (size_t k : {size_t(1), size_t(2), size_t(7), size_t(64), size_t(67),
                     size_t(100)}) {
      SCOPED_TRACE("k=" + std::to_string(k));
      // Selection order is preserved exactly: indices and the column means
      // are bit-identical, only the row-mean summation order may differ.
      EXPECT_EQ(RowTopKIndices(scores, k), want_idx[ki]);
      EXPECT_EQ(ColTopKMean(scores, k), want_colmean[ki]);
      const std::vector<float> got = RowTopKMean(scores, k);
      ASSERT_EQ(got.size(), want_rowmean[ki].size());
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i], want_rowmean[ki][i], 1e-5) << "row " << i;
      }
      ++ki;
    }
  }
}

TEST_F(KernelsTest, SimilarityWithinTolerancePairExactPerTier) {
  const Matrix src = RandomMatrix(13, 33, 51);
  const Matrix tgt = RandomMatrix(17, 33, 52);
  for (SimilarityMetric metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean,
        SimilarityMetric::kNegManhattan}) {
    ASSERT_TRUE(SetKernelTier(KernelTier::kScalar).ok());
    Result<Matrix> want = ComputeSimilarity(src, tgt, metric);
    ASSERT_TRUE(want.ok());
    for (KernelTier tier : AvailableVectorTiers()) {
      ASSERT_TRUE(SetKernelTier(tier).ok());
      SCOPED_TRACE(std::string(KernelTierName(tier)) + " " +
                   SimilarityMetricName(metric));
      Result<Matrix> got = ComputeSimilarity(src, tgt, metric);
      ASSERT_TRUE(got.ok());
      const SimilarityCache cache = BuildSimilarityCache(src, tgt, metric);
      for (size_t i = 0; i < want->rows(); ++i) {
        for (size_t j = 0; j < want->cols(); ++j) {
          // Relative bound: manhattan cells sum d ~unit-scale terms, so an
          // absolute 1e-5 is below the reassociation noise floor.
          EXPECT_NEAR(want->At(i, j), got->At(i, j),
                      1e-5 * std::max(1.0, std::abs(double{want->At(i, j)})))
              << i << "," << j;
        }
      }
      // The sparse-rerank identity: PairSimilarity must reproduce THIS
      // tier's dense cells bit-for-bit (cosine/euclidean ride on `dot`
      // replayed by matmul_tile; manhattan is the same kernel both ways).
      for (size_t i = 0; i < src.rows(); i += 5) {
        for (size_t j = 0; j < tgt.rows(); j += 3) {
          EXPECT_EQ(got->At(i, j),
                    PairSimilarity(src, tgt, i, j, metric, cache))
              << i << "," << j;
        }
      }
    }
  }
}

// The cosine hoist satellite: the scalar tier must still be bit-identical to
// the pre-dispatch algorithm (dot products scaled by si * inv_tgt[j] row by
// row), re-derived here from first principles.
TEST_F(KernelsTest, ScalarCosineBitIdenticalToLegacyFormulation) {
  ASSERT_TRUE(SetKernelTier(KernelTier::kScalar).ok());
  const Matrix src = RandomMatrix(9, 19, 61);
  const Matrix tgt = RandomMatrix(11, 19, 62);
  Result<Matrix> got =
      ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(got.ok());
  const SimilarityCache cache =
      BuildSimilarityCache(src, tgt, SimilarityMetric::kCosine);
  Result<Matrix> reference = MatMulTransposed(src, tgt);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < reference->rows(); ++i) {
    const float si = cache.inv_source_norms[i];
    float* row = reference->Row(i).data();
    for (size_t j = 0; j < reference->cols(); ++j) {
      row[j] *= si * cache.inv_target_norms[j];
    }
  }
  EXPECT_TRUE(BitIdentical(*reference, *got));
}

TEST_F(KernelsTest, PresetAssignmentsIdenticalAcrossTiersAndThreads) {
  Matrix src, tgt;
  ClusteredPair(48, 24, 71, &src, &tgt);
  std::vector<MatchOptions> presets;
  for (AlgorithmPreset p :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kRinfWr, AlgorithmPreset::kRinfPb,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian,
        AlgorithmPreset::kStableMatch}) {
    presets.push_back(MakePreset(p));
  }
  ASSERT_TRUE(SetKernelTier(KernelTier::kScalar).ok());
  std::vector<Assignment> want;
  std::vector<Matrix> want_scores;
  for (const MatchOptions& options : presets) {
    Result<Matrix> scores = ComputeScores(src, tgt, options);
    ASSERT_TRUE(scores.ok());
    want_scores.push_back(std::move(scores).value());
    Result<Assignment> assignment = MatchEmbeddings(src, tgt, options);
    ASSERT_TRUE(assignment.ok());
    want.push_back(std::move(assignment).value());
  }
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    for (size_t threads : {size_t(1), size_t(7)}) {
      SetNumThreads(threads);
      for (size_t p = 0; p < presets.size(); ++p) {
        SCOPED_TRACE(std::string(KernelTierName(tier)) + " preset " +
                     std::to_string(p) + " threads " +
                     std::to_string(threads));
        Result<Matrix> scores = ComputeScores(src, tgt, presets[p]);
        ASSERT_TRUE(scores.ok());
        for (size_t i = 0; i < scores->rows(); ++i) {
          for (size_t j = 0; j < scores->cols(); ++j) {
            ASSERT_NEAR(want_scores[p].At(i, j), scores->At(i, j), 1e-5)
                << i << "," << j;
          }
        }
        Result<Assignment> assignment = MatchEmbeddings(src, tgt, presets[p]);
        ASSERT_TRUE(assignment.ok());
        EXPECT_EQ(assignment->target_of_source, want[p].target_of_source);
      }
    }
  }
}

TEST_F(KernelsTest, QuantizedDotTracksFloatDot) {
  for (size_t d : {size_t(8), size_t(33), size_t(130)}) {
    const Matrix a = RandomMatrix(4, d, 81 + d);
    const Matrix b = RandomMatrix(4, d, 82 + d);
    for (ScorePrecision precision :
         {ScorePrecision::kBf16, ScorePrecision::kInt8}) {
      Result<QuantizedMatrix> qa = QuantizedMatrix::Create(a, precision);
      Result<QuantizedMatrix> qb = QuantizedMatrix::Create(b, precision);
      ASSERT_TRUE(qa.ok() && qb.ok());
      for (size_t i = 0; i < a.rows(); ++i) {
        const float exact =
            ActiveKernels().dot(a.Row(i).data(), b.Row(i).data(), d);
        const float approx = QuantizedDot(*qa, i, *qb, i);
        // Relative error bounds: bf16 keeps 8 mantissa bits per operand;
        // int8 has ~1/254 quantization noise per element, sqrt(d)-scaled
        // after cancellation. Loose engineering bounds, not tight analysis.
        const double scale =
            std::sqrt(ActiveKernels().squared_norm(a.Row(i).data(), d) *
                      ActiveKernels().squared_norm(b.Row(i).data(), d));
        const double tolerance =
            (precision == ScorePrecision::kBf16 ? 0.02 : 0.06) * scale;
        EXPECT_NEAR(exact, approx, tolerance)
            << ScorePrecisionName(precision) << " d=" << d << " row " << i;
      }
    }
  }
  EXPECT_FALSE(QuantizedMatrix::Create(RandomMatrix(2, 2, 1),
                                       ScorePrecision::kFloat32)
                   .ok());
  EXPECT_FALSE(QuantizedMatrix::Create(Matrix(), ScorePrecision::kBf16).ok());
}

// Int8 dots are integer arithmetic — bit-identical across every tier.
TEST_F(KernelsTest, Int8DotBitIdenticalAcrossTiers) {
  const Matrix a = RandomMatrix(3, 67, 91);
  Result<QuantizedMatrix> qa = QuantizedMatrix::Create(a, ScorePrecision::kInt8);
  Result<QuantizedMatrix> qb = QuantizedMatrix::Create(a, ScorePrecision::kBf16);
  ASSERT_TRUE(qa.ok() && qb.ok());
  const KernelOps& scalar = *GetScalarKernels();
  for (KernelTier tier : AvailableVectorTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    const KernelOps& ops = ActiveKernels();
    for (size_t d : kLengths) {
      if (d > a.cols()) continue;
      // Integer accumulation has one exact answer: bit-identical across
      // tiers, not merely close.
      EXPECT_EQ(scalar.dot_i8(qa->I8Row(0), qa->I8Row(1), d),
                ops.dot_i8(qa->I8Row(0), qa->I8Row(1), d))
          << ops.name << " d=" << d;
      const float want = scalar.dot_bf16(qb->Bf16Row(0), qb->Bf16Row(1), d);
      EXPECT_NEAR(want, ops.dot_bf16(qb->Bf16Row(0), qb->Bf16Row(1), d),
                  1e-5 * std::max(1.0, std::abs(double{want})))
          << ops.name << " d=" << d;
    }
  }
}

TEST_F(KernelsTest, QuantizedCandidatesExactRerankAndRecall) {
  Matrix src, tgt;
  ClusteredPair(64, 32, 97, &src, &tgt);
  const size_t c = 8;
  std::vector<KernelTier> tiers = AvailableVectorTiers();
  tiers.insert(tiers.begin(), KernelTier::kScalar);
  for (KernelTier tier : tiers) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    for (SimilarityMetric metric :
         {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean}) {
    // Reference scores and the exact top-c are computed at the SAME tier as
    // the quantized fill: the rerank identity is a per-tier contract.
    const SimilarityCache cache = BuildSimilarityCache(src, tgt, metric);
    Result<Matrix> dense = ComputeSimilarity(src, tgt, metric);
    ASSERT_TRUE(dense.ok());
    const std::vector<uint32_t> exact_topc = RowTopKIndices(*dense, c);
    for (ScorePrecision precision :
         {ScorePrecision::kBf16, ScorePrecision::kInt8}) {
      SCOPED_TRACE(std::string(KernelTierName(tier)) + " " +
                   SimilarityMetricName(metric) + " " +
                   ScorePrecisionName(precision));
      Result<QuantizedMatrix> qs = QuantizedMatrix::Create(src, precision);
      Result<QuantizedMatrix> qt = QuantizedMatrix::Create(tgt, precision);
      ASSERT_TRUE(qs.ok() && qt.ok());
      SparseScores sparse =
          SparseScores::CreateOwned(src.rows(), tgt.rows(), src.rows() * c);
      ASSERT_TRUE(FillQuantizedSparseScores(src, tgt, *qs, *qt, metric, cache,
                                            c, nullptr, ProbeParams(),
                                            &sparse)
                      .ok());
      ASSERT_TRUE(sparse.Validate().ok());
      size_t hits = 0;
      for (size_t i = 0; i < src.rows(); ++i) {
        ASSERT_EQ(sparse.RowCols(i).size(), c);
        for (size_t e = 0; e < sparse.RowCols(i).size(); ++e) {
          const uint32_t j = sparse.RowCols(i)[e];
          // Exact-rerank contract: every emitted entry is the dense cell.
          EXPECT_EQ(sparse.RowValues(i)[e], dense->At(i, j))
              << "row " << i << " col " << j;
          for (size_t k = 0; k < c; ++k) {
            if (exact_topc[i * c + k] == j) {
              ++hits;
              break;
            }
          }
        }
      }
      const double recall = static_cast<double>(hits) /
                            static_cast<double>(src.rows() * c);
      EXPECT_GE(recall, 0.98) << "recall@" << c;
    }
    }
  }
}

TEST_F(KernelsTest, EngineQuantizedPathValidationAndDeterminism) {
  Matrix src, tgt;
  ClusteredPair(40, 16, 103, &src, &tgt);
  MatchOptions options;
  options.score_precision = ScorePrecision::kBf16;

  // num_candidates is mandatory on the quantized path.
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, MatchOptions());
  ASSERT_TRUE(engine.ok());
  Result<Assignment> missing_c = engine->Match(options);
  ASSERT_FALSE(missing_c.ok());
  EXPECT_EQ(missing_c.status().code(), StatusCode::kInvalidArgument);

  options.num_candidates = 6;
  MatchOptions manhattan = options;
  manhattan.metric = SimilarityMetric::kNegManhattan;
  Result<Assignment> no_surrogate = engine->Match(manhattan);
  ASSERT_FALSE(no_surrogate.ok());
  EXPECT_EQ(no_surrogate.status().code(), StatusCode::kInvalidArgument);

  MatchOptions sinkhorn = options;
  sinkhorn.transform = ScoreTransformKind::kSinkhorn;
  Result<Assignment> no_sparse_transform = engine->Match(sinkhorn);
  ASSERT_FALSE(no_sparse_transform.ok());
  EXPECT_EQ(no_sparse_transform.status().code(),
            StatusCode::kInvalidArgument);

  // Signatures: quantized and float queries never share a batch.
  EXPECT_FALSE(ScoreSignature::Of(options) == ScoreSignature::Of(MatchOptions()));
  MatchOptions int8 = options;
  int8.score_precision = ScorePrecision::kInt8;
  EXPECT_FALSE(ScoreSignature::Of(options) == ScoreSignature::Of(int8));

  // Clustered data: the quantized pre-rank keeps the true match in every
  // candidate list, so the decisions equal the dense pipeline's, and the
  // run is deterministic across thread counts.
  Result<Assignment> dense = MatchEmbeddings(src, tgt, MatchOptions());
  ASSERT_TRUE(dense.ok());
  for (ScorePrecision precision :
       {ScorePrecision::kBf16, ScorePrecision::kInt8}) {
    options.score_precision = precision;
    std::vector<int32_t> first;
    for (size_t threads : {size_t(1), size_t(7)}) {
      SetNumThreads(threads);
      Result<Assignment> sparse = engine->Match(options);
      ASSERT_TRUE(sparse.ok()) << ScorePrecisionName(precision);
      EXPECT_EQ(sparse->target_of_source, dense->target_of_source)
          << ScorePrecisionName(precision);
      if (first.empty()) {
        first = sparse->target_of_source;
      } else {
        EXPECT_EQ(first, sparse->target_of_source)
            << ScorePrecisionName(precision) << " not thread-deterministic";
      }
    }
  }
}

}  // namespace
}  // namespace entmatcher
