#include "common/status.h"

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);

  Status s = Status::InvalidArgument("bad value");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "bad value");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad value");
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(Status::Unavailable("shed").ToString(), "Unavailable: shed");
}

TEST(StatusTest, CodeFromStringRoundTripsEveryCode) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kOutOfRange,
        StatusCode::kNotFound, StatusCode::kAlreadyExists,
        StatusCode::kFailedPrecondition, StatusCode::kResourceExhausted,
        StatusCode::kDeadlineExceeded, StatusCode::kUnavailable,
        StatusCode::kInternal, StatusCode::kIoError,
        StatusCode::kUnimplemented}) {
    EXPECT_EQ(StatusCodeFromString(StatusCodeToString(code)), code);
  }
  // Unknown names degrade to kInternal rather than inventing a code.
  EXPECT_EQ(StatusCodeFromString("Bogus"), StatusCode::kInternal);
  EXPECT_EQ(StatusCodeFromString(""), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueOnSuccess) {
  Result<int> r(7);
  EXPECT_EQ(r.value_or(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  EM_ASSIGN_OR_RETURN(int h, Half(x));
  EM_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

Status CheckEven(int x) {
  EM_RETURN_NOT_OK(Half(x).status());
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);

  Result<int> outer_fail = Quarter(5);
  EXPECT_FALSE(outer_fail.ok());
  Result<int> inner_fail = Quarter(6);  // 6/2 = 3, second Half fails
  EXPECT_FALSE(inner_fail.ok());
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(CheckEven(4).ok());
  EXPECT_FALSE(CheckEven(3).ok());
}

}  // namespace
}  // namespace entmatcher
