#include "common/fault.h"

#include <cstdlib>
#include <vector>

#include "gtest/gtest.h"

namespace entmatcher {
namespace {

// The injector is process-global; every test leaves it disarmed.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjector::Global().Disarm();
    ::unsetenv("EM_FAULT_PLAN");
    ::unsetenv("EM_FAULT_SEED");
  }
};

TEST_F(FaultTest, ParsesMultiRulePlan) {
  Result<FaultPlan> plan = FaultPlan::Parse(
      "engine.scores:p=0.25,code=Internal,latency_us=100;"
      "socket.write:nth=7,max=3;"
      "socket.write.chunk:p=1,arg=1;"
      "engine.scores:nth=2,latency_us=50");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->rules().size(), 4u);

  const FaultRule& scores = plan->rules()[0];
  EXPECT_EQ(scores.point, "engine.scores");
  EXPECT_EQ(scores.kind, FaultKind::kStatus);
  EXPECT_DOUBLE_EQ(scores.probability, 0.25);
  EXPECT_EQ(scores.code, StatusCode::kInternal);
  EXPECT_EQ(scores.latency_micros, 100u);

  const FaultRule& write = plan->rules()[1];
  EXPECT_EQ(write.kind, FaultKind::kStatus);  // site default code
  EXPECT_EQ(write.nth, 7u);
  EXPECT_EQ(write.max_fires, 3u);
  EXPECT_FALSE(write.code.has_value());

  EXPECT_EQ(plan->rules()[2].kind, FaultKind::kParam);
  EXPECT_EQ(plan->rules()[2].arg, 1u);

  EXPECT_EQ(plan->rules()[3].kind, FaultKind::kDelay);
}

TEST_F(FaultTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(FaultPlan::Parse("no-colon").ok());
  EXPECT_FALSE(FaultPlan::Parse("point:").ok());          // no trigger
  EXPECT_FALSE(FaultPlan::Parse("point:max=3").ok());     // no trigger
  EXPECT_FALSE(FaultPlan::Parse("point:p=1.5").ok());     // p out of range
  EXPECT_FALSE(FaultPlan::Parse("point:nth=0").ok());
  EXPECT_FALSE(FaultPlan::Parse("point:p=1,code=OK").ok());
  EXPECT_FALSE(FaultPlan::Parse("point:p=1,code=Bogus").ok());
  EXPECT_FALSE(FaultPlan::Parse("point:p=1,arg=2,code=Internal").ok());
  EXPECT_FALSE(FaultPlan::Parse("point:p=1,unknown=3").ok());
  EXPECT_TRUE(FaultPlan::Parse("").ok());  // empty plan = no rules
  EXPECT_TRUE(FaultPlan::Parse("").value().empty());
}

TEST_F(FaultTest, NthTriggerFiresDeterministically) {
  FaultInjector& injector = FaultInjector::Global();
  Result<FaultPlan> plan = FaultPlan::Parse("p:nth=3,code=IoError");
  ASSERT_TRUE(plan.ok());
  injector.Arm(std::move(plan).value(), /*seed=*/1);
  std::vector<bool> fired;
  for (int i = 0; i < 9; ++i) {
    fired.push_back(!injector.InjectedStatus("p", StatusCode::kInternal).ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, true,
                                      false, false, true}));
}

TEST_F(FaultTest, ProbabilityTriggerIsSeedDeterministic) {
  FaultInjector& injector = FaultInjector::Global();
  auto run = [&](uint64_t seed) {
    Result<FaultPlan> plan = FaultPlan::Parse("p:p=0.5");
    EXPECT_TRUE(plan.ok());
    injector.Arm(std::move(plan).value(), seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(
          !injector.InjectedStatus("p", StatusCode::kInternal).ok());
    }
    return fired;
  };
  const std::vector<bool> a = run(7);
  const std::vector<bool> b = run(7);
  const std::vector<bool> c = run(8);
  EXPECT_EQ(a, b);        // same seed, same schedule
  EXPECT_NE(a, c);        // different seed, different schedule
  EXPECT_GT(injector.total_fires(), 0u);  // p=0.5 over 64 calls fires
}

TEST_F(FaultTest, DefaultCodeFillsInAndExplicitCodeWins) {
  FaultInjector& injector = FaultInjector::Global();
  Result<FaultPlan> plan = FaultPlan::Parse("a:nth=1;b:nth=1,code=IoError");
  ASSERT_TRUE(plan.ok());
  injector.Arm(std::move(plan).value(), 1);
  EXPECT_EQ(injector.InjectedStatus("a", StatusCode::kResourceExhausted).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(injector.InjectedStatus("b", StatusCode::kResourceExhausted).code(),
            StatusCode::kIoError);
  EXPECT_TRUE(injector.InjectedStatus("c", StatusCode::kInternal).ok());
}

TEST_F(FaultTest, MaxFiresCapsTheRule) {
  FaultInjector& injector = FaultInjector::Global();
  Result<FaultPlan> plan = FaultPlan::Parse("p:nth=1,max=2");
  ASSERT_TRUE(plan.ok());
  injector.Arm(std::move(plan).value(), 1);
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (!injector.InjectedStatus("p", StatusCode::kInternal).ok()) ++fires;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(injector.total_fires(), 2u);
}

TEST_F(FaultTest, ParamRulesAreSeparateFromStatusRules) {
  FaultInjector& injector = FaultInjector::Global();
  Result<FaultPlan> plan = FaultPlan::Parse("p:nth=1,arg=5");
  ASSERT_TRUE(plan.ok());
  injector.Arm(std::move(plan).value(), 1);
  // A param rule never injects a status, and vice versa.
  EXPECT_TRUE(injector.InjectedStatus("p", StatusCode::kInternal).ok());
  EXPECT_EQ(injector.Param("p"), 5u);
  EXPECT_EQ(injector.Param("q"), 0u);
}

TEST_F(FaultTest, DisarmRestoresFallThrough) {
  FaultInjector& injector = FaultInjector::Global();
  Result<FaultPlan> plan = FaultPlan::Parse("p:nth=1");
  ASSERT_TRUE(plan.ok());
  injector.Arm(std::move(plan).value(), 1);
  EXPECT_FALSE(injector.InjectedStatus("p", StatusCode::kInternal).ok());
  injector.Disarm();
  EXPECT_FALSE(injector.armed());
  EXPECT_TRUE(injector.InjectedStatus("p", StatusCode::kInternal).ok());
  EXPECT_EQ(injector.Fingerprint(), "off");
}

TEST_F(FaultTest, FingerprintIsStableAndSeedSensitive) {
  FaultInjector& injector = FaultInjector::Global();
  auto fingerprint = [&](const char* spec, uint64_t seed) {
    Result<FaultPlan> plan = FaultPlan::Parse(spec);
    EXPECT_TRUE(plan.ok());
    injector.Arm(std::move(plan).value(), seed);
    return injector.Fingerprint();
  };
  const std::string a = fingerprint("p:nth=1", 1);
  const std::string b = fingerprint("p:nth=1", 1);
  const std::string c = fingerprint("p:nth=1", 2);
  const std::string d = fingerprint("q:nth=1", 1);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
  EXPECT_NE(a.find("p:nth=1"), std::string::npos);
}

TEST_F(FaultTest, ArmFromEnvRespectsCompileGate) {
  ::setenv("EM_FAULT_PLAN", "engine.scores:p=0.1", 1);
  ::setenv("EM_FAULT_SEED", "99", 1);
  const Status status = ArmFaultInjectionFromEnv();
  if (kFaultInjectionCompiled) {
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_TRUE(FaultInjector::Global().armed());
  } else {
    // A plan against a fault-free build must fail loudly: a silently
    // ignored chaos run would masquerade as a clean one.
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  }
}

TEST_F(FaultTest, ArmFromEnvWithoutPlanIsANoOp) {
  ::unsetenv("EM_FAULT_PLAN");
  EXPECT_TRUE(ArmFaultInjectionFromEnv().ok());
  EXPECT_FALSE(FaultInjector::Global().armed());
}

TEST_F(FaultTest, ArmFromEnvRejectsBadSeed) {
  if (!kFaultInjectionCompiled) GTEST_SKIP() << "faults compiled out";
  ::setenv("EM_FAULT_PLAN", "p:nth=1", 1);
  ::setenv("EM_FAULT_SEED", "not-a-number", 1);
  EXPECT_EQ(ArmFaultInjectionFromEnv().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace entmatcher
