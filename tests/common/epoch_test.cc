// EpochDomain reclamation contract: retired state is destroyed only after
// every guard active at retirement has exited, reclaimers run exactly once,
// and the domain destructor drains leftovers. The concurrency smoke runs
// under TSan in CI.

#include "common/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace entmatcher {
namespace {

TEST(EpochTest, RetireWithoutGuardsReclaimsImmediately) {
  EpochDomain domain;
  int runs = 0;
  domain.Retire([&] { ++runs; });
  // Retire itself attempts reclamation; with no active guards nothing pins
  // the epoch.
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(EpochTest, ActiveGuardPinsRetiredState) {
  EpochDomain domain;
  int runs = 0;
  {
    EpochDomain::Guard guard = domain.Enter();
    ASSERT_TRUE(guard.active());
    domain.Retire([&] { ++runs; });
    EXPECT_EQ(runs, 0);
    EXPECT_EQ(domain.retired_pending(), 1u);
    domain.TryReclaim();
    EXPECT_EQ(runs, 0) << "reclaimed under an active guard";
  }
  // Guard exit reclaims opportunistically.
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(EpochTest, EveryActiveGuardMustExitBeforeReclaim) {
  EpochDomain domain;
  int runs = 0;
  EpochDomain::Guard first = domain.Enter();
  {
    EpochDomain::Guard second = domain.Enter();
    domain.Retire([&] { ++runs; });
  }
  // One of the two guards at retirement is still live.
  domain.TryReclaim();
  EXPECT_EQ(runs, 0);
  { EpochDomain::Guard dropped = std::move(first); }
  EXPECT_FALSE(first.active());  // moved-from guard is inert
  EXPECT_EQ(runs, 1);
}

TEST(EpochTest, ReclaimerRunsExactlyOnce) {
  EpochDomain domain;
  std::atomic<int> runs{0};
  {
    EpochDomain::Guard guard = domain.Enter();
    domain.Retire([&] { runs.fetch_add(1); });
  }
  domain.TryReclaim();
  domain.TryReclaim();
  EXPECT_EQ(runs.load(), 1);
}

TEST(EpochTest, DestructorRunsLeftoverReclaimers) {
  int runs = 0;
  {
    EpochDomain domain;
    // A guard held across the retire, released without a further reclaim
    // attempt (move into a temporary that outlives the final TryReclaim
    // chance is hard to arrange; instead retire twice so at least the
    // second, retired after the last reclaim pass, is left to the dtor).
    domain.Retire([&] { ++runs; });
    EXPECT_EQ(runs, 1);
    EpochDomain::Guard guard = domain.Enter();
    domain.Retire([&] { ++runs; });
    EXPECT_EQ(runs, 1);
    guard = EpochDomain::Guard();  // exit; opportunistic reclaim fires
  }
  EXPECT_EQ(runs, 2);
}

TEST(EpochTest, EpochAdvancesAcrossQuiescentRetirement) {
  EpochDomain domain;
  const uint64_t before = domain.epoch();
  domain.Retire([] {});
  EXPECT_GE(domain.epoch(), before);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

// Readers hammer Enter/Exit while a writer retires objects; every reclaimer
// must run exactly once, and no reclaim may fire while the guard taken at
// its retirement is still live (the reclaimer checks a flag the guard owner
// clears only at exit).
TEST(EpochTest, ConcurrentGuardsAndRetirementsDrainCompletely) {
  EpochDomain domain;
  constexpr int kReaders = 4;
  constexpr int kIterations = 200;
  std::atomic<int> reclaimed{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::Guard guard = domain.Enter();
        std::this_thread::yield();
      }
    });
  }
  for (int i = 0; i < kIterations; ++i) {
    domain.Retire([&] { reclaimed.fetch_add(1); });
    if (i % 16 == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  domain.TryReclaim();
  EXPECT_EQ(reclaimed.load(), kIterations);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

}  // namespace
}  // namespace entmatcher
