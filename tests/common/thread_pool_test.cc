#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

/// Restores the process-wide thread count on scope exit so tests cannot leak
/// their override into each other.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(size_t n) : previous_(GetNumThreads()) {
    SetNumThreads(n);
  }
  ~ScopedNumThreads() { SetNumThreads(previous_); }

 private:
  size_t previous_;
};

TEST(ThreadPoolTest, EmptyRangeNeverInvokesBody) {
  ScopedNumThreads threads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ScopedNumThreads threads(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsSingleChunk) {
  ScopedNumThreads threads(4);
  std::atomic<int> calls{0};
  size_t seen_begin = 99, seen_end = 0;
  ParallelFor(2, 10, 100, [&](size_t begin, size_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 2u);
  EXPECT_EQ(seen_end, 10u);
}

TEST(ThreadPoolTest, MoreThreadsThanItems) {
  ScopedNumThreads threads(16);
  constexpr size_t kN = 3;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(0, kN, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedCallsRunInlineWithoutDeadlock) {
  ScopedNumThreads threads(4);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ParallelFor(0, kOuter, 1, [&](size_t outer_begin, size_t outer_end) {
    for (size_t o = outer_begin; o < outer_end; ++o) {
      // Inside a chunk body the nested region must degrade to inline serial
      // execution instead of re-entering the pool.
      EXPECT_TRUE(internal::ThreadPool::InParallelRegion());
      ParallelFor(0, kInner, 1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) hits[o * kInner + i].fetch_add(1);
      });
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_FALSE(internal::ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, SerialFallbackRunsOnCallingThread) {
  ScopedNumThreads threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen;
  ParallelFor(0, 100, 1, [&](size_t begin, size_t end) {
    (void)begin;
    (void)end;
    seen.push_back(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], caller);
}

TEST(ThreadPoolTest, SetNumThreadsRoundTrip) {
  const size_t original = GetNumThreads();
  SetNumThreads(7);
  EXPECT_EQ(GetNumThreads(), 7u);
  SetNumThreads(0);  // resets to env/hardware default
  EXPECT_GE(GetNumThreads(), 1u);
  SetNumThreads(original);
}

TEST(ThreadPoolTest, RepeatedRegionsReuseThePool) {
  ScopedNumThreads threads(3);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> out(257, 0);
    ParallelFor(0, out.size(), 4, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) out[i] = static_cast<int>(i);
    });
    long long sum = std::accumulate(out.begin(), out.end(), 0LL);
    ASSERT_EQ(sum, 256LL * 257 / 2);
  }
}

TEST(ThreadPoolTest, ThreadCountChangesBetweenRegions) {
  for (size_t n : {1u, 2u, 5u, 2u, 8u}) {
    ScopedNumThreads threads(n);
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(0, hits.size(), 1, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1);
  }
}

}  // namespace
}  // namespace entmatcher
