#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextFloatInUnitInterval) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const float f = rng.NextFloat();
    ASSERT_GE(f, 0.0f);
    ASSERT_LT(f, 1.0f);
  }
}

TEST(RngTest, NextUniformRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextUniform(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.03);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParams) {
  Rng rng(18);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(20);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ZipfInRange) {
  Rng rng(21);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.NextZipf(100, 0.9), 100u);
  }
  EXPECT_EQ(rng.NextZipf(1, 0.9), 0u);
}

TEST(RngTest, ZipfSkewsTowardSmallIndices) {
  Rng rng(22);
  const int n = 20000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < n; ++i) ++counts[rng.NextZipf(100, 1.0)];
  // Index 0 should be sampled far more often than index 50.
  EXPECT_GT(counts[0], 5 * std::max(counts[50], 1));
  // And the first decile should hold the bulk of the mass.
  int head = 0;
  for (int i = 0; i < 10; ++i) head += counts[i];
  EXPECT_GT(head, n / 3);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(24);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(42);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  Rng a2 = parent.Fork(1);
  // Same label -> same stream; different labels -> different streams.
  EXPECT_EQ(a.NextUint64(), a2.NextUint64());
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace entmatcher
