// JsonValue parser/dumper: the shard-plan file format and the router's
// health aggregation both lean on it, so malformed-input behavior is
// contract, not detail.

#include "common/json.h"

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("true")->AsBool(), true);
  EXPECT_EQ(JsonValue::Parse("false")->AsBool(), false);
  EXPECT_EQ(JsonValue::Parse("42")->AsInt(), 42);
  EXPECT_EQ(JsonValue::Parse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("2.5")->AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructure) {
  Result<JsonValue> doc = JsonValue::Parse(
      R"({"shards": [{"id": 0}, {"id": 1}], "name": "p", "rows": 10})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->GetInt("rows").value(), 10);
  EXPECT_EQ(doc->GetString("name").value(), "p");
  const JsonValue::Array* shards = doc->GetArray("shards").value();
  ASSERT_EQ(shards->size(), 2u);
  EXPECT_EQ((*shards)[1].GetInt("id").value(), 1);
}

TEST(JsonTest, StringEscapes) {
  Result<JsonValue> parsed =
      JsonValue::Parse("\"a\\n\\t\\\"b\\\\\\u0041\\u00e9\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsString(), "a\n\t\"b\\A\xc3\xa9");
}

TEST(JsonTest, SurrogatePairDecodesToUtf8) {
  Result<JsonValue> parsed = JsonValue::Parse("\"\\ud83d\\ude00\"");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nulL").ok());
  // Trailing garbage after a complete document is an error, not ignored.
  EXPECT_FALSE(JsonValue::Parse("{} x").ok());
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, TypedAccessorsNameTheOffendingKey) {
  Result<JsonValue> doc = JsonValue::Parse(R"({"rows": "ten"})");
  ASSERT_TRUE(doc.ok());
  Result<int64_t> rows = doc->GetInt("rows");
  EXPECT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("rows"), std::string::npos);
  EXPECT_FALSE(doc->GetInt("absent").ok());
  EXPECT_EQ(doc->GetStringOr("absent", "dflt").value(), "dflt");
}

TEST(JsonTest, DumpRoundTrips) {
  const std::string text =
      R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null},"e":-3})";
  Result<JsonValue> doc = JsonValue::Parse(text);
  ASSERT_TRUE(doc.ok());
  Result<JsonValue> again = JsonValue::Parse(doc->Dump());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->Dump(), doc->Dump());
}

TEST(JsonTest, JsonEscapeQuotesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "\"plain\"");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

}  // namespace
}  // namespace entmatcher
