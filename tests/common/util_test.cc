#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"

namespace entmatcher {
namespace {

// ---- MemoryTracker ---------------------------------------------------------

TEST(MemoryTrackerTest, AddSubAndPeak) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.current_bytes();
  t.ResetPeak();
  t.Add(1000);
  EXPECT_EQ(t.current_bytes(), base + 1000);
  EXPECT_GE(t.peak_bytes(), base + 1000);
  t.Add(500);
  t.Sub(1500);
  EXPECT_EQ(t.current_bytes(), base);
  EXPECT_GE(t.peak_bytes(), base + 1500);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), t.current_bytes());
}

TEST(MemoryTrackerTest, ScopedTrackedBytes) {
  MemoryTracker& t = MemoryTracker::Global();
  const size_t base = t.current_bytes();
  {
    ScopedTrackedBytes scope(4096);
    EXPECT_EQ(t.current_bytes(), base + 4096);
  }
  EXPECT_EQ(t.current_bytes(), base);
}

// ---- string_util ------------------------------------------------------------

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a\tb\tc", '\t');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");

  parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");

  parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \r\n"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.12345, 3), "0.123");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-1.5, 0), "-2");  // round-half-even via printf
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512.0 B");
  EXPECT_EQ(FormatBytes(2048), "2.0 KB");
  EXPECT_EQ(FormatBytes(5ull * 1024 * 1024), "5.0 MB");
  EXPECT_EQ(FormatBytes(3ull * 1024 * 1024 * 1024), "3.0 GB");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_TRUE(StartsWith("hello", ""));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_FALSE(StartsWith("hello", "lo"));
}

// ---- TablePrinter -----------------------------------------------------------

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter t({"Model", "F1"});
  t.AddRow({"DInf", "0.605"});
  t.AddRow({"CSLS", "0.7"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| Model |"), std::string::npos);
  EXPECT_NE(out.find("| DInf  |"), std::string::npos);
  EXPECT_NE(out.find("0.605"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"A", "B", "C"});
  t.AddRow({"x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("| x |"), std::string::npos);
}

TEST(TablePrinterTest, SeparatorRows) {
  TablePrinter t({"A"});
  t.AddRow({"1"});
  t.AddSeparator();
  t.AddRow({"2"});
  const std::string out = t.ToString();
  // 3 border lines + 1 separator = 5 '+--+' lines total for 1 column.
  size_t lines = 0;
  for (char c : out) lines += (c == '\n');
  EXPECT_EQ(lines, 7u);  // border, header, border, row, sep, row, border
}

// ---- Timer ---------------------------------------------------------------------

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMillis(), timer.ElapsedSeconds());
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace entmatcher
