// ShardPlan contract: a plan is only accepted when its ranges tile the
// decision space exactly and every owner exists — a bad plan must die at
// load time, never as a silent routing hole at query time.

#include "fleet/plan.h"

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

ShardPlan TwoShardPlan() {
  ShardPlan plan;
  plan.shards.push_back({0, "/tmp/s0.sock"});
  plan.shards.push_back({1, "/tmp/s1.sock"});
  PairSpec pair;
  pair.name = "p";
  pair.source_path = "src.emat";
  pair.target_path = "tgt.emat";
  pair.rows = 10;
  pair.ranges.push_back({0, 5, {0}});
  pair.ranges.push_back({5, 10, {1}});
  plan.pairs.push_back(std::move(pair));
  return plan;
}

TEST(ShardPlanTest, ValidPlanValidates) {
  EXPECT_TRUE(TwoShardPlan().Validate().ok());
}

TEST(ShardPlanTest, JsonRoundTrip) {
  const ShardPlan plan = TwoShardPlan();
  Result<ShardPlan> parsed = ShardPlan::FromJson(plan.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToJson(), plan.ToJson());
  EXPECT_EQ(parsed->shards.size(), 2u);
  EXPECT_EQ(parsed->pairs[0].ranges[1].begin, 5u);
  EXPECT_EQ(parsed->pairs[0].ranges[1].shards, std::vector<int>{1});
}

TEST(ShardPlanTest, RejectsWrongPlanVersion) {
  std::string json = TwoShardPlan().ToJson();
  const size_t at = json.find("\"plan_version\":1");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 16, "\"plan_version\":9");
  Result<ShardPlan> parsed = ShardPlan::FromJson(json);
  EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardPlanTest, RejectsGapsOverlapsAndBadOwners) {
  ShardPlan gap = TwoShardPlan();
  gap.pairs[0].ranges[1].begin = 6;  // 5 is unowned
  EXPECT_FALSE(gap.Validate().ok());

  ShardPlan overlap = TwoShardPlan();
  overlap.pairs[0].ranges[1].begin = 4;
  EXPECT_FALSE(overlap.Validate().ok());

  ShardPlan shy = TwoShardPlan();
  shy.pairs[0].ranges[1].end = 9;  // does not reach rows
  EXPECT_FALSE(shy.Validate().ok());

  ShardPlan unknown_owner = TwoShardPlan();
  unknown_owner.pairs[0].ranges[0].shards = {7};
  EXPECT_FALSE(unknown_owner.Validate().ok());

  ShardPlan unowned = TwoShardPlan();
  unowned.pairs[0].ranges[0].shards.clear();
  EXPECT_FALSE(unowned.Validate().ok());

  ShardPlan twice = TwoShardPlan();
  twice.pairs[0].ranges[0].shards = {0, 0};
  EXPECT_FALSE(twice.Validate().ok());
}

TEST(ShardPlanTest, RejectsDuplicateIdsSocketsAndNames) {
  ShardPlan dup_id = TwoShardPlan();
  dup_id.shards[1].id = 0;
  EXPECT_FALSE(dup_id.Validate().ok());

  ShardPlan dup_socket = TwoShardPlan();
  dup_socket.shards[1].socket_path = dup_socket.shards[0].socket_path;
  EXPECT_FALSE(dup_socket.Validate().ok());

  ShardPlan spacey = TwoShardPlan();
  spacey.pairs[0].name = "has space";
  EXPECT_FALSE(spacey.Validate().ok());
}

TEST(ShardPlanTest, EvenSplitTilesAndReplicates) {
  Result<ShardPlan> plan = ShardPlan::EvenSplit(
      "p", "s.emat", "t.emat", "", /*rows=*/10, /*num_shards=*/4, "/tmp",
      /*replicas=*/1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const PairSpec& pair = plan->pairs[0];
  ASSERT_EQ(pair.ranges.size(), 4u);
  // 10 rows over 4 shards: 3,3,2,2.
  EXPECT_EQ(pair.ranges[0].end - pair.ranges[0].begin, 3u);
  EXPECT_EQ(pair.ranges[1].end - pair.ranges[1].begin, 3u);
  EXPECT_EQ(pair.ranges[2].end - pair.ranges[2].begin, 2u);
  EXPECT_EQ(pair.ranges[3].end - pair.ranges[3].begin, 2u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(pair.ranges[i].shards.size(), 2u) << "range " << i;
    EXPECT_EQ(pair.ranges[i].shards[0], static_cast<int>(i));
    EXPECT_EQ(pair.ranges[i].shards[1], static_cast<int>((i + 1) % 4));
  }
  // Every shard owns something (round-robin replicas).
  for (int id = 0; id < 4; ++id) {
    EXPECT_EQ(plan->PairsOwnedBy(id), std::vector<std::string>{"p"});
  }
}

TEST(ShardPlanTest, EvenSplitRejectsDegenerateShapes) {
  EXPECT_FALSE(
      ShardPlan::EvenSplit("p", "s", "t", "", 2, 4, "/tmp", 0).ok());
  EXPECT_FALSE(
      ShardPlan::EvenSplit("p", "s", "t", "", 10, 0, "/tmp", 0).ok());
  EXPECT_FALSE(
      ShardPlan::EvenSplit("p", "s", "t", "", 10, 2, "/tmp", 2).ok());
}

TEST(ShardPlanTest, Lookups) {
  const ShardPlan plan = TwoShardPlan();
  EXPECT_NE(plan.FindShard(1), nullptr);
  EXPECT_EQ(plan.FindShard(9), nullptr);
  EXPECT_NE(plan.FindPair("p"), nullptr);
  EXPECT_EQ(plan.FindPair("q"), nullptr);
  EXPECT_EQ(plan.PairsOwnedBy(0), std::vector<std::string>{"p"});
  EXPECT_TRUE(plan.PairsOwnedBy(9).empty());
}

}  // namespace
}  // namespace entmatcher
