// Router scatter-gather contract, tested against in-process shards (real
// MatchServers behind real unix sockets):
//   - the headline merge property: router-merged match/topk answers are
//     bit-identical to a single-process server over the union, for every
//     sparse-capable preset, at 2 and 4 shards, at serve workers 1 and 4;
//   - the no-mixed-version guarantee (a half-swapped fleet refuses reads);
//   - protocol handshake refusal (a shard speaking another version is
//     marked incompatible, kFailedPrecondition);
//   - failover to a replica when an owner is down;
//   - hedged requests winning against a slow primary;
//   - all-or-nothing swap fan-out with partial-failure reporting + repair.

#include "fleet/router.h"

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/plan.h"
#include "la/matrix_io.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_server.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 24;
constexpr size_t kTargets = 30;
constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::vector<AlgorithmPreset> SparseCapablePresets() {
  return {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf, AlgorithmPreset::kRinfWr,
          AlgorithmPreset::kRinfPb};
}

/// A WireHandler decorator that delays routed sub-queries — the "slow
/// shard" a hedge should race past.
class SlowHandler : public WireHandler {
 public:
  SlowHandler(WireHandler* inner, uint64_t delay_micros)
      : inner_(inner), delay_micros_(delay_micros) {}

  std::string Handle(const std::string& payload, bool* shutdown) override {
    if (payload.rfind("route ", 0) == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_micros_));
    }
    return inner_->Handle(payload, shutdown);
  }

 private:
  WireHandler* inner_;
  uint64_t delay_micros_;
};

/// A WireHandler decorator that fails swap requests while armed — the
/// diverging shard of a partial swap fan-out.
class FailSwapHandler : public WireHandler {
 public:
  explicit FailSwapHandler(WireHandler* inner) : inner_(inner) {}

  void Arm(bool on) { armed_.store(on); }

  std::string Handle(const std::string& payload, bool* shutdown) override {
    if (armed_.load() && payload.rfind("swap ", 0) == 0) {
      return EncodeErrorResponse(Status::Internal("injected swap failure"));
    }
    return inner_->Handle(payload, shutdown);
  }

 private:
  WireHandler* inner_;
  std::atomic<bool> armed_{false};
};

/// A fake peer whose hello reports an alien protocol version.
class AlienHelloHandler : public WireHandler {
 public:
  std::string Handle(const std::string& payload, bool*) override {
    if (payload == "hello") {
      return EncodeTextResponse(
          "{\"protocol\": 99, \"build\": \"x\", \"role\": \"shard\"}");
    }
    return EncodeErrorResponse(Status::Internal("alien peer"));
  }
};

/// An in-process fleet: one full-pair MatchServer + SocketServer per shard,
/// fronted by a Router built from an EvenSplit plan.
class Fleet {
 public:
  Fleet(const Matrix& source, const Matrix& target, int num_shards,
        size_t serve_workers, int replicas, RouterConfig router_config = {},
        const std::string& pair_name = "p") {
    const std::string dir =
        "/tmp/em_fleet_" + std::to_string(::getpid()) + "_" +
        std::to_string(instance_counter_++);
    Result<ShardPlan> plan = ShardPlan::EvenSplit(
        pair_name, "unused.src", "unused.tgt", "", source.rows(), num_shards,
        dir, replicas);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_ = std::move(plan).value();
    // mkdir for the sockets (EvenSplit only names them).
    std::string cmd_path = dir;
    ::mkdir(cmd_path.c_str(), 0755);
    for (int i = 0; i < num_shards; ++i) {
      MatchServerConfig config;
      config.serve_workers = serve_workers;
      Result<std::unique_ptr<MatchServer>> server =
          MatchServer::Create(config);
      EXPECT_TRUE(server.ok()) << server.status().ToString();
      EXPECT_TRUE((*server)
                      ->LoadPair(pair_name, Matrix(source), Matrix(target))
                      .ok());
      EXPECT_TRUE((*server)->Start().ok());
      servers_.push_back(std::move(server).value());
      handlers_.push_back(
          std::make_unique<MatchServerHandler>(servers_.back().get()));
    }
    StartSockets();
    Result<std::unique_ptr<Router>> router =
        Router::Create(plan_, router_config);
    EXPECT_TRUE(router.ok()) << router.status().ToString();
    router_ = std::move(router).value();
  }

  ~Fleet() {
    router_.reset();  // drain stragglers before sockets die
    for (std::unique_ptr<SocketServer>& front : fronts_) {
      if (front) front->Stop();
    }
    for (std::unique_ptr<MatchServer>& server : servers_) {
      server->Shutdown();
    }
  }

  /// Replaces shard `i`'s wire handler (decorators) — call before queries.
  void WrapHandler(size_t i, WireHandler* handler) {
    fronts_[i]->Stop();
    Result<std::unique_ptr<SocketServer>> front =
        SocketServer::Start(handler, plan_.shards[i].socket_path);
    EXPECT_TRUE(front.ok()) << front.status().ToString();
    fronts_[i] = std::move(front).value();
  }

  /// Stops shard `i`'s socket front end (simulates a dead shard).
  void StopShard(size_t i) {
    fronts_[i]->Stop();
    fronts_[i].reset();
    ::unlink(plan_.shards[i].socket_path.c_str());
  }

  /// Brings a StopShard'ed front end back on its original handler (the
  /// "shard recovered" half of breaker tests).
  void RestartShard(size_t i) {
    Result<std::unique_ptr<SocketServer>> front =
        SocketServer::Start(handlers_[i].get(), plan_.shards[i].socket_path);
    EXPECT_TRUE(front.ok()) << front.status().ToString();
    fronts_[i] = std::move(front).value();
  }

  Router& router() { return *router_; }
  const ShardPlan& plan() const { return plan_; }
  MatchServer& server(size_t i) { return *servers_[i]; }
  WireHandler* handler(size_t i) { return handlers_[i].get(); }

 private:
  void StartSockets() {
    for (size_t i = 0; i < servers_.size(); ++i) {
      Result<std::unique_ptr<SocketServer>> front =
          SocketServer::Start(handlers_[i].get(),
                              plan_.shards[i].socket_path);
      EXPECT_TRUE(front.ok()) << front.status().ToString();
      fronts_.push_back(std::move(front).value());
    }
  }

  static std::atomic<int> instance_counter_;
  ShardPlan plan_;
  std::vector<std::unique_ptr<MatchServer>> servers_;
  std::vector<std::unique_ptr<MatchServerHandler>> handlers_;
  std::vector<std::unique_ptr<SocketServer>> fronts_;
  std::unique_ptr<Router> router_;
};

std::atomic<int> Fleet::instance_counter_{0};

class RouterTest : public ::testing::Test {
 protected:
  RouterTest()
      : source_(RandomEmbeddings(kRows, /*seed=*/5)),
        target_(RandomEmbeddings(kTargets, /*seed=*/8)) {}

  /// The same query answered by a dedicated single-process server.
  std::vector<int32_t> SoloAnswer(const WireRequest& request,
                                  size_t serve_workers) {
    MatchServerConfig config;
    config.serve_workers = serve_workers;
    Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
    EXPECT_TRUE(server.ok());
    EXPECT_TRUE(
        (*server)->LoadPair("p", Matrix(source_), Matrix(target_)).ok());
    EXPECT_TRUE((*server)->Start().ok());
    const std::string socket =
        "/tmp/em_solo_" + std::to_string(::getpid()) + ".sock";
    Result<std::unique_ptr<SocketServer>> front =
        SocketServer::Start(server->get(), socket);
    EXPECT_TRUE(front.ok());
    Result<ServeClient> client = ServeClient::Connect(socket);
    EXPECT_TRUE(client.ok());
    Result<WireResponse> response = client->Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_TRUE(response->status.ok()) << response->status.ToString();
    (*front)->Stop();
    (*server)->Shutdown();
    return response->values;
  }

  static WireRequest MatchRequest(AlgorithmPreset preset) {
    WireRequest request;
    request.verb = WireRequest::Verb::kMatch;
    request.algorithm = preset;
    request.pair = "p";
    return request;
  }

  static WireRequest TopKRequest(AlgorithmPreset preset, size_t k) {
    WireRequest request;
    request.verb = WireRequest::Verb::kTopK;
    request.algorithm = preset;
    request.k = k;
    request.pair = "p";
    return request;
  }

  Matrix source_;
  Matrix target_;
};

// The tentpole acceptance property: for every sparse-capable preset, at
// every tested shard count and worker count, the router's merged answer is
// bit-identical to the single-process answer over the union.
TEST_F(RouterTest, MergedAnswersBitIdenticalToSingleProcess) {
  for (const size_t workers : {size_t{1}, size_t{4}}) {
    for (const int shards : {2, 4}) {
      Fleet fleet(source_, target_, shards, workers, /*replicas=*/0);
      for (const AlgorithmPreset preset : SparseCapablePresets()) {
        SCOPED_TRACE(std::string("preset=") + PresetName(preset) +
                     " shards=" + std::to_string(shards) +
                     " workers=" + std::to_string(workers));
        const WireRequest match = MatchRequest(preset);
        Result<WireResponse> routed = fleet.router().Query(match);
        ASSERT_TRUE(routed.ok()) << routed.status().ToString();
        EXPECT_EQ(routed->values, SoloAnswer(match, workers));

        const WireRequest topk = TopKRequest(preset, 5);
        Result<WireResponse> routed_topk = fleet.router().Query(topk);
        ASSERT_TRUE(routed_topk.ok()) << routed_topk.status().ToString();
        EXPECT_EQ(routed_topk->values, SoloAnswer(topk, workers));
      }
      const RouterStatsSnapshot stats = fleet.router().Stats();
      EXPECT_EQ(stats.version_mismatches, 0u);
      EXPECT_EQ(stats.failed, 0u);
      EXPECT_EQ(stats.queries, stats.ok + stats.failed);
    }
  }
}

TEST_F(RouterTest, RefusesRouteVerbAndUnknownPair) {
  Fleet fleet(source_, target_, 2, 1, 0);
  WireRequest routed = MatchRequest(AlgorithmPreset::kDInf);
  routed.route = true;
  routed.row_begin = 0;
  routed.row_end = 4;
  EXPECT_EQ(fleet.router().Query(routed).status().code(),
            StatusCode::kInvalidArgument);
  WireRequest unknown = MatchRequest(AlgorithmPreset::kDInf);
  unknown.pair = "nope";
  EXPECT_EQ(fleet.router().Query(unknown).status().code(),
            StatusCode::kNotFound);
}

TEST_F(RouterTest, MixedVersionsRefusedAfterDirectShardSwap) {
  Fleet fleet(source_, target_, 2, 1, 0);
  // Swap ONE shard behind the router's back: the fleet now has v1 and v2.
  const std::string prefix =
      "/tmp/em_mixed_" + std::to_string(::getpid());
  ASSERT_TRUE(WriteMatrixBinary(source_, prefix + ".src.emat").ok());
  ASSERT_TRUE(WriteMatrixBinary(target_, prefix + ".tgt.emat").ok());
  Result<ServeClient> direct =
      ServeClient::Connect(fleet.plan().shards[0].socket_path);
  ASSERT_TRUE(direct.ok());
  WireRequest swap;
  swap.verb = WireRequest::Verb::kSwap;
  swap.pair = "p";
  swap.source_path = prefix + ".src.emat";
  swap.target_path = prefix + ".tgt.emat";
  Result<WireResponse> swapped = direct->Call(swap);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();
  ASSERT_TRUE(swapped->status.ok()) << swapped->status.ToString();

  Result<WireResponse> read =
      fleet.router().Query(MatchRequest(AlgorithmPreset::kDInf));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(read.status().message().find("mixed snapshot versions"),
            std::string::npos);
  EXPECT_GE(fleet.router().Stats().version_mismatches, 1u);

  // Repair: converge the lagging shard through the router's fan-out, after
  // which reads flow again.
  Result<std::string> repair = fleet.router().Swap(swap);
  ASSERT_TRUE(repair.ok()) << repair.status().ToString();
  EXPECT_TRUE(fleet.router().Query(MatchRequest(AlgorithmPreset::kDInf)).ok());
}

TEST_F(RouterTest, IncompatibleHelloRefusedPermanently) {
  Fleet fleet(source_, target_, 2, 1, 0);
  AlienHelloHandler alien;
  fleet.WrapHandler(0, &alien);
  Result<WireResponse> read =
      fleet.router().Query(MatchRequest(AlgorithmPreset::kDInf));
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(read.status().message().find("protocol"), std::string::npos);
  // Still refused without re-dialing (the channel is poisoned, not Down).
  EXPECT_EQ(fleet.router()
                .Query(MatchRequest(AlgorithmPreset::kDInf))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(RouterTest, FailsOverToReplicaWhenOwnerIsDown) {
  Fleet fleet(source_, target_, 2, 1, /*replicas=*/1);
  const WireRequest request = MatchRequest(AlgorithmPreset::kCsls);
  const std::vector<int32_t> expected = SoloAnswer(request, 1);
  fleet.StopShard(0);
  Result<WireResponse> read = fleet.router().Query(request);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->values, expected);
  EXPECT_GE(fleet.router().Stats().failovers, 1u);
  // With every owner of a range gone, the query fails cleanly instead of
  // hanging.
  fleet.StopShard(1);
  EXPECT_FALSE(fleet.router().Query(request).ok());
}

TEST_F(RouterTest, HedgeRacesSlowPrimary) {
  RouterConfig config;
  config.hedge_micros = 20'000;
  Fleet fleet(source_, target_, 2, 1, /*replicas=*/1, config);
  // Shard 0 answers routed sub-queries only after 400ms; the hedge to the
  // replica should win long before that.
  SlowHandler slow(fleet.handler(0), /*delay_micros=*/400'000);
  fleet.WrapHandler(0, &slow);
  const WireRequest request = MatchRequest(AlgorithmPreset::kDInf);
  const std::vector<int32_t> expected = SoloAnswer(request, 1);
  const auto start = std::chrono::steady_clock::now();
  Result<WireResponse> read = fleet.router().Query(request);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->values, expected);
  EXPECT_GE(fleet.router().Stats().hedges, 1u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            390);
}

TEST_F(RouterTest, SwapFanOutIsAllOrNothingWithRepair) {
  Fleet fleet(source_, target_, 2, 1, 0);
  const std::string prefix = "/tmp/em_fan_" + std::to_string(::getpid());
  ASSERT_TRUE(WriteMatrixBinary(source_, prefix + ".src.emat").ok());
  ASSERT_TRUE(WriteMatrixBinary(target_, prefix + ".tgt.emat").ok());
  WireRequest swap;
  swap.verb = WireRequest::Verb::kSwap;
  swap.pair = "p";
  swap.source_path = prefix + ".src.emat";
  swap.target_path = prefix + ".tgt.emat";

  FailSwapHandler flaky(fleet.handler(1));
  fleet.WrapHandler(1, &flaky);
  flaky.Arm(true);
  Result<std::string> diverged = fleet.router().Swap(swap);
  ASSERT_FALSE(diverged.ok());
  EXPECT_NE(diverged.status().message().find("did not converge"),
            std::string::npos);
  EXPECT_NE(diverged.status().message().find("injected swap failure"),
            std::string::npos);
  // The guarantee while diverged: reads spanning both shards refuse.
  EXPECT_EQ(fleet.router()
                .Query(MatchRequest(AlgorithmPreset::kDInf))
                .status()
                .code(),
            StatusCode::kUnavailable);

  // Repair swap: converged shards republish, the laggard catches up.
  flaky.Arm(false);
  Result<std::string> repaired = fleet.router().Swap(swap);
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_TRUE(fleet.router().Query(MatchRequest(AlgorithmPreset::kDInf)).ok());
  const RouterStatsSnapshot stats = fleet.router().Stats();
  EXPECT_EQ(stats.swap_fanouts, 2u);
  EXPECT_EQ(stats.swap_failures, 1u);
}

TEST_F(RouterTest, RouterHandlerSpeaksTheWireProtocol) {
  Fleet fleet(source_, target_, 2, 1, 0);
  RouterHandler handler(&fleet.router());
  bool shutdown = false;
  // hello: role router, current protocol.
  Result<WireResponse> hello =
      ParseResponse(handler.Handle("hello", &shutdown));
  ASSERT_TRUE(hello.ok());
  ASSERT_TRUE(hello->status.ok()) << hello->status.ToString();
  EXPECT_NE(hello->text.find("\"role\":\"router\""), std::string::npos);
  EXPECT_TRUE(CheckHello(hello->text, "router").ok());
  // shards: plan + channel states.
  Result<WireResponse> shards =
      ParseResponse(handler.Handle("shards", &shutdown));
  ASSERT_TRUE(shards.ok());
  ASSERT_TRUE(shards->status.ok());
  EXPECT_NE(shards->text.find("\"plan\""), std::string::npos);
  // match through the handler merges like Router::Query.
  Result<WireResponse> match =
      ParseResponse(handler.Handle("match DInf pair=p", &shutdown));
  ASSERT_TRUE(match.ok());
  ASSERT_TRUE(match->status.ok()) << match->status.ToString();
  EXPECT_EQ(match->values.size(), kRows);
  // route is refused client-side.
  Result<WireResponse> route =
      ParseResponse(handler.Handle("route p 0:4 match DInf", &shutdown));
  ASSERT_TRUE(route.ok());
  EXPECT_EQ(route->status.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(shutdown);
  handler.Handle("shutdown", &shutdown);
  EXPECT_TRUE(shutdown);
}

// Circuit breaker: consecutive transport failures open it (fail-fast), the
// deterministic cooldown half-opens it, and one probe success re-closes it.
// The ledger is exact because max_attempts=1 makes every failed query
// exactly one attempt on the dead channel.
TEST_F(RouterTest, CircuitBreakerOpensFailsFastAndRecloses) {
  RouterConfig config;
  config.retry.max_attempts = 1;
  config.breaker_failures = 2;
  config.breaker_cooldown_micros = 50'000;
  Fleet fleet(source_, target_, 2, 1, /*replicas=*/0, config);
  const WireRequest request = MatchRequest(AlgorithmPreset::kCsls);
  ASSERT_TRUE(fleet.router().Query(request).ok());  // prime both channels

  fleet.StopShard(0);
  // Failures 1 and 2: real connect attempts; the second trips the breaker.
  EXPECT_FALSE(fleet.router().Query(request).ok());
  EXPECT_FALSE(fleet.router().Query(request).ok());
  RouterStatsSnapshot stats = fleet.router().Stats();
  EXPECT_EQ(stats.breaker_opens, 1u) << stats.ToJson();
  // Open: fails fast without dialing, and says so.
  Result<WireResponse> fast = fleet.router().Query(request);
  ASSERT_FALSE(fast.ok());
  EXPECT_NE(fast.status().message().find("circuit breaker open"),
            std::string::npos);
  EXPECT_EQ(fleet.router().Stats().breaker_opens, 1u);

  // Recovery + cooldown: the next attempt is the half-open probe; its
  // success re-closes the breaker and the query goes through.
  fleet.RestartShard(0);
  std::this_thread::sleep_for(std::chrono::microseconds(70'000));
  Result<WireResponse> recovered = fleet.router().Query(request);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  stats = fleet.router().Stats();
  EXPECT_EQ(stats.breaker_opens, 1u);
  EXPECT_EQ(stats.breaker_half_opens, 1u);
  EXPECT_EQ(stats.breaker_closes, 1u);
}

// Supervisor admission control: a quarantined channel is invisible to
// routing (not even tried) until Readmit.
TEST_F(RouterTest, QuarantineExcludesChannelUntilReadmit) {
  RouterConfig config;
  config.retry.max_attempts = 1;
  Fleet fleet(source_, target_, 2, 1, /*replicas=*/0, config);
  const WireRequest request = MatchRequest(AlgorithmPreset::kCsls);
  ASSERT_TRUE(fleet.router().Query(request).ok());

  ASSERT_TRUE(fleet.router().Quarantine(0).ok());
  Result<WireResponse> refused = fleet.router().Query(request);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused.status().message().find("no admitted owner"),
            std::string::npos);
  EXPECT_NE(fleet.router().FleetHealthJson().find("\"admitted\": false"),
            std::string::npos);

  ASSERT_TRUE(fleet.router().Readmit(0).ok());
  EXPECT_TRUE(fleet.router().Query(request).ok());
  EXPECT_EQ(fleet.router().Quarantine(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(fleet.router().Readmit(99).code(), StatusCode::kNotFound);
}

// Partial-coverage policy: with degrade on, losing every owner of a range
// yields the covered rows + coverage annotation instead of kUnavailable —
// and the covered rows stay bit-identical to the solo answer.
TEST_F(RouterTest, DegradePolicyAnswersCoveredRangesWhenOwnerDies) {
  RouterConfig config;
  config.retry.max_attempts = 1;
  config.partial_policy = PartialPolicy::kDegrade;
  Fleet fleet(source_, target_, 2, 1, /*replicas=*/0, config);
  const WireRequest request = MatchRequest(AlgorithmPreset::kCsls);
  const std::vector<int32_t> expected = SoloAnswer(request, 1);

  fleet.StopShard(0);
  Result<WireResponse> degraded = fleet.router().Query(request);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  ASSERT_EQ(degraded->values.size(), expected.size());
  ASSERT_EQ(degraded->coverage.size(), 1u);
  const auto [lo, hi] = degraded->coverage[0];
  // Shard 1 owns the second half of the rows; shard 0's half is gone.
  EXPECT_EQ(hi, kRows);
  for (size_t row = 0; row < expected.size(); ++row) {
    if (row >= lo && row < hi) {
      EXPECT_EQ(degraded->values[row], expected[row]) << "row " << row;
    } else {
      EXPECT_EQ(degraded->values[row], -1) << "row " << row;
    }
  }
  const RouterStatsSnapshot stats = fleet.router().Stats();
  EXPECT_EQ(stats.degraded, 1u) << stats.ToJson();
  EXPECT_EQ(stats.queries, stats.ok + stats.degraded + stats.failed);

  // Full outage still refuses: degrade never fabricates from nothing.
  fleet.StopShard(1);
  EXPECT_FALSE(fleet.router().Query(request).ok());
}

TEST_F(RouterTest, FleetHealthAggregatesShardHealth) {
  Fleet fleet(source_, target_, 2, 1, 0);
  // Prime the channels.
  ASSERT_TRUE(fleet.router().Query(MatchRequest(AlgorithmPreset::kDInf)).ok());
  const std::string health = fleet.router().FleetHealthJson();
  EXPECT_NE(health.find("\"role\": \"router\""), std::string::npos);
  EXPECT_NE(health.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(health.find("\"pairs\""), std::string::npos);
  fleet.StopShard(1);
  const std::string degraded = fleet.router().FleetHealthJson();
  EXPECT_NE(degraded.find("\"error\""), std::string::npos);
}

}  // namespace
}  // namespace entmatcher
