// Process-level fleet test: ShardManager forks REAL shard processes (the
// built entmatcher_cli, located via EM_CLI_PATH), a Router scatter-gathers
// across them over real unix sockets, and a SIGKILLed shard is observed,
// failed over, and reaped. This is the layer the in-process router tests
// cannot cover: fork/exec, waitpid bookkeeping, and orderly StopAll.

#include "fleet/shard_manager.h"

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "la/matrix_io.h"
#include "matching/engine.h"
#include "serve/client.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 20;
constexpr size_t kDim = 12;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

class FleetProcessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("EM_CLI_PATH");
    if (cli == nullptr) {
      GTEST_SKIP() << "EM_CLI_PATH not set (run through ctest)";
    }
    cli_path_ = cli;
    dir_ = "/tmp/em_fleet_proc_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    source_ = RandomEmbeddings(kRows, 3);
    target_ = RandomEmbeddings(kRows + 6, 4);
    ASSERT_TRUE(WriteMatrixBinary(source_, dir_ + "/src.emat").ok());
    ASSERT_TRUE(WriteMatrixBinary(target_, dir_ + "/tgt.emat").ok());
  }

  /// An EvenSplit plan over the written files, saved to disk for the
  /// spawned shard processes to load.
  ShardPlan MakePlan(int shards, int replicas) {
    Result<ShardPlan> plan = ShardPlan::EvenSplit(
        "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, shards, dir_,
        replicas);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_path_ = dir_ + "/plan.json";
    EXPECT_TRUE(plan->Save(plan_path_).ok());
    return std::move(plan).value();
  }

  std::string cli_path_;
  std::string dir_;
  std::string plan_path_;
  Matrix source_;
  Matrix target_;
};

TEST_F(FleetProcessTest, SpawnQueryKillFailoverAndStop) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/1);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  Status healthy = manager.WaitHealthy(20'000'000);
  ASSERT_TRUE(healthy.ok()) << healthy.ToString();

  Result<std::unique_ptr<Router>> router = Router::Create(plan, {});
  ASSERT_TRUE(router.ok());
  WireRequest request;
  request.verb = WireRequest::Verb::kMatch;
  request.algorithm = AlgorithmPreset::kCsls;
  request.pair = "p";
  Result<WireResponse> answer = (*router)->Query(request);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  // The merged answer equals a plain in-process engine run over the union.
  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  Result<Assignment> solo = engine->Match();
  ASSERT_TRUE(solo.ok());
  ASSERT_EQ(answer->values.size(), solo->target_of_source.size());
  for (size_t i = 0; i < answer->values.size(); ++i) {
    EXPECT_EQ(answer->values[i], solo->target_of_source[i]) << "row " << i;
  }

  // SIGKILL shard 0: the reaper must observe the death, and reads must
  // fail over to the replica with the same bit-identical answer.
  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
  bool observed = false;
  for (int i = 0; i < 200 && !observed; ++i) {
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.shard_id == 0 && !status.running) {
        observed = true;
        EXPECT_EQ(status.last_term_signal, SIGKILL);
      }
    }
    if (!observed) ::usleep(20'000);
  }
  EXPECT_TRUE(observed) << "reaper never observed the SIGKILL";
  Result<WireResponse> after = (*router)->Query(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->values, answer->values);
  EXPECT_GE((*router)->Stats().failovers, 1u);

  // A second kill on the dead shard reports kNotFound, not a stray signal.
  EXPECT_EQ(manager.Kill(0, SIGKILL).code(), StatusCode::kNotFound);

  router->reset();
  manager.StopAll();
  for (const ShardProcessStatus& status : manager.Status_()) {
    EXPECT_FALSE(status.running) << "shard " << status.shard_id;
  }
  EXPECT_NE(manager.StatusJson().find("\"running\": false"),
            std::string::npos);
}

// Respawn: the supervisor's restart primitive. A reaped shard re-forks with
// its original argv, serves again, and the spawn/exit ledger counts every
// transition exactly once.
TEST_F(FleetProcessTest, RespawnRevivesAReapedShard) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/0);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());

  // Respawn on a RUNNING shard is refused — a restart must follow a reaped
  // exit, never race a live process.
  EXPECT_EQ(manager.Respawn(0).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
  bool reaped = false;
  for (int i = 0; i < 200 && !reaped; ++i) {
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.shard_id == 0 && !status.running) reaped = true;
    }
    if (!reaped) ::usleep(20'000);
  }
  ASSERT_TRUE(reaped) << "reaper never observed the SIGKILL";

  Status respawned = manager.Respawn(0);
  ASSERT_TRUE(respawned.ok()) << respawned.ToString();
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());
  for (const ShardProcessStatus& status : manager.Status_()) {
    if (status.shard_id != 0) continue;
    EXPECT_TRUE(status.running);
    EXPECT_EQ(status.spawns, 2u);
    EXPECT_EQ(status.exits, 1u);
  }

  manager.StopAll();
  uint64_t total_exits = 0;
  for (const ShardProcessStatus& status : manager.Status_()) {
    EXPECT_FALSE(status.running) << "shard " << status.shard_id;
    total_exits += status.exits;
  }
  // 3 spawns total (2 boots + 1 respawn), 3 exits — nothing double-counted
  // by the final blocking reap.
  EXPECT_EQ(total_exits, 3u);
}

// Regression for the StopAll/reaper race window: once StopAll begins,
// Respawn is refused for good (a restart racing teardown could resurrect a
// shard after its "final" kill — or signal a recycled pid), and concurrent
// StopAll calls neither double-join the reaper nor double-reap a child.
TEST_F(FleetProcessTest, StopAllRefusesRespawnAndSurvivesConcurrentCalls) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/0);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());

  // Hammer StopAll from two threads while a third spins Respawn attempts —
  // the attempts must all be refused (running or stopping), never spawn.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> spawned_during_stop{0};
  std::thread respawner([&] {
    while (!done.load()) {
      if (manager.Respawn(0).ok()) spawned_during_stop.fetch_add(1);
    }
  });
  std::thread other([&] { manager.StopAll(); });
  manager.StopAll();
  other.join();
  done.store(true);
  respawner.join();

  EXPECT_EQ(spawned_during_stop.load(), 0u);
  uint64_t total_exits = 0;
  for (const ShardProcessStatus& status : manager.Status_()) {
    EXPECT_FALSE(status.running) << "shard " << status.shard_id;
    EXPECT_EQ(status.spawns, 1u) << "shard " << status.shard_id;
    total_exits += status.exits;
  }
  // Exactly one observed exit per child: no double-wait, no lost status.
  EXPECT_EQ(total_exits, 2u);

  // StopAll after StopAll stays a no-op, and Respawn stays refused.
  manager.StopAll();
  EXPECT_EQ(manager.Respawn(0).code(), StatusCode::kFailedPrecondition);
}

TEST_F(FleetProcessTest, WaitHealthyFailsFastWhenAShardDiesAtBoot) {
  ShardPlan plan = MakePlan(2, 0);
  // Poison shard 1's pair file path so its process exits at load.
  plan.pairs[0].source_path = dir_ + "/missing.emat";
  ASSERT_TRUE(plan.Save(plan_path_).ok());
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  Status healthy = manager.WaitHealthy(20'000'000);
  EXPECT_FALSE(healthy.ok());
  EXPECT_EQ(healthy.code(), StatusCode::kInternal);
  manager.StopAll();
}

}  // namespace
}  // namespace entmatcher
