// FleetSupervisor: RestartPolicy parsing, and the full recovery state
// machine against REAL shard processes (EM_CLI_PATH) — a SIGKILLed shard is
// quarantined, respawned, version-converged onto the files of the last
// fleet-wide swap, and only then re-admitted; a shard that can never come
// back (its files deleted) burns its strike budget and permanently fails
// while the rest of the fleet keeps serving.

#include "fleet/supervisor.h"

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "la/matrix_io.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 20;
constexpr size_t kDim = 12;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

TEST(RestartPolicyTest, ParseDefaultsOffAndRoundTrip) {
  Result<RestartPolicy> defaults = RestartPolicy::Parse("");
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults->enabled);
  EXPECT_EQ(defaults->max_strikes, 5u);

  Result<RestartPolicy> off = RestartPolicy::Parse("off");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->enabled);
  EXPECT_EQ(off->ToString(), "off");

  Result<RestartPolicy> custom = RestartPolicy::Parse(
      "max_strikes=3,backoff_us=20000,max_backoff_us=100000,multiplier=1.5,"
      "window_us=5000000,boot_budget_us=8000000,seed=42");
  ASSERT_TRUE(custom.ok()) << custom.status().ToString();
  EXPECT_EQ(custom->max_strikes, 3u);
  EXPECT_EQ(custom->initial_backoff_micros, 20000u);
  EXPECT_EQ(custom->max_backoff_micros, 100000u);
  EXPECT_DOUBLE_EQ(custom->multiplier, 1.5);
  EXPECT_EQ(custom->strike_window_micros, 5000000u);
  EXPECT_EQ(custom->boot_budget_micros, 8000000u);
  EXPECT_EQ(custom->jitter_seed, 42u);
  // ToString round-trips through Parse.
  Result<RestartPolicy> again = RestartPolicy::Parse(custom->ToString());
  ASSERT_TRUE(again.ok()) << custom->ToString();
  EXPECT_EQ(again->ToString(), custom->ToString());
}

TEST(RestartPolicyTest, ParseRefusesGarbage) {
  EXPECT_EQ(RestartPolicy::Parse("bogus_key=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RestartPolicy::Parse("max_strikes").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RestartPolicy::Parse("max_strikes=0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RestartPolicy::Parse("multiplier=0.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RestartPolicy::Parse("backoff_us=9,max_backoff_us=1")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

class SupervisorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("EM_CLI_PATH");
    if (cli == nullptr) {
      GTEST_SKIP() << "EM_CLI_PATH not set (run through ctest)";
    }
    cli_path_ = cli;
    dir_ = "/tmp/em_supervisor_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    source_ = RandomEmbeddings(kRows, 3);
    target_ = RandomEmbeddings(kRows + 6, 4);
    ASSERT_TRUE(WriteMatrixBinary(source_, dir_ + "/src.emat").ok());
    ASSERT_TRUE(WriteMatrixBinary(target_, dir_ + "/tgt.emat").ok());
  }

  ShardPlan MakePlan(int shards, int replicas) {
    Result<ShardPlan> plan = ShardPlan::EvenSplit(
        "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, shards, dir_,
        replicas);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    plan_path_ = dir_ + "/plan.json";
    EXPECT_TRUE(plan->Save(plan_path_).ok());
    return std::move(plan).value();
  }

  /// A snappy test policy: fast backoff, generous boot budget.
  static RestartPolicy TestPolicy() {
    RestartPolicy policy;
    policy.initial_backoff_micros = 10'000;
    policy.max_backoff_micros = 100'000;
    policy.boot_budget_micros = 20'000'000;
    policy.jitter_seed = 7;
    return policy;
  }

  static WireRequest MatchRequest() {
    WireRequest request;
    request.verb = WireRequest::Verb::kMatch;
    request.algorithm = AlgorithmPreset::kCsls;
    request.pair = "p";
    return request;
  }

  std::string cli_path_;
  std::string dir_;
  std::string plan_path_;
  Matrix source_;
  Matrix target_;
};

// The tentpole path: kill → quarantine → respawn → converge → re-admit,
// twice in a row on the same shard, with the restart ledger exact and the
// recovered fleet answering reads again with no replicas to hide behind.
TEST_F(SupervisorTest, RestartsKilledShardAndReadmitsIt) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/0);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());
  Result<std::unique_ptr<Router>> router = Router::Create(plan, {});
  ASSERT_TRUE(router.ok());
  FleetSupervisor supervisor(&manager, router->get(), plan, TestPolicy());
  ASSERT_TRUE(supervisor.Start().ok());
  // Double-start is refused.
  EXPECT_EQ(supervisor.Start().code(), StatusCode::kFailedPrecondition);

  const Result<WireResponse> before = (*router)->Query(MatchRequest());
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  for (uint64_t round = 1; round <= 2; ++round) {
    ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
    Status recovered = supervisor.WaitRestarts(0, round, 30'000'000);
    ASSERT_TRUE(recovered.ok()) << recovered.ToString();
    // Re-admitted and serving: the same bit-identical answer, through the
    // restarted owner (no replicas exist to mask a dead shard 0).
    Result<WireResponse> after = (*router)->Query(MatchRequest());
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->values, before->values);
  }

  const std::vector<ShardRecoveryStatus> ledger = supervisor.Ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].restarts, 2u);
  EXPECT_FALSE(ledger[0].permanently_failed);
  EXPECT_FALSE(ledger[0].recovering);
  EXPECT_GT(ledger[0].last_restart_micros, 0u);
  EXPECT_EQ(ledger[1].restarts, 0u);
  EXPECT_EQ(supervisor.RestartLatencies().size(), 2u);
  EXPECT_NE(supervisor.StatusJson().find("\"restarts\": 2"),
            std::string::npos);
  EXPECT_EQ(supervisor.WaitRestarts(99, 1, 1000).code(),
            StatusCode::kNotFound);

  supervisor.Stop();
  router->reset();
  manager.StopAll();
}

// Version-converged re-join: swap the fleet to v2, SIGKILL a shard, and the
// supervisor must drive the cold-booted newcomer (v1) to v2 BEFORE
// re-admission — reads after recovery serve the swapped snapshot from every
// shard, so the mixed-version refusal can never fire.
TEST_F(SupervisorTest, RejoinConvergesRestartedShardToSwappedVersion) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/0);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());

  RouterConfig config;
  std::unique_ptr<FleetSupervisor> supervisor;
  config.on_swap_converged =
      [&supervisor](const std::string& pair, const std::string& src,
                    const std::string& tgt, const std::string& index,
                    uint64_t) {
        if (supervisor) supervisor->RecordSwap(pair, src, tgt, index);
      };
  Result<std::unique_ptr<Router>> router = Router::Create(plan, config);
  ASSERT_TRUE(router.ok());
  supervisor = std::make_unique<FleetSupervisor>(&manager, router->get(),
                                                 plan, TestPolicy());
  ASSERT_TRUE(supervisor->Start().ok());

  // Fleet-wide swap onto DIFFERENT files: the v2 truth a restarted shard
  // cannot reach from the stale plan alone.
  const Matrix source2 = RandomEmbeddings(kRows, 21);
  const Matrix target2 = RandomEmbeddings(kRows + 6, 22);
  ASSERT_TRUE(WriteMatrixBinary(source2, dir_ + "/src2.emat").ok());
  ASSERT_TRUE(WriteMatrixBinary(target2, dir_ + "/tgt2.emat").ok());
  WireRequest swap;
  swap.verb = WireRequest::Verb::kSwap;
  swap.pair = "p";
  swap.source_path = dir_ + "/src2.emat";
  swap.target_path = dir_ + "/tgt2.emat";
  Result<std::string> swapped = (*router)->Swap(swap);
  ASSERT_TRUE(swapped.ok()) << swapped.status().ToString();

  const Result<WireResponse> v2_answer = (*router)->Query(MatchRequest());
  ASSERT_TRUE(v2_answer.ok()) << v2_answer.status().ToString();
  ASSERT_EQ(v2_answer->version, 2u);

  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
  Status recovered = supervisor->WaitRestarts(0, 1, 30'000'000);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();

  // The recovered fleet answers at v2, bit-identical to pre-kill, and the
  // structural guarantee held: zero mixed-version merge refusals.
  Result<WireResponse> after = (*router)->Query(MatchRequest());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->version, 2u);
  EXPECT_EQ(after->values, v2_answer->values);
  EXPECT_EQ((*router)->Stats().version_mismatches, 0u);

  supervisor->Stop();
  router->reset();
  manager.StopAll();
}

// Strike budget: a shard whose data files vanish can respawn but never gets
// healthy; after max_strikes it is retired permanently (still quarantined)
// while WaitRestarts reports the terminal state instead of hanging.
TEST_F(SupervisorTest, UnrecoverableShardPermanentlyFailsAfterStrikes) {
  const ShardPlan plan = MakePlan(/*shards=*/2, /*replicas=*/1);
  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());
  Result<std::unique_ptr<Router>> router = Router::Create(plan, {});
  ASSERT_TRUE(router.ok());

  RestartPolicy policy = TestPolicy();
  policy.max_strikes = 3;
  // A respawned process exits at load (files gone) — make the boot verdict
  // quick so three strikes land inside the test budget.
  policy.boot_budget_micros = 1'500'000;
  FleetSupervisor supervisor(&manager, router->get(), plan, policy);
  ASSERT_TRUE(supervisor.Start().ok());

  // Delete the pair files, then kill shard 0: every respawn dies at boot.
  ASSERT_EQ(::unlink((dir_ + "/src.emat").c_str()), 0);
  ASSERT_EQ(::unlink((dir_ + "/tgt.emat").c_str()), 0);
  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());

  Status verdict = supervisor.WaitRestarts(0, 1, 60'000'000);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kInternal);
  EXPECT_NE(verdict.message().find("permanently failed"), std::string::npos);

  const std::vector<ShardRecoveryStatus> ledger = supervisor.Ledger();
  EXPECT_TRUE(ledger[0].permanently_failed);
  EXPECT_EQ(ledger[0].restarts, 0u);
  EXPECT_GE(ledger[0].strikes, 3u);
  EXPECT_NE(supervisor.StatusJson().find("\"permanently_failed\": true"),
            std::string::npos);

  // The fleet soldiers on: shard 1 replicates every range, so reads still
  // answer around the retired shard.
  Result<WireResponse> still = (*router)->Query(MatchRequest());
  EXPECT_TRUE(still.ok()) << still.status().ToString();

  supervisor.Stop();
  router->reset();
  manager.StopAll();
}

}  // namespace
}  // namespace entmatcher
