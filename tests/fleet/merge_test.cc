// Gather-side merge rules: the two hard guarantees (no mixed-version
// splices, deterministic stable order) plus the corrupt-shard tripwires.

#include "fleet/merge.h"

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

RangePart Part(size_t begin, size_t end, uint64_t version,
               std::vector<int32_t> values, std::vector<float> scores = {}) {
  RangePart part;
  part.row_begin = begin;
  part.row_end = end;
  part.version = version;
  part.values = std::move(values);
  part.scores = std::move(scores);
  return part;
}

TEST(MergeTest, AssignmentsConcatenateByPosition) {
  Result<std::vector<int32_t>> merged = MergeAssignments(
      4, {Part(2, 4, 1, {30, 40}), Part(0, 2, 1, {10, 20})});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, (std::vector<int32_t>{10, 20, 30, 40}));
}

TEST(MergeTest, EmptyPartsIsUnavailable) {
  EXPECT_EQ(MergeAssignments(4, {}).status().code(),
            StatusCode::kUnavailable);
}

TEST(MergeTest, MixedVersionsRefused) {
  Result<std::vector<int32_t>> merged = MergeAssignments(
      4, {Part(0, 2, 1, {10, 20}), Part(2, 4, 2, {30, 40})});
  EXPECT_EQ(merged.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(merged.status().message().find("mixed snapshot versions"),
            std::string::npos);
}

TEST(MergeTest, UncoveredRowsRefused) {
  EXPECT_EQ(MergeAssignments(4, {Part(0, 2, 1, {10, 20})}).status().code(),
            StatusCode::kUnavailable);
}

TEST(MergeTest, OverlappingReplicasMustAgree) {
  // Same rows answered twice at the same version: fine when identical.
  Result<std::vector<int32_t>> merged = MergeAssignments(
      2, {Part(0, 2, 1, {10, 20}), Part(0, 2, 1, {10, 20})});
  ASSERT_TRUE(merged.ok());
  // A disagreement at the same version is a corrupt shard, not a choice.
  Result<std::vector<int32_t>> corrupt = MergeAssignments(
      2, {Part(0, 2, 1, {10, 20}), Part(0, 2, 1, {10, 99})});
  EXPECT_EQ(corrupt.status().code(), StatusCode::kInternal);
}

TEST(MergeTest, SizeMismatchIsInternal) {
  EXPECT_EQ(MergeAssignments(2, {Part(0, 2, 1, {10})}).status().code(),
            StatusCode::kInternal);
}

TEST(MergeTest, TopKMergesDisjointRanges) {
  // k_eff = 2; ranges [0,1) and [1,2).
  Result<std::vector<int32_t>> merged = MergeTopK(
      2, {Part(0, 1, 3, {5, 7}, {0.9f, 0.8f}),
          Part(1, 2, 3, {2, 4}, {0.6f, 0.5f})});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, (std::vector<int32_t>{5, 7, 2, 4}));
}

TEST(MergeTest, TopKOrdersByScoreDescIdAsc) {
  // Duplicate coverage of row 0 from two replicas with identical lists:
  // dedup keeps one copy; ties on score break ascending id.
  Result<std::vector<int32_t>> merged = MergeTopK(
      1, {Part(0, 1, 1, {9, 3}, {0.5f, 0.5f}),
          Part(0, 1, 1, {9, 3}, {0.5f, 0.5f})});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(*merged, (std::vector<int32_t>{3, 9}));
}

TEST(MergeTest, TopKRequiresScoresAndUniformK) {
  // Missing scores: ragged part.
  EXPECT_EQ(MergeTopK(1, {Part(0, 1, 1, {5, 7})}).status().code(),
            StatusCode::kInternal);
  // k disagrees between parts.
  EXPECT_EQ(MergeTopK(2, {Part(0, 1, 1, {5, 7}, {0.9f, 0.8f}),
                          Part(1, 2, 1, {2}, {0.6f})})
                .status()
                .code(),
            StatusCode::kInternal);
}

TEST(MergeTest, TopKMixedVersionsRefused) {
  EXPECT_EQ(MergeTopK(2, {Part(0, 1, 1, {5, 7}, {0.9f, 0.8f}),
                          Part(1, 2, 2, {2, 4}, {0.6f, 0.5f})})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

// Partial-coverage merges — the degrade policy's substrate. Uncovered rows
// hold -1, coverage lists the answered intervals, and the version guarantee
// is NOT relaxed.
TEST(MergePartialTest, AssignmentsFillUncoveredRowsWithSentinel) {
  Result<PartialMerge> merged = MergeAssignmentsPartial(
      6, {Part(0, 2, 1, {10, 20}), Part(4, 6, 1, {50, 60})});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->values, (std::vector<int32_t>{10, 20, -1, -1, 50, 60}));
  EXPECT_EQ(merged->coverage,
            (std::vector<std::pair<size_t, size_t>>{{0, 2}, {4, 6}}));
  EXPECT_FALSE(merged->complete);
}

TEST(MergePartialTest, FullCoverageReportsComplete) {
  Result<PartialMerge> merged = MergeAssignmentsPartial(
      4, {Part(0, 2, 1, {10, 20}), Part(2, 4, 1, {30, 40})});
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->complete);
  EXPECT_EQ(merged->coverage,
            (std::vector<std::pair<size_t, size_t>>{{0, 4}}));
}

TEST(MergePartialTest, ZeroCoverageStaysUnavailable) {
  // Degrade never fabricates an answer from nothing.
  EXPECT_EQ(MergeAssignmentsPartial(4, {}).status().code(),
            StatusCode::kUnavailable);
}

TEST(MergePartialTest, MixedVersionsStillRefused) {
  EXPECT_EQ(MergeAssignmentsPartial(
                4, {Part(0, 2, 1, {10, 20}), Part(2, 4, 2, {30, 40})})
                .status()
                .code(),
            StatusCode::kUnavailable);
}

TEST(MergePartialTest, ReplicaDisagreementStillInternal) {
  EXPECT_EQ(MergeAssignmentsPartial(
                4, {Part(0, 2, 1, {10, 20}), Part(0, 2, 1, {10, 99})})
                .status()
                .code(),
            StatusCode::kInternal);
}

TEST(MergePartialTest, TopKSkipsUncoveredRows) {
  // rows 0 and 2 covered, row 1 missing: k=2 slots for row 1 hold -1.
  Result<PartialMerge> merged = MergeTopKPartial(
      3, {Part(0, 1, 1, {5, 7}, {0.9f, 0.8f}),
          Part(2, 3, 1, {2, 4}, {0.6f, 0.5f})});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(merged->values, (std::vector<int32_t>{5, 7, -1, -1, 2, 4}));
  EXPECT_EQ(merged->coverage,
            (std::vector<std::pair<size_t, size_t>>{{0, 1}, {2, 3}}));
  EXPECT_FALSE(merged->complete);
}

}  // namespace
}  // namespace entmatcher
