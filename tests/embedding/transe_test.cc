#include "embedding/transe.h"

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "eval/ranking_metrics.h"

namespace entmatcher {
namespace {

KgPairDataset SmallDataset() {
  KgPairGeneratorConfig c;
  c.name = "transe-test";
  c.seed = 44;
  c.num_core_concepts = 300;
  c.avg_degree = 4.5;
  c.num_world_relations = 40;
  c.num_relations_source = 35;
  c.num_relations_target = 30;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TranseConfig FastConfig() {
  TranseConfig c;
  c.epochs = 60;  // enough for the tests, far from converged
  c.seed = 3;
  return c;
}

TEST(TranseTest, ShapesAndUnitNorms) {
  KgPairDataset d = SmallDataset();
  auto emb = ComputeTranseEmbeddings(d, FastConfig());
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(emb->source.rows(), d.source.num_entities());
  EXPECT_EQ(emb->target.rows(), d.target.num_entities());
  EXPECT_EQ(emb->dim(), FastConfig().dim);
  // Entity vectors are projected to the unit sphere.
  for (size_t e = 0; e < emb->source.rows(); ++e) {
    double sq = 0.0;
    for (float v : emb->source.Row(e)) sq += static_cast<double>(v) * v;
    ASSERT_NEAR(sq, 1.0, 1e-3) << "entity " << e;
  }
}

TEST(TranseTest, SeedPairsShareVectors) {
  KgPairDataset d = SmallDataset();
  auto emb = ComputeTranseEmbeddings(d, FastConfig());
  ASSERT_TRUE(emb.ok());
  for (const EntityPair& pair : d.split.train.pairs()) {
    for (size_t k = 0; k < emb->dim(); ++k) {
      ASSERT_EQ(emb->source.At(pair.source, k), emb->target.At(pair.target, k));
    }
  }
}

TEST(TranseTest, Deterministic) {
  KgPairDataset d = SmallDataset();
  auto a = ComputeTranseEmbeddings(d, FastConfig());
  auto b = ComputeTranseEmbeddings(d, FastConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->source.ApproxEquals(b->source, 0.0f));
}

TEST(TranseTest, CarriesAlignmentSignal) {
  KgPairDataset d = SmallDataset();
  TranseConfig c = FastConfig();
  c.epochs = 150;
  auto emb = ComputeTranseEmbeddings(d, c);
  ASSERT_TRUE(emb.ok());
  auto m = EvaluateEmbeddingRanking(d, *emb);
  ASSERT_TRUE(m.ok());
  // Far better than random (random Hits@10 ~ 10/210 = 0.048... use MRR).
  EXPECT_GT(m->hits_at_10, 0.1);
}

TEST(TranseTest, WeakerThanPropagationModels) {
  KgPairDataset d = SmallDataset();
  auto transe = ComputeTranseEmbeddings(d, FastConfig());
  auto rrea = ComputeStructuralEmbeddings(d, RreaModelConfig(3));
  ASSERT_TRUE(transe.ok() && rrea.ok());
  auto mt = EvaluateEmbeddingRanking(d, *transe);
  auto mr = EvaluateEmbeddingRanking(d, *rrea);
  ASSERT_TRUE(mt.ok() && mr.ok());
  EXPECT_LT(mt->hits_at_1, mr->hits_at_1);
}

TEST(TranseTest, Validation) {
  KgPairDataset d = SmallDataset();
  TranseConfig c = FastConfig();
  c.dim = 0;
  EXPECT_FALSE(ComputeTranseEmbeddings(d, c).ok());
  c = FastConfig();
  c.epochs = 0;
  EXPECT_FALSE(ComputeTranseEmbeddings(d, c).ok());
  c = FastConfig();
  c.learning_rate = 0.0;
  EXPECT_FALSE(ComputeTranseEmbeddings(d, c).ok());
  c = FastConfig();
  c.margin = -1.0;
  EXPECT_FALSE(ComputeTranseEmbeddings(d, c).ok());
}

}  // namespace
}  // namespace entmatcher
