#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/fusion.h"
#include "embedding/name_encoder.h"
#include "embedding/propagation.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "la/similarity.h"
#include "la/topk.h"

namespace entmatcher {
namespace {

KgPairDataset SmallDataset(uint64_t seed = 77) {
  KgPairGeneratorConfig c;
  c.name = "emb-test";
  c.seed = seed;
  c.num_core_concepts = 400;
  c.exclusive_fraction = 0.1;
  c.avg_degree = 4.5;
  c.num_world_relations = 60;
  c.num_relations_source = 50;
  c.num_relations_target = 45;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

// Greedy accuracy of embeddings on the test links (Hits@1).
double GreedyAccuracy(const KgPairDataset& d, const EmbeddingPair& emb) {
  const Matrix src = ExtractRows(emb.source, d.test_source_entities);
  const Matrix tgt = ExtractRows(emb.target, d.test_target_entities);
  auto sim = ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  EXPECT_TRUE(sim.ok());
  const auto argmax = RowArgmax(*sim);
  size_t correct = 0;
  for (size_t i = 0; i < argmax.size(); ++i) {
    if (d.split.test.Contains(d.test_source_entities[i],
                              d.test_target_entities[argmax[i]])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(argmax.size());
}

TEST(ExtractRowsTest, GathersRequestedRows) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}, {5, 6}});
  Matrix out = ExtractRows(m, {2, 0});
  ASSERT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.At(0, 0), 5.0f);
  EXPECT_EQ(out.At(1, 1), 2.0f);
}

TEST(PropagationTest, ShapesAndDeterminism) {
  KgPairDataset d = SmallDataset();
  PropagationConfig config = GcnModelConfig(3);
  auto a = ComputeStructuralEmbeddings(d, config);
  auto b = ComputeStructuralEmbeddings(d, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->source.rows(), d.source.num_entities());
  EXPECT_EQ(a->target.rows(), d.target.num_entities());
  EXPECT_EQ(a->dim(), config.dim);
  EXPECT_TRUE(a->source.ApproxEquals(b->source, 0.0f));
  EXPECT_TRUE(a->target.ApproxEquals(b->target, 0.0f));
}

TEST(PropagationTest, ConcatLayersWidensOutput) {
  KgPairDataset d = SmallDataset();
  PropagationConfig config = RreaModelConfig(3);
  auto emb = ComputeStructuralEmbeddings(d, config);
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(emb->dim(), config.dim * config.layers);
}

TEST(PropagationTest, EmbeddingsCarryAlignmentSignal) {
  KgPairDataset d = SmallDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(3));
  ASSERT_TRUE(emb.ok());
  // Far better than random (1/|targets| ~ 0.4%).
  EXPECT_GT(GreedyAccuracy(d, *emb), 0.05);
}

TEST(PropagationTest, RreaModelBeatsGcnModel) {
  KgPairDataset d = SmallDataset();
  auto gcn = ComputeStructuralEmbeddings(d, GcnModelConfig(3));
  auto rrea = ComputeStructuralEmbeddings(d, RreaModelConfig(3));
  ASSERT_TRUE(gcn.ok() && rrea.ok());
  EXPECT_GT(GreedyAccuracy(d, *rrea), GreedyAccuracy(d, *gcn));
}

TEST(PropagationTest, ValidatesConfig) {
  KgPairDataset d = SmallDataset();
  PropagationConfig c = GcnModelConfig(1);
  c.dim = 0;
  EXPECT_FALSE(ComputeStructuralEmbeddings(d, c).ok());
  c = GcnModelConfig(1);
  c.layers = 0;
  EXPECT_FALSE(ComputeStructuralEmbeddings(d, c).ok());
  c = GcnModelConfig(1);
  c.self_weight = 1.0;
  EXPECT_FALSE(ComputeStructuralEmbeddings(d, c).ok());
}

// ---- Name encoder ------------------------------------------------------------

TEST(NameEncoderTest, IdenticalNamesIdenticalVectors) {
  NameEncoderConfig config;
  std::vector<float> a(config.dim), b(config.dim);
  EncodeName("Barack Obama", config, a.data());
  EncodeName("Barack Obama", config, b.data());
  EXPECT_EQ(a, b);
}

TEST(NameEncoderTest, CaseInsensitive) {
  NameEncoderConfig config;
  std::vector<float> a(config.dim), b(config.dim);
  EncodeName("HELLO", config, a.data());
  EncodeName("hello", config, b.data());
  EXPECT_EQ(a, b);
}

TEST(NameEncoderTest, OutputIsUnitNorm) {
  NameEncoderConfig config;
  std::vector<float> v(config.dim);
  EncodeName("Some Entity", config, v.data());
  double sq = 0.0;
  for (float x : v) sq += static_cast<double>(x) * x;
  EXPECT_NEAR(sq, 1.0, 1e-5);
}

TEST(NameEncoderTest, SimilarNamesMoreSimilarThanDissimilar) {
  NameEncoderConfig config;
  std::vector<float> a(config.dim), b(config.dim), c(config.dim);
  EncodeName("Brandol Kemin", config, a.data());
  EncodeName("Brandol Kemins", config, b.data());  // near-duplicate
  EncodeName("Xyzzyq Vortran", config, c.data());  // unrelated
  auto dot = [&](const std::vector<float>& x, const std::vector<float>& y) {
    double s = 0.0;
    for (size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
    return s;
  };
  EXPECT_GT(dot(a, b), dot(a, c) + 0.3);
}

TEST(NameEncoderTest, SeedChangesHashing) {
  NameEncoderConfig c1;
  NameEncoderConfig c2;
  c2.seed = c1.seed + 1;
  std::vector<float> a(c1.dim), b(c2.dim);
  EncodeName("Entity", c1, a.data());
  EncodeName("Entity", c2, b.data());
  EXPECT_NE(a, b);
}

TEST(NameEncoderTest, DatasetEncoding) {
  KgPairDataset d = SmallDataset();
  NameEncoderConfig config;
  auto emb = ComputeNameEmbeddings(d, config);
  ASSERT_TRUE(emb.ok());
  EXPECT_EQ(emb->source.rows(), d.source.num_entities());
  EXPECT_EQ(emb->dim(), config.dim);
  // Name embeddings should carry strong alignment signal on this dataset.
  EXPECT_GT(GreedyAccuracy(d, *emb), 0.3);
}

TEST(NameEncoderTest, FailsWithoutNames) {
  KgPairDataset d;
  auto src = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  auto tgt = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  d.source = std::move(src).value();
  d.target = std::move(tgt).value();
  EXPECT_FALSE(ComputeNameEmbeddings(d, NameEncoderConfig()).ok());
}

TEST(NameEncoderTest, RejectsZeroDim) {
  KgPairDataset d = SmallDataset();
  NameEncoderConfig config;
  config.dim = 0;
  EXPECT_FALSE(ComputeNameEmbeddings(d, config).ok());
}

// ---- Fusion --------------------------------------------------------------------

TEST(FusionTest, CosineIsWeightedMixOfChannels) {
  EmbeddingPair a;
  a.source = Matrix::FromRows({{1, 0}});
  a.target = Matrix::FromRows({{1, 0}});
  EmbeddingPair b;
  b.source = Matrix::FromRows({{0, 1, 0}});
  b.target = Matrix::FromRows({{0, 0, 1}});
  // Channel a cosine = 1, channel b cosine = 0.
  auto fused = FuseEmbeddings(a, b, 1.0, 1.0);
  ASSERT_TRUE(fused.ok());
  auto sim =
      ComputeSimilarity(fused->source, fused->target, SimilarityMetric::kCosine);
  ASSERT_TRUE(sim.ok());
  EXPECT_NEAR(sim->At(0, 0), 0.5, 1e-5);  // (1*1 + 1*0) / (1+1)

  auto weighted = FuseEmbeddings(a, b, 1.0, 3.0);
  ASSERT_TRUE(weighted.ok());
  auto sim2 = ComputeSimilarity(weighted->source, weighted->target,
                                SimilarityMetric::kCosine);
  ASSERT_TRUE(sim2.ok());
  EXPECT_NEAR(sim2->At(0, 0), 1.0 / 10.0, 1e-5);  // 1/(1+9)
}

TEST(FusionTest, RejectsMismatchedRowCountsAndBadWeights) {
  EmbeddingPair a;
  a.source = Matrix(2, 3);
  a.target = Matrix(2, 3);
  EmbeddingPair b;
  b.source = Matrix(3, 3);
  b.target = Matrix(2, 3);
  EXPECT_FALSE(FuseEmbeddings(a, b, 1.0, 1.0).ok());
  b.source = Matrix(2, 5);
  EXPECT_TRUE(FuseEmbeddings(a, b, 1.0, 1.0).ok());  // dims may differ
  EXPECT_FALSE(FuseEmbeddings(a, b, -1.0, 1.0).ok());
  EXPECT_FALSE(FuseEmbeddings(a, b, 0.0, 0.0).ok());
}

// ---- Provider ------------------------------------------------------------------

TEST(ProviderTest, Prefixes) {
  EXPECT_STREQ(EmbeddingSettingPrefix(EmbeddingSetting::kGcnStruct), "G");
  EXPECT_STREQ(EmbeddingSettingPrefix(EmbeddingSetting::kRreaStruct), "R");
  EXPECT_STREQ(EmbeddingSettingPrefix(EmbeddingSetting::kNameOnly), "N");
  EXPECT_STREQ(EmbeddingSettingPrefix(EmbeddingSetting::kNameRrea), "NR");
}

TEST(ProviderTest, AllSettingsProduceEmbeddings) {
  KgPairDataset d = SmallDataset();
  for (EmbeddingSetting setting :
       {EmbeddingSetting::kGcnStruct, EmbeddingSetting::kRreaStruct,
        EmbeddingSetting::kNameOnly, EmbeddingSetting::kNameRrea}) {
    auto emb = ComputeEmbeddings(d, setting);
    ASSERT_TRUE(emb.ok());
    EXPECT_EQ(emb->source.rows(), d.source.num_entities());
    EXPECT_GT(emb->dim(), 0u);
  }
}

TEST(ProviderTest, FusionImprovesOverWeakerChannel) {
  KgPairDataset d = SmallDataset();
  auto gcn = ComputeEmbeddings(d, EmbeddingSetting::kGcnStruct);
  auto fused = ComputeEmbeddings(d, EmbeddingSetting::kNameRrea);
  ASSERT_TRUE(gcn.ok() && fused.ok());
  EXPECT_GT(GreedyAccuracy(d, *fused), GreedyAccuracy(d, *gcn));
}

}  // namespace
}  // namespace entmatcher
