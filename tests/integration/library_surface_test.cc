// Verifies the public library surface the README documents: every
// MatcherKind through RunMatching, every EmbeddingSetting through the
// provider, and the full dataset-directory + binary-embedding workflow the
// CLI tool is built on.

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/provider.h"
#include "eval/metrics.h"
#include "kg/dataset_io.h"
#include "la/matrix_io.h"
#include "matching/pipeline.h"

namespace entmatcher {
namespace {

class LibrarySurfaceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    KgPairGeneratorConfig c;
    c.name = "surface-test";
    c.seed = 61;
    c.num_core_concepts = 250;
    c.avg_degree = 4.0;
    c.num_world_relations = 30;
    c.num_relations_source = 25;
    c.num_relations_target = 22;
    auto d = GenerateKgPair(c);
    ASSERT_TRUE(d.ok());
    dataset_ = new KgPairDataset(std::move(d).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static KgPairDataset* dataset_;
};

KgPairDataset* LibrarySurfaceTest::dataset_ = nullptr;

TEST_F(LibrarySurfaceTest, EveryEmbeddingSettingWorksThroughProvider) {
  for (EmbeddingSetting setting :
       {EmbeddingSetting::kGcnStruct, EmbeddingSetting::kRreaStruct,
        EmbeddingSetting::kNameOnly, EmbeddingSetting::kNameRrea,
        EmbeddingSetting::kTranseStruct}) {
    auto emb = ComputeEmbeddings(*dataset_, setting);
    ASSERT_TRUE(emb.ok()) << EmbeddingSettingPrefix(setting);
    EXPECT_EQ(emb->source.rows(), dataset_->source.num_entities());
  }
}

TEST_F(LibrarySurfaceTest, EveryMatcherKindWorksThroughRunMatching) {
  auto emb = ComputeEmbeddings(*dataset_, EmbeddingSetting::kGcnStruct);
  ASSERT_TRUE(emb.ok());
  for (MatcherKind kind :
       {MatcherKind::kGreedy, MatcherKind::kHungarian,
        MatcherKind::kGaleShapley, MatcherKind::kGreedyOneToOne,
        MatcherKind::kMutualBest, MatcherKind::kRl}) {
    MatchOptions options;
    options.matcher = kind;
    options.rl.epochs = 3;
    options.rl.test_rollouts = 2;
    auto run = RunMatching(*dataset_, *emb, options);
    ASSERT_TRUE(run.ok()) << static_cast<int>(kind);
    EXPECT_EQ(run->assignment.size(), dataset_->test_source_entities.size());
    const EvalMetrics m =
        EvaluatePredictions(run->predicted, dataset_->split.test);
    EXPECT_GT(m.f1, 0.0) << static_cast<int>(kind);
  }
}

TEST_F(LibrarySurfaceTest, MutualBestHasHighestPrecision) {
  auto emb = ComputeEmbeddings(*dataset_, EmbeddingSetting::kRreaStruct);
  ASSERT_TRUE(emb.ok());
  MatchOptions greedy;
  MatchOptions mutual;
  mutual.matcher = MatcherKind::kMutualBest;
  auto greedy_run = RunMatching(*dataset_, *emb, greedy);
  auto mutual_run = RunMatching(*dataset_, *emb, mutual);
  ASSERT_TRUE(greedy_run.ok() && mutual_run.ok());
  const EvalMetrics gm =
      EvaluatePredictions(greedy_run->predicted, dataset_->split.test);
  const EvalMetrics mm =
      EvaluatePredictions(mutual_run->predicted, dataset_->split.test);
  EXPECT_GE(mm.precision, gm.precision);
  EXPECT_LE(mm.found, gm.found);  // abstention
}

TEST_F(LibrarySurfaceTest, CliWorkflowRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("entmatcher_surface_" + std::to_string(::getpid()));
  // 1. Save the dataset in the directory format.
  ASSERT_TRUE(SaveDatasetDir(*dataset_, dir.string()).ok());
  // 2. Compute and persist embeddings in the binary format.
  auto emb = ComputeEmbeddings(*dataset_, EmbeddingSetting::kRreaStruct);
  ASSERT_TRUE(emb.ok());
  const std::string src_path = (dir / "emb.src.emat").string();
  const std::string tgt_path = (dir / "emb.tgt.emat").string();
  ASSERT_TRUE(WriteMatrixBinary(emb->source, src_path).ok());
  ASSERT_TRUE(WriteMatrixBinary(emb->target, tgt_path).ok());
  // 3. Reload everything and match.
  auto reloaded = LoadDatasetDir(dir.string());
  auto src = ReadMatrixBinary(src_path);
  auto tgt = ReadMatrixBinary(tgt_path);
  ASSERT_TRUE(reloaded.ok() && src.ok() && tgt.ok());
  EmbeddingPair pair;
  pair.source = std::move(src).value();
  pair.target = std::move(tgt).value();
  auto run = RunMatching(*reloaded, pair, MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(run.ok());
  // 4. Identical result to the in-memory pipeline (same candidate order).
  auto direct = RunMatching(*dataset_, *emb, MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(run->assignment.target_of_source,
            direct->assignment.target_of_source);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace entmatcher
