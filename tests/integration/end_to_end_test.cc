// Cross-module integration tests: the full generate -> embed -> match ->
// evaluate pipeline, plus the qualitative relationships the paper's
// experiments rest on.

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/benchmarks.h"
#include "embedding/provider.h"
#include "eval/experiment.h"
#include "kg/io.h"

namespace entmatcher {
namespace {

// Shared fixtures (generated once — generation and embedding dominate the
// test budget).
class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto d = GenerateDataset("D-Z", /*scale=*/0.15);
    ASSERT_TRUE(d.ok());
    dataset_ = new KgPairDataset(std::move(d).value());
    auto gcn = ComputeEmbeddings(*dataset_, EmbeddingSetting::kGcnStruct);
    auto rrea = ComputeEmbeddings(*dataset_, EmbeddingSetting::kRreaStruct);
    ASSERT_TRUE(gcn.ok() && rrea.ok());
    gcn_ = new EmbeddingPair(std::move(gcn).value());
    rrea_ = new EmbeddingPair(std::move(rrea).value());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    delete gcn_;
    delete rrea_;
    dataset_ = nullptr;
    gcn_ = nullptr;
    rrea_ = nullptr;
  }

  static double F1(const EmbeddingPair& emb, AlgorithmPreset preset) {
    MatchOptions options = MakePreset(preset);
    options.rl.epochs = 20;
    auto r = RunExperimentWithOptions(*dataset_, emb, options,
                                      PresetName(preset));
    EXPECT_TRUE(r.ok());
    return r.ok() ? r->metrics.f1 : -1.0;
  }

  static KgPairDataset* dataset_;
  static EmbeddingPair* gcn_;
  static EmbeddingPair* rrea_;
};

KgPairDataset* EndToEndTest::dataset_ = nullptr;
EmbeddingPair* EndToEndTest::gcn_ = nullptr;
EmbeddingPair* EndToEndTest::rrea_ = nullptr;

TEST_F(EndToEndTest, AllAlgorithmsBeatRandomBaseline) {
  const double random_f1 =
      1.0 / static_cast<double>(dataset_->test_target_entities.size());
  for (AlgorithmPreset preset : MainPresets()) {
    EXPECT_GT(F1(*rrea_, preset), 10 * random_f1) << PresetName(preset);
  }
}

TEST_F(EndToEndTest, AdvancedAlgorithmsBeatDInf) {
  // The paper's headline observation (Table 4): every advanced algorithm
  // improves on the DInf baseline.
  const double dinf = F1(*rrea_, AlgorithmPreset::kDInf);
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kCsls, AlgorithmPreset::kRinf,
        AlgorithmPreset::kSinkhorn, AlgorithmPreset::kHungarian}) {
    EXPECT_GT(F1(*rrea_, preset), dinf) << PresetName(preset);
  }
  // SMat is not *guaranteed* to beat greedy on a single small instance
  // (stability != optimality); require it stays in DInf's neighborhood.
  EXPECT_GT(F1(*rrea_, AlgorithmPreset::kStableMatch), 0.9 * dinf);
}

TEST_F(EndToEndTest, RreaEmbeddingsBeatGcnForEveryAlgorithm) {
  // Paper: "using RREA ... can bring better performance compared with GCN".
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kSinkhorn}) {
    EXPECT_GT(F1(*rrea_, preset), F1(*gcn_, preset)) << PresetName(preset);
  }
}

TEST_F(EndToEndTest, RinfVariantsTradeQualityForCost) {
  // RInf-wr equals CSLS's decisions (Table 6); RInf-pb sits between.
  const double csls = F1(*gcn_, AlgorithmPreset::kCsls);
  const double wr = F1(*gcn_, AlgorithmPreset::kRinfWr);
  EXPECT_NEAR(wr, csls, 1e-9);
}

TEST_F(EndToEndTest, UnmatchableSettingHurtsGreedyPrecision) {
  auto plus = GenerateDataset("D-Z+", /*scale=*/0.15);
  ASSERT_TRUE(plus.ok());
  auto emb = ComputeEmbeddings(*plus, EmbeddingSetting::kRreaStruct);
  ASSERT_TRUE(emb.ok());

  auto dinf = RunExperiment(*plus, *emb, AlgorithmPreset::kDInf);
  auto hun = RunExperiment(*plus, *emb, AlgorithmPreset::kHungarian);
  ASSERT_TRUE(dinf.ok() && hun.ok());
  // Greedy aligns every unmatchable source, so precision < recall.
  EXPECT_LT(dinf->metrics.precision, dinf->metrics.recall);
  // Hungarian with dummy-node padding rejects some sources and wins.
  EXPECT_GT(hun->metrics.f1, dinf->metrics.f1);
}

TEST_F(EndToEndTest, NonOneToOneSettingCapsRecall) {
  auto mul = GenerateDataset("FB-MUL", /*scale=*/0.2);
  ASSERT_TRUE(mul.ok());
  auto emb = ComputeEmbeddings(*mul, EmbeddingSetting::kRreaStruct);
  ASSERT_TRUE(emb.ok());
  auto dinf = RunExperiment(*mul, *emb, AlgorithmPreset::kDInf);
  ASSERT_TRUE(dinf.ok());
  // One prediction per source cannot cover the multi-link gold set.
  EXPECT_LT(dinf->metrics.recall, 0.8);
  EXPECT_GT(dinf->metrics.gold, mul->split.test.SourceEntities().size());
}

TEST_F(EndToEndTest, DatasetRoundTripsThroughTsv) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("entmatcher_e2e_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string triples = (dir / "src.tsv").string();
  const std::string links = (dir / "links.tsv").string();
  ASSERT_TRUE(WriteTriplesTsv(dataset_->source, triples).ok());
  ASSERT_TRUE(WriteLinksTsv(dataset_->gold, links).ok());

  auto graph = ReadTriplesTsv(triples);
  auto gold = ReadLinksTsv(links);
  ASSERT_TRUE(graph.ok() && gold.ok());
  EXPECT_EQ(graph->triples().size(), dataset_->source.triples().size());
  EXPECT_EQ(gold->size(), dataset_->gold.size());
  std::filesystem::remove_all(dir);
}

TEST_F(EndToEndTest, MemoryAccountingOrdersAlgorithms) {
  // SMat's two rank tables and RInf's matrices must cost more workspace
  // than plain DInf (paper Fig. 5b ordering).
  // GCN embeddings (dim 64): the n x n score/rank tables dominate the
  // workspace, as they do at benchmark scale.
  MatchOptions dinf = MakePreset(AlgorithmPreset::kDInf);
  MatchOptions smat = MakePreset(AlgorithmPreset::kStableMatch);
  MatchOptions rinf = MakePreset(AlgorithmPreset::kRinf);
  auto r_dinf = RunMatching(*dataset_, *gcn_, dinf);
  auto r_smat = RunMatching(*dataset_, *gcn_, smat);
  auto r_rinf = RunMatching(*dataset_, *gcn_, rinf);
  ASSERT_TRUE(r_dinf.ok() && r_smat.ok() && r_rinf.ok());
  EXPECT_GT(r_smat->peak_workspace_bytes, r_dinf->peak_workspace_bytes);
  EXPECT_GT(r_rinf->peak_workspace_bytes, r_dinf->peak_workspace_bytes);
}

}  // namespace
}  // namespace entmatcher
