// HNSW and backend-facade tests: build validation, exact-rerank bit-identity,
// thread-count invariance, seeded determinism (rebuild and incremental-insert
// byte equality), EIDX2/EIDX1 serialization, and backend-aware signatures.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "la/similarity.h"
#include "la/sparse.h"
#include "matching/engine.h"
#include "matching/types.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// A pair where source row i is a noisy copy of target row i, so dense
/// argmax recall against the identity alignment is a meaningful ANN metric.
Matrix NoisyCopy(const Matrix& base, double noise, uint64_t seed) {
  Rng rng(seed);
  Matrix m(base.rows(), base.cols());
  for (size_t r = 0; r < base.rows(); ++r) {
    for (size_t c = 0; c < base.cols(); ++c) {
      m.At(r, c) = base.At(r, c) +
                   static_cast<float>(noise * rng.NextGaussian());
    }
  }
  return m;
}

Matrix FirstRows(const Matrix& m, size_t n) {
  Matrix head(n, m.cols());
  for (size_t r = 0; r < n; ++r) {
    std::memcpy(head.Row(r).data(), m.Row(r).data(),
                m.cols() * sizeof(float));
  }
  return head;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

bool SameEntries(const SparseScores& a, const SparseScores& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) {
    return false;
  }
  if (a.row_offsets() != b.row_offsets()) return false;
  return std::memcmp(a.values(), b.values(), a.nnz() * sizeof(float)) == 0 &&
         std::memcmp(a.col_indices(), b.col_indices(),
                     a.nnz() * sizeof(uint32_t)) == 0;
}

CandidateIndexOptions HnswOptions(size_t max_links = 8,
                                  size_t ef_construction = 48,
                                  uint64_t seed = 13) {
  CandidateIndexOptions options;
  options.backend = CandidateBackendKind::kHnsw;
  options.hnsw_max_links = max_links;
  options.hnsw_ef_construction = ef_construction;
  options.seed = seed;
  return options;
}

class HnswIndexTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  size_t previous_threads_;
};

TEST_F(HnswIndexTest, BuildValidatesShapeAndKnobs) {
  EXPECT_FALSE(CandidateIndex::Build(Matrix(), HnswOptions()).ok());
  const Matrix tgt = RandomMatrix(20, 8, 3);
  EXPECT_FALSE(CandidateIndex::Build(tgt, HnswOptions(/*max_links=*/1)).ok());
  EXPECT_FALSE(
      CandidateIndex::Build(tgt, HnswOptions(/*max_links=*/300)).ok());
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index->backend(), CandidateBackendKind::kHnsw);
  EXPECT_EQ(index->num_targets(), 20u);
  EXPECT_EQ(index->num_lists(), 0u);  // IVF-only accessor
}

// The facade reranks every HNSW proposal with the exact metric kernel, so
// each emitted sparse entry is bitwise the dense score of its cell — the
// same contract the IVF backend ships with.
TEST_F(HnswIndexTest, EntriesAreExactDenseScores) {
  const Matrix src = RandomMatrix(23, 10, 7);
  const Matrix tgt = RandomMatrix(31, 10, 8);
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(index.ok());

  for (SimilarityMetric metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean,
        SimilarityMetric::kNegManhattan}) {
    Result<Matrix> dense = ComputeSimilarity(src, tgt, metric);
    ASSERT_TRUE(dense.ok());
    Result<SparseScores> sparse =
        index->SparseSimilarity(src, tgt, metric, /*num_candidates=*/5,
                                /*nprobe=*/2);
    ASSERT_TRUE(sparse.ok());
    ASSERT_TRUE(sparse->Validate().ok());
    for (size_t i = 0; i < sparse->rows(); ++i) {
      auto values = sparse->RowValues(i);
      auto cols = sparse->RowCols(i);
      EXPECT_LE(values.size(), 5u);
      EXPECT_FALSE(values.empty()) << "row " << i << " starved";
      for (size_t p = 0; p < values.size(); ++p) {
        const float expected = dense->Row(i)[cols[p]];
        EXPECT_EQ(std::memcmp(&values[p], &expected, sizeof(float)), 0)
            << "row " << i << " col " << cols[p];
      }
    }
  }
}

TEST_F(HnswIndexTest, FillIsThreadCountInvariant) {
  const Matrix src = RandomMatrix(33, 8, 11);
  const Matrix tgt = RandomMatrix(29, 8, 12);
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(index.ok());

  SetNumThreads(1);
  Result<SparseScores> serial =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  ASSERT_TRUE(serial.ok());
  SetNumThreads(7);
  Result<SparseScores> parallel =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(SameEntries(*serial, *parallel));
}

// Same seed, same data => byte-identical serialized graph; a different seed
// must actually change the level assignment.
TEST_F(HnswIndexTest, BuildIsDeterministicGivenTheSeed) {
  const Matrix tgt = RandomMatrix(60, 8, 21);
  Result<CandidateIndex> a = CandidateIndex::Build(tgt, HnswOptions());
  Result<CandidateIndex> b = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const std::string path_a = ::testing::TempDir() + "/hnsw_a.eidx";
  const std::string path_b = ::testing::TempDir() + "/hnsw_b.eidx";
  ASSERT_TRUE(a->Save(path_a).ok());
  ASSERT_TRUE(b->Save(path_b).ok());
  EXPECT_EQ(FileBytes(path_a), FileBytes(path_b));

  Result<CandidateIndex> reseeded = CandidateIndex::Build(
      tgt, HnswOptions(/*max_links=*/8, /*ef_construction=*/48, /*seed=*/99));
  ASSERT_TRUE(reseeded.ok());
  ASSERT_TRUE(reseeded->Save(path_b).ok());
  EXPECT_NE(FileBytes(path_a), FileBytes(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

// The incremental-insert contract: because a node's level is a pure function
// of (seed, id) and insertion replays in ascending id order, Build(n) +
// Insert(k appended rows) is not merely as good as Build(n + k) — it is the
// SAME graph, byte for byte, and so are its query answers.
TEST_F(HnswIndexTest, IncrementalInsertEqualsFromScratchBuild) {
  const size_t total = 80;
  const size_t head = 60;
  const Matrix tgt = RandomMatrix(total, 8, 31);
  const Matrix src = RandomMatrix(25, 8, 32);

  Result<CandidateIndex> grown =
      CandidateIndex::Build(FirstRows(tgt, head), HnswOptions());
  ASSERT_TRUE(grown.ok());
  ASSERT_TRUE(grown->Insert(tgt).ok());
  EXPECT_EQ(grown->num_targets(), total);

  Result<CandidateIndex> scratch = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(scratch.ok());

  const std::string grown_path = ::testing::TempDir() + "/hnsw_grown.eidx";
  const std::string scratch_path = ::testing::TempDir() + "/hnsw_scratch.eidx";
  ASSERT_TRUE(grown->Save(grown_path).ok());
  ASSERT_TRUE(scratch->Save(scratch_path).ok());
  EXPECT_EQ(FileBytes(grown_path), FileBytes(scratch_path));
  std::remove(grown_path.c_str());
  std::remove(scratch_path.c_str());

  Result<SparseScores> from_grown =
      grown->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  Result<SparseScores> from_scratch =
      scratch->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  ASSERT_TRUE(from_grown.ok());
  ASSERT_TRUE(from_scratch.ok());
  EXPECT_TRUE(SameEntries(*from_grown, *from_scratch));

  // Inserting nothing is a no-op; shrinking or reshaping is refused.
  ASSERT_TRUE(grown->Insert(tgt).ok());
  EXPECT_EQ(grown->num_targets(), total);
  EXPECT_FALSE(grown->Insert(FirstRows(tgt, head)).ok());
  EXPECT_FALSE(grown->Insert(RandomMatrix(total + 1, 9, 33)).ok());
}

// IVF insert does not promise byte equality with a re-clustered build (the
// centroids are frozen), but it must keep every invariant: appended ids land
// in exactly one list and emitted entries stay exact.
TEST_F(HnswIndexTest, IvfInsertKeepsPartitionAndExactness) {
  const size_t total = 70;
  const size_t head = 50;
  const Matrix tgt = RandomMatrix(total, 8, 41);
  const Matrix src = RandomMatrix(20, 8, 42);
  CandidateIndexOptions options;
  options.num_lists = 5;
  Result<CandidateIndex> index =
      CandidateIndex::Build(FirstRows(tgt, head), options);
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(index->Insert(tgt).ok());
  EXPECT_EQ(index->num_targets(), total);

  std::vector<size_t> owner_count(total, 0);
  for (size_t l = 0; l < index->num_lists(); ++l) {
    uint32_t previous = 0;
    bool first = true;
    for (uint32_t id : index->List(l)) {
      ASSERT_LT(id, total);
      ++owner_count[id];
      if (!first) {
        EXPECT_LT(previous, id) << "list " << l << " not ascending";
      }
      previous = id;
      first = false;
    }
  }
  for (size_t j = 0; j < total; ++j) {
    EXPECT_EQ(owner_count[j], 1u) << "target " << j;
  }

  Result<Matrix> dense =
      ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(dense.ok());
  Result<SparseScores> sparse =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 3);
  ASSERT_TRUE(sparse.ok());
  for (size_t i = 0; i < sparse->rows(); ++i) {
    auto values = sparse->RowValues(i);
    auto cols = sparse->RowCols(i);
    for (size_t p = 0; p < values.size(); ++p) {
      const float expected = dense->Row(i)[cols[p]];
      EXPECT_EQ(std::memcmp(&values[p], &expected, sizeof(float)), 0);
    }
  }
}

// On an identity-aligned noisy pair the graph search must put the dense
// argmax into nearly every candidate list — the recall the bench gates.
TEST_F(HnswIndexTest, RecallOnAlignedPairIsHigh) {
  const Matrix tgt = RandomMatrix(400, 16, 51);
  const Matrix src = NoisyCopy(tgt, /*noise=*/0.05, 52);
  Result<CandidateIndex> index = CandidateIndex::Build(
      tgt, HnswOptions(/*max_links=*/8, /*ef_construction=*/64));
  ASSERT_TRUE(index.ok());
  Result<Matrix> dense =
      ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(dense.ok());
  Result<SparseScores> sparse =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine,
                              /*num_candidates=*/10, /*nprobe=*/1);
  ASSERT_TRUE(sparse.ok());

  size_t hits = 0;
  for (size_t i = 0; i < src.rows(); ++i) {
    size_t argmax = 0;
    for (size_t j = 1; j < tgt.rows(); ++j) {
      if (dense->At(i, j) > dense->At(i, argmax)) argmax = j;
    }
    for (uint32_t col : sparse->RowCols(i)) {
      if (col == argmax) {
        ++hits;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(src.rows()), 0.95)
      << hits << "/" << src.rows();
}

TEST_F(HnswIndexTest, SaveLoadRoundTripEidx2) {
  const Matrix src = RandomMatrix(17, 8, 61);
  const Matrix tgt = RandomMatrix(45, 8, 62);
  for (CandidateBackendKind kind :
       {CandidateBackendKind::kExact, CandidateBackendKind::kIvf,
        CandidateBackendKind::kHnsw}) {
    CandidateIndexOptions options = HnswOptions();
    options.backend = kind;
    Result<CandidateIndex> built = CandidateIndex::Build(tgt, options);
    ASSERT_TRUE(built.ok()) << CandidateBackendName(kind);
    const std::string path = ::testing::TempDir() + "/round_trip2.eidx";
    ASSERT_TRUE(built->Save(path).ok());
    Result<CandidateIndex> loaded = CandidateIndex::Load(path);
    ASSERT_TRUE(loaded.ok())
        << CandidateBackendName(kind) << ": " << loaded.status().ToString();
    EXPECT_EQ(loaded->backend(), kind);
    EXPECT_EQ(loaded->num_targets(), built->num_targets());
    EXPECT_EQ(loaded->dim(), built->dim());
    Result<SparseScores> before =
        built->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
    Result<SparseScores> after =
        loaded->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_TRUE(SameEntries(*before, *after)) << CandidateBackendName(kind);
    std::remove(path.c_str());
  }
}

// EIDX1 files predate the backend tag and must keep loading as IVF.
TEST_F(HnswIndexTest, LegacyEidx1LoadsAsIvf) {
  const Matrix src = RandomMatrix(15, 8, 71);
  const Matrix tgt = RandomMatrix(30, 8, 72);
  CandidateIndexOptions options;
  options.num_lists = 4;
  Result<CandidateIndex> built = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(built.ok());
  const std::string path = ::testing::TempDir() + "/legacy.eidx";
  ASSERT_TRUE(built->SaveAsEidx1(path).ok());
  Result<CandidateIndex> loaded = CandidateIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->backend(), CandidateBackendKind::kIvf);
  EXPECT_EQ(loaded->num_lists(), built->num_lists());
  Result<SparseScores> before =
      built->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
  Result<SparseScores> after =
      loaded->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(SameEntries(*before, *after));
  std::remove(path.c_str());

  // The legacy container has no tag byte to put a graph in.
  Result<CandidateIndex> hnsw = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(hnsw.ok());
  Result<CandidateIndex> exact = [&] {
    CandidateIndexOptions exact_options;
    exact_options.backend = CandidateBackendKind::kExact;
    return CandidateIndex::Build(tgt, exact_options);
  }();
  ASSERT_TRUE(exact.ok());
  EXPECT_FALSE(hnsw->SaveAsEidx1(path).ok());
  EXPECT_FALSE(exact->SaveAsEidx1(path).ok());
}

TEST_F(HnswIndexTest, LoadRejectsCorruptEidx2) {
  const Matrix tgt = RandomMatrix(40, 8, 81);
  Result<CandidateIndex> built = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(built.ok());
  const std::string full = ::testing::TempDir() + "/hnsw_full.eidx";
  ASSERT_TRUE(built->Save(full).ok());
  std::string bytes = FileBytes(full);
  ASSERT_GT(bytes.size(), 16u);

  // Unknown backend tag (byte 12: after magic + uint64 version).
  const std::string bad_tag = ::testing::TempDir() + "/hnsw_bad_tag.eidx";
  {
    std::string mutated = bytes;
    mutated[12] = static_cast<char>(0x7F);
    std::ofstream out(bad_tag, std::ios::binary);
    out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
  }
  EXPECT_FALSE(CandidateIndex::Load(bad_tag).ok());
  std::remove(bad_tag.c_str());

  // Truncations at several depths: header, payload header, mid-graph.
  for (size_t keep : {size_t{8}, size_t{13}, size_t{40}, bytes.size() / 2}) {
    const std::string truncated = ::testing::TempDir() + "/hnsw_trunc.eidx";
    {
      std::ofstream out(truncated, std::ios::binary);
      out.write(bytes.data(), static_cast<std::streamsize>(keep));
    }
    EXPECT_FALSE(CandidateIndex::Load(truncated).ok()) << "keep=" << keep;
    std::remove(truncated.c_str());
  }
  std::remove(full.c_str());
}

// The exact backend proposes every target, so the sparse result with
// num_candidates = m reproduces the dense similarity bit for bit.
TEST_F(HnswIndexTest, ExactBackendReproducesDenseSimilarity) {
  const Matrix src = RandomMatrix(19, 6, 91);
  const Matrix tgt = RandomMatrix(27, 6, 92);
  CandidateIndexOptions options;
  options.backend = CandidateBackendKind::kExact;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(index.ok());
  Result<Matrix> dense =
      ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(dense.ok());
  Result<SparseScores> sparse = index->SparseSimilarity(
      src, tgt, SimilarityMetric::kCosine, tgt.rows(), 1);
  ASSERT_TRUE(sparse.ok());
  ASSERT_EQ(sparse->nnz(), src.rows() * tgt.rows());
  const Matrix round_trip = sparse->ToDense(0.0f);
  EXPECT_EQ(std::memcmp(round_trip.data(), dense->data(), dense->ByteSize()),
            0);
}

// The score signature must key on the knob the backend actually reads:
// ef for HNSW, nprobe for IVF, neither for exact.
TEST_F(HnswIndexTest, ScoreSignatureKeysOnTheActiveKnob) {
  const Matrix tgt = RandomMatrix(30, 8, 95);
  Result<CandidateIndex> hnsw = CandidateIndex::Build(tgt, HnswOptions());
  ASSERT_TRUE(hnsw.ok());
  CandidateIndexOptions ivf_options;
  Result<CandidateIndex> ivf = CandidateIndex::Build(tgt, ivf_options);
  ASSERT_TRUE(ivf.ok());

  MatchOptions base = MakePreset(AlgorithmPreset::kCsls);
  base.num_candidates = 5;

  MatchOptions hnsw_a = base;
  hnsw_a.candidate_index = &*hnsw;
  MatchOptions hnsw_b = hnsw_a;
  hnsw_b.index_nprobe = 77;  // IVF knob: ignored by the graph backend
  EXPECT_TRUE(ScoreSignature::Of(hnsw_a) == ScoreSignature::Of(hnsw_b));
  MatchOptions hnsw_c = hnsw_a;
  hnsw_c.index_ef = hnsw_a.index_ef + 32;
  EXPECT_FALSE(ScoreSignature::Of(hnsw_a) == ScoreSignature::Of(hnsw_c));

  MatchOptions ivf_a = base;
  ivf_a.candidate_index = &*ivf;
  MatchOptions ivf_b = ivf_a;
  ivf_b.index_ef = 999;  // HNSW knob: ignored by IVF
  EXPECT_TRUE(ScoreSignature::Of(ivf_a) == ScoreSignature::Of(ivf_b));
  MatchOptions ivf_c = ivf_a;
  ivf_c.index_nprobe = ivf_a.index_nprobe + 1;
  EXPECT_FALSE(ScoreSignature::Of(ivf_a) == ScoreSignature::Of(ivf_c));

  // Engine validation mirrors the split: only the active knob must be >= 1.
  const Matrix src = RandomMatrix(10, 8, 96);
  MatchOptions hnsw_no_ef = hnsw_a;
  hnsw_no_ef.index_ef = 0;
  hnsw_no_ef.index_nprobe = 4;
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, hnsw_no_ef);
  ASSERT_TRUE(engine.ok());
  Result<Assignment> rejected = engine->Match(hnsw_no_ef);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  MatchOptions ivf_no_ef = ivf_a;
  ivf_no_ef.index_ef = 0;  // stray zero on the inactive knob is fine
  EXPECT_TRUE(engine->Match(ivf_no_ef).ok());
}

}  // namespace
}  // namespace entmatcher
