// Backend parity: the approximation contract must hold for every candidate
// backend, not just IVF. Whatever cells a backend emits, their raw scores are
// bitwise the dense similarity cells — for every sparse-capable preset's
// metric, at every kernel tier, at 1 and 7 threads — and the exact backend's
// complete lists reproduce the whole dense pipeline (transforms + matchers)
// bit for bit, mirroring the IVF suite in sparse_match_test.cc.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "la/kernels/dispatch.h"
#include "la/similarity.h"
#include "la/sparse.h"
#include "matching/engine.h"
#include "matching/pipeline.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::vector<AlgorithmPreset> SparseCapablePresets() {
  return {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf, AlgorithmPreset::kRinfWr,
          AlgorithmPreset::kRinfPb};
}

std::vector<MatcherKind> SparseCapableMatchers() {
  return {MatcherKind::kGreedy, MatcherKind::kGreedyOneToOne,
          MatcherKind::kMutualBest};
}

std::vector<KernelTier> AvailableTiers() {
  std::vector<KernelTier> tiers = {KernelTier::kScalar};
  for (KernelTier tier :
       {KernelTier::kAvx2, KernelTier::kAvx512, KernelTier::kNeon}) {
    if (KernelTierAvailable(tier)) tiers.push_back(tier);
  }
  return tiers;
}

bool SameEntries(const SparseScores& a, const SparseScores& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) {
    return false;
  }
  if (a.row_offsets() != b.row_offsets()) return false;
  return std::memcmp(a.values(), b.values(), a.nnz() * sizeof(float)) == 0 &&
         std::memcmp(a.col_indices(), b.col_indices(),
                     a.nnz() * sizeof(uint32_t)) == 0;
}

MatchOptions WithIndex(MatchOptions options, const CandidateIndex* index,
                       size_t candidates) {
  options.candidate_index = index;
  options.num_candidates = candidates;
  return options;
}

class BackendParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_threads_ = GetNumThreads();
    previous_tier_ = ActiveKernelTier();
  }
  void TearDown() override {
    SetNumThreads(previous_threads_);
    ASSERT_TRUE(SetKernelTier(previous_tier_).ok());
  }

 private:
  size_t previous_threads_;
  KernelTier previous_tier_;
};

// Every entry the graph emits carries the exact dense score of its cell, for
// each preset's metric, under every kernel tier and both thread counts. The
// probe itself is scalar-float and tier-independent, so the emitted id sets
// must also agree across tiers.
TEST_F(BackendParityTest, HnswEntriesBitIdenticalToDenseEverywhere) {
  const Matrix src = RandomMatrix(35, 12, 201);
  const Matrix tgt = RandomMatrix(43, 12, 202);
  CandidateIndexOptions index_options;
  index_options.backend = CandidateBackendKind::kHnsw;
  index_options.hnsw_max_links = 8;
  index_options.hnsw_ef_construction = 48;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());

  for (KernelTier tier : AvailableTiers()) {
    ASSERT_TRUE(SetKernelTier(tier).ok());
    for (AlgorithmPreset preset : SparseCapablePresets()) {
      const SimilarityMetric metric = MakePreset(preset).metric;
      Result<Matrix> dense = ComputeSimilarity(src, tgt, metric);
      ASSERT_TRUE(dense.ok());

      SetNumThreads(1);
      Result<SparseScores> serial = index->SparseSimilarity(
          src, tgt, metric, /*num_candidates=*/7, /*nprobe=*/1);
      ASSERT_TRUE(serial.ok())
          << KernelTierName(tier) << "/" << PresetName(preset);
      ASSERT_TRUE(serial->Validate().ok());
      SetNumThreads(7);
      Result<SparseScores> parallel = index->SparseSimilarity(
          src, tgt, metric, /*num_candidates=*/7, /*nprobe=*/1);
      ASSERT_TRUE(parallel.ok());
      EXPECT_TRUE(SameEntries(*serial, *parallel))
          << KernelTierName(tier) << "/" << PresetName(preset)
          << ": thread count changed the emitted entries";

      for (size_t i = 0; i < serial->rows(); ++i) {
        auto values = serial->RowValues(i);
        auto cols = serial->RowCols(i);
        ASSERT_FALSE(values.empty())
            << KernelTierName(tier) << "/" << PresetName(preset) << " row "
            << i << " starved";
        for (size_t p = 0; p < values.size(); ++p) {
          const float expected = dense->Row(i)[cols[p]];
          ASSERT_EQ(std::memcmp(&values[p], &expected, sizeof(float)), 0)
              << KernelTierName(tier) << "/" << PresetName(preset) << " cell ("
              << i << ", " << cols[p] << ")";
        }
      }
    }
  }
}

// End-to-end through the engine: with an HNSW index the transformed sparse
// batch and every matcher's assignment are invariant to the thread count.
TEST_F(BackendParityTest, HnswBatchesThreadCountInvariantForEveryPreset) {
  const Matrix src = RandomMatrix(39, 10, 211);
  const Matrix tgt = RandomMatrix(45, 10, 212);
  CandidateIndexOptions index_options;
  index_options.backend = CandidateBackendKind::kHnsw;
  index_options.hnsw_max_links = 8;
  index_options.hnsw_ef_construction = 48;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());

  for (AlgorithmPreset preset : SparseCapablePresets()) {
    const MatchOptions options =
        WithIndex(MakePreset(preset), &*index, /*candidates=*/6);
    Result<MatchEngine> engine = MatchEngine::Create(src, tgt, options);
    ASSERT_TRUE(engine.ok());

    SetNumThreads(1);
    Result<MatchEngine::ScoredBatch> serial = engine->BeginBatch(options);
    ASSERT_TRUE(serial.ok()) << PresetName(preset);
    ASSERT_TRUE(serial->is_sparse());
    SetNumThreads(7);
    Result<MatchEngine::ScoredBatch> parallel = engine->BeginBatch(options);
    ASSERT_TRUE(parallel.ok()) << PresetName(preset);
    EXPECT_TRUE(
        SameEntries(serial->sparse_scores(), parallel->sparse_scores()))
        << PresetName(preset);

    for (MatcherKind matcher : SparseCapableMatchers()) {
      MatchOptions match_options = options;
      match_options.matcher = matcher;
      SetNumThreads(1);
      Result<Assignment> a = serial->Match(match_options);
      SetNumThreads(7);
      Result<Assignment> b = parallel->Match(match_options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a->target_of_source, b->target_of_source)
          << PresetName(preset);
    }
  }
}

// The exact backend proposes all m targets, so — like IVF with complete
// lists — the whole sparse pipeline must reproduce the dense one bit for
// bit: transformed values AND matcher decisions, at both thread counts.
TEST_F(BackendParityTest, ExactBackendBitIdenticalToDensePipeline) {
  const Matrix src = RandomMatrix(41, 12, 221);
  const Matrix tgt = RandomMatrix(37, 12, 222);
  CandidateIndexOptions index_options;
  index_options.backend = CandidateBackendKind::kExact;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());

  for (size_t threads : {1u, 7u}) {
    SetNumThreads(threads);
    for (AlgorithmPreset preset : SparseCapablePresets()) {
      const MatchOptions dense_options = MakePreset(preset);
      const MatchOptions sparse_options =
          WithIndex(dense_options, &*index, tgt.rows());

      Result<MatchEngine> engine =
          MatchEngine::Create(src, tgt, dense_options);
      ASSERT_TRUE(engine.ok());
      Result<Matrix> dense_scores = engine->TransformedScores(dense_options);
      ASSERT_TRUE(dense_scores.ok()) << PresetName(preset);

      Result<MatchEngine::ScoredBatch> batch =
          engine->BeginBatch(sparse_options);
      ASSERT_TRUE(batch.ok()) << PresetName(preset);
      ASSERT_TRUE(batch->is_sparse());
      const SparseScores& sparse = batch->sparse_scores();
      ASSERT_EQ(sparse.nnz(), src.rows() * tgt.rows());
      const Matrix expanded = sparse.ToDense(0.0f);
      EXPECT_EQ(std::memcmp(expanded.data(), dense_scores->data(),
                            dense_scores->ByteSize()),
                0)
          << PresetName(preset) << " at " << threads << " threads";

      for (MatcherKind matcher : SparseCapableMatchers()) {
        MatchOptions dense_match = dense_options;
        dense_match.matcher = matcher;
        Result<Assignment> expected = MatchScores(*dense_scores, dense_match);
        ASSERT_TRUE(expected.ok());
        MatchOptions sparse_match = sparse_options;
        sparse_match.matcher = matcher;
        Result<Assignment> actual = batch->Match(sparse_match);
        ASSERT_TRUE(actual.ok());
        EXPECT_EQ(actual->target_of_source, expected->target_of_source)
            << PresetName(preset);
      }
    }
  }
}

}  // namespace
}  // namespace entmatcher
