#include "index/candidate_index.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/memory_tracker.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "la/similarity.h"
#include "la/sparse.h"

namespace entmatcher {
namespace {

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

bool SameEntries(const SparseScores& a, const SparseScores& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz()) {
    return false;
  }
  if (a.row_offsets() != b.row_offsets()) return false;
  return std::memcmp(a.values(), b.values(), a.nnz() * sizeof(float)) == 0 &&
         std::memcmp(a.col_indices(), b.col_indices(),
                     a.nnz() * sizeof(uint32_t)) == 0;
}

class CandidateIndexTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  size_t previous_threads_;
};

TEST_F(CandidateIndexTest, BuildPartitionsEveryTarget) {
  const Matrix tgt = RandomMatrix(64, 12, 3);
  CandidateIndexOptions options;
  options.num_lists = 6;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_targets(), 64u);
  EXPECT_EQ(index->num_lists(), 6u);

  std::vector<bool> seen(64, false);
  for (size_t l = 0; l < index->num_lists(); ++l) {
    uint32_t previous = 0;
    bool first = true;
    for (uint32_t id : index->List(l)) {
      ASSERT_LT(id, 64u);
      EXPECT_FALSE(seen[id]) << "target " << id << " in two lists";
      seen[id] = true;
      if (!first) {
        EXPECT_LT(previous, id) << "list " << l << " not ascending";
      }
      previous = id;
      first = false;
    }
  }
  for (size_t j = 0; j < seen.size(); ++j) {
    EXPECT_TRUE(seen[j]) << "target " << j << " in no list";
  }

  const CandidateListStats stats = index->Stats();
  EXPECT_EQ(stats.num_lists, 6u);
  EXPECT_EQ(stats.num_targets, 64u);
  EXPECT_DOUBLE_EQ(stats.mean_list_size, 64.0 / 6.0);
  size_t histogram_total = 0;
  for (size_t count : stats.size_histogram) histogram_total += count;
  EXPECT_EQ(histogram_total, 6u);
}

TEST_F(CandidateIndexTest, AutoListCountAndValidation) {
  const Matrix tgt = RandomMatrix(100, 8, 5);
  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());
  EXPECT_EQ(index->num_lists(), 10u);  // ~sqrt(100)

  EXPECT_FALSE(CandidateIndex::Build(Matrix(), CandidateIndexOptions()).ok());
  CandidateIndexOptions bad;
  bad.kmeans_iterations = 0;
  EXPECT_FALSE(CandidateIndex::Build(tgt, bad).ok());
  CandidateIndexOptions too_many;
  too_many.num_lists = 7;
  const Matrix tiny = RandomMatrix(3, 8, 6);
  Result<CandidateIndex> clamped = CandidateIndex::Build(tiny, too_many);
  ASSERT_TRUE(clamped.ok());
  EXPECT_LE(clamped->num_lists(), 3u);
}

// The rerank is exact: every emitted entry is bitwise the dense similarity
// of its cell, for every metric — the index only decides which cells exist.
TEST_F(CandidateIndexTest, EntriesAreExactDenseScores) {
  const Matrix src = RandomMatrix(23, 10, 7);
  const Matrix tgt = RandomMatrix(31, 10, 8);
  CandidateIndexOptions options;
  options.num_lists = 4;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(index.ok());

  for (SimilarityMetric metric :
       {SimilarityMetric::kCosine, SimilarityMetric::kNegEuclidean,
        SimilarityMetric::kNegManhattan}) {
    Result<Matrix> dense = ComputeSimilarity(src, tgt, metric);
    ASSERT_TRUE(dense.ok());
    Result<SparseScores> sparse =
        index->SparseSimilarity(src, tgt, metric, /*num_candidates=*/5,
                                /*nprobe=*/2);
    ASSERT_TRUE(sparse.ok());
    ASSERT_TRUE(sparse->Validate().ok());
    for (size_t i = 0; i < sparse->rows(); ++i) {
      auto values = sparse->RowValues(i);
      auto cols = sparse->RowCols(i);
      EXPECT_LE(values.size(), 5u);
      for (size_t p = 0; p < values.size(); ++p) {
        const float expected = dense->Row(i)[cols[p]];
        EXPECT_EQ(std::memcmp(&values[p], &expected, sizeof(float)), 0)
            << "row " << i << " col " << cols[p];
      }
    }
  }
}

// Probing every list with row-width m degenerates to the dense similarity:
// complete lists, every cell present, bitwise equal.
TEST_F(CandidateIndexTest, CompleteListsReproduceDenseSimilarity) {
  const Matrix src = RandomMatrix(19, 6, 9);
  const Matrix tgt = RandomMatrix(27, 6, 10);
  CandidateIndexOptions options;
  options.num_lists = 5;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(index.ok());
  Result<Matrix> dense =
      ComputeSimilarity(src, tgt, SimilarityMetric::kCosine);
  ASSERT_TRUE(dense.ok());
  Result<SparseScores> sparse = index->SparseSimilarity(
      src, tgt, SimilarityMetric::kCosine, tgt.rows(), index->num_lists());
  ASSERT_TRUE(sparse.ok());
  ASSERT_EQ(sparse->nnz(), src.rows() * tgt.rows());
  const Matrix round_trip = sparse->ToDense(0.0f);
  EXPECT_EQ(std::memcmp(round_trip.data(), dense->data(), dense->ByteSize()),
            0);
}

TEST_F(CandidateIndexTest, FillIsThreadCountInvariant) {
  const Matrix src = RandomMatrix(33, 8, 11);
  const Matrix tgt = RandomMatrix(29, 8, 12);
  CandidateIndexOptions options;
  options.num_lists = 4;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(index.ok());

  SetNumThreads(1);
  Result<SparseScores> serial =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  ASSERT_TRUE(serial.ok());
  SetNumThreads(7);
  Result<SparseScores> parallel =
      index->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 6, 2);
  ASSERT_TRUE(parallel.ok());
  EXPECT_TRUE(SameEntries(*serial, *parallel));
}

TEST_F(CandidateIndexTest, SaveLoadRoundTrip) {
  const Matrix src = RandomMatrix(17, 8, 13);
  const Matrix tgt = RandomMatrix(25, 8, 14);
  CandidateIndexOptions options;
  options.num_lists = 3;
  Result<CandidateIndex> built = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(built.ok());

  const std::string path = ::testing::TempDir() + "/round_trip.eidx";
  ASSERT_TRUE(built->Save(path).ok());
  Result<CandidateIndex> loaded = CandidateIndex::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_targets(), built->num_targets());
  EXPECT_EQ(loaded->num_lists(), built->num_lists());
  EXPECT_EQ(loaded->dim(), built->dim());

  Result<SparseScores> before =
      built->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
  Result<SparseScores> after =
      loaded->SparseSimilarity(src, tgt, SimilarityMetric::kCosine, 5, 2);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(SameEntries(*before, *after));
  std::remove(path.c_str());
}

TEST_F(CandidateIndexTest, LoadRejectsCorruptFiles) {
  EXPECT_FALSE(CandidateIndex::Load("/nonexistent/nowhere.eidx").ok());

  const std::string bad_magic = ::testing::TempDir() + "/bad_magic.eidx";
  {
    std::ofstream out(bad_magic, std::ios::binary);
    out << "NOPE and then some bytes that are not an index";
  }
  EXPECT_FALSE(CandidateIndex::Load(bad_magic).ok());
  std::remove(bad_magic.c_str());

  // Truncate a valid index mid-payload: the loader must refuse it rather
  // than read garbage lists.
  const Matrix tgt = RandomMatrix(20, 6, 15);
  CandidateIndexOptions options;
  options.num_lists = 3;
  Result<CandidateIndex> built = CandidateIndex::Build(tgt, options);
  ASSERT_TRUE(built.ok());
  const std::string full = ::testing::TempDir() + "/full.eidx";
  ASSERT_TRUE(built->Save(full).ok());
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string truncated = ::testing::TempDir() + "/truncated.eidx";
  {
    std::ofstream out(truncated, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  EXPECT_FALSE(CandidateIndex::Load(truncated).ok());
  std::remove(full.c_str());
  std::remove(truncated.c_str());
}

TEST(SparseScoresTest, OwnedStorageIsTracked) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const size_t before = tracker.current_bytes();
  {
    SparseScores scores = SparseScores::CreateOwned(4, 8, 16);
    EXPECT_EQ(tracker.current_bytes(), before + SparseScores::BytesFor(16));
    SparseScores moved = std::move(scores);
    EXPECT_EQ(tracker.current_bytes(), before + SparseScores::BytesFor(16));
  }
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(SparseScoresTest, ValidateCatchesBrokenInvariants) {
  SparseScores scores = SparseScores::CreateOwned(2, 4, 4);
  float* values = scores.values();
  uint32_t* cols = scores.col_indices();
  values[0] = 1.0f;
  values[1] = 2.0f;
  values[2] = 3.0f;
  cols[0] = 0;
  cols[1] = 2;
  cols[2] = 1;
  scores.mutable_row_offsets() = {0, 2, 3};
  EXPECT_TRUE(scores.Validate().ok());

  scores.mutable_row_offsets() = {0, 2, 1};  // not monotone
  EXPECT_FALSE(scores.Validate().ok());
  scores.mutable_row_offsets() = {0, 2, 9};  // beyond capacity
  EXPECT_FALSE(scores.Validate().ok());

  cols[1] = 0;  // duplicate/non-ascending column within row 0
  scores.mutable_row_offsets() = {0, 2, 3};
  EXPECT_FALSE(scores.Validate().ok());
  cols[1] = 7;  // column out of range
  EXPECT_FALSE(scores.Validate().ok());
}

TEST(SparseScoresTest, ToDenseFillsMissingCells) {
  SparseScores scores = SparseScores::CreateOwned(2, 3, 2);
  scores.values()[0] = 5.0f;
  scores.col_indices()[0] = 1;
  scores.values()[1] = -2.0f;
  scores.col_indices()[1] = 2;
  scores.mutable_row_offsets() = {0, 1, 2};
  const Matrix dense = scores.ToDense(-9.0f);
  EXPECT_EQ(dense.Row(0)[0], -9.0f);
  EXPECT_EQ(dense.Row(0)[1], 5.0f);
  EXPECT_EQ(dense.Row(0)[2], -9.0f);
  EXPECT_EQ(dense.Row(1)[2], -2.0f);
}

}  // namespace
}  // namespace entmatcher
