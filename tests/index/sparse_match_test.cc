#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "index/candidate_index.h"
#include "matching/engine.h"
#include "matching/pipeline.h"
#include "matching/sparse_matchers.h"
#include "matching/sparse_transforms.h"
#include "serve/server.h"

namespace entmatcher {
namespace {

// The sparse pipeline's bit-identity contract: with complete candidate lists
// (num_candidates = m, every list probed) each sparse transform and matcher
// reproduces its dense counterpart bit-for-bit, at every thread count. The
// approximation lives ONLY in which cells the index emits, never in how the
// emitted cells are scored, transformed, or decided.

Matrix RandomMatrix(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::vector<AlgorithmPreset> SparseCapablePresets() {
  return {AlgorithmPreset::kDInf, AlgorithmPreset::kCsls,
          AlgorithmPreset::kRinf, AlgorithmPreset::kRinfWr,
          AlgorithmPreset::kRinfPb};
}

std::vector<MatcherKind> SparseCapableMatchers() {
  return {MatcherKind::kGreedy, MatcherKind::kGreedyOneToOne,
          MatcherKind::kMutualBest};
}

const char* MatcherName(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kGreedy:
      return "greedy";
    case MatcherKind::kGreedyOneToOne:
      return "greedy-1to1";
    case MatcherKind::kMutualBest:
      return "mutual-best";
    default:
      return "?";
  }
}

class SparseMatchTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_threads_ = GetNumThreads(); }
  void TearDown() override { SetNumThreads(previous_threads_); }

 private:
  size_t previous_threads_;
};

MatchOptions WithIndex(MatchOptions options, const CandidateIndex* index,
                       size_t candidates, size_t nprobe) {
  options.candidate_index = index;
  options.num_candidates = candidates;
  options.index_nprobe = nprobe;
  return options;
}

TEST_F(SparseMatchTest, CompleteListsBitIdenticalToDenseEverywhere) {
  const Matrix src = RandomMatrix(41, 12, 101);
  const Matrix tgt = RandomMatrix(37, 12, 102);
  CandidateIndexOptions index_options;
  index_options.num_lists = 5;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());

  for (size_t threads : {1u, 7u}) {
    SetNumThreads(threads);
    for (AlgorithmPreset preset : SparseCapablePresets()) {
      const MatchOptions dense_options = MakePreset(preset);
      const MatchOptions sparse_options = WithIndex(
          dense_options, &*index, tgt.rows(), index->num_lists());

      Result<MatchEngine> engine =
          MatchEngine::Create(src, tgt, dense_options);
      ASSERT_TRUE(engine.ok());
      Result<Matrix> dense_scores = engine->TransformedScores(dense_options);
      ASSERT_TRUE(dense_scores.ok()) << PresetName(preset);

      Result<MatchEngine::ScoredBatch> batch =
          engine->BeginBatch(sparse_options);
      ASSERT_TRUE(batch.ok()) << PresetName(preset);
      ASSERT_TRUE(batch->is_sparse());
      const SparseScores& sparse = batch->sparse_scores();
      ASSERT_EQ(sparse.nnz(), src.rows() * tgt.rows());
      ASSERT_TRUE(sparse.Validate().ok());
      const Matrix expanded = sparse.ToDense(0.0f);
      EXPECT_EQ(std::memcmp(expanded.data(), dense_scores->data(),
                            dense_scores->ByteSize()),
                0)
          << PresetName(preset) << " transformed values differ at " << threads
          << " threads";

      for (MatcherKind matcher : SparseCapableMatchers()) {
        MatchOptions dense_match = dense_options;
        dense_match.matcher = matcher;
        Result<Assignment> expected = MatchScores(*dense_scores, dense_match);
        ASSERT_TRUE(expected.ok())
            << PresetName(preset) << "/" << MatcherName(matcher);
        MatchOptions sparse_match = sparse_options;
        sparse_match.matcher = matcher;
        Result<Assignment> actual = batch->Match(sparse_match);
        ASSERT_TRUE(actual.ok())
            << PresetName(preset) << "/" << MatcherName(matcher);
        EXPECT_EQ(actual->target_of_source, expected->target_of_source)
            << PresetName(preset) << "/" << MatcherName(matcher) << " at "
            << threads << " threads";
      }
    }
  }
}

// Exercised under TSan in CI: a multi-threaded sparse pipeline run must be
// race-free and reproduce the single-threaded assignment exactly.
TEST_F(SparseMatchTest, MultiThreadedSparseRunIsDeterministic) {
  const Matrix src = RandomMatrix(53, 10, 111);
  const Matrix tgt = RandomMatrix(47, 10, 112);
  CandidateIndexOptions index_options;
  index_options.num_lists = 6;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());
  const MatchOptions options = WithIndex(MakePreset(AlgorithmPreset::kCsls),
                                         &*index, /*candidates=*/8,
                                         /*nprobe=*/3);

  SetNumThreads(1);
  Result<Assignment> serial = MatchEmbeddings(src, tgt, options);
  ASSERT_TRUE(serial.ok());
  SetNumThreads(7);
  for (int repeat = 0; repeat < 3; ++repeat) {
    Result<Assignment> parallel = MatchEmbeddings(src, tgt, options);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->target_of_source, serial->target_of_source)
        << "repeat " << repeat;
  }
}

TEST_F(SparseMatchTest, UnsupportedStagesAreRefused) {
  const Matrix src = RandomMatrix(12, 6, 121);
  const Matrix tgt = RandomMatrix(10, 6, 122);
  CandidateIndexOptions index_options;
  index_options.num_lists = 2;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());
  const MatchOptions base =
      WithIndex(MakePreset(AlgorithmPreset::kCsls), &*index, 4, 2);
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, base);
  ASSERT_TRUE(engine.ok());

  // Sinkhorn couples every cell; no sparse variant.
  MatchOptions sinkhorn = WithIndex(MakePreset(AlgorithmPreset::kSinkhorn),
                                    &*index, 4, 2);
  Result<Assignment> rejected = engine->Match(sinkhorn);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);

  // Hungarian / Gale-Shapley / RL have no candidate-list semantics.
  for (MatcherKind matcher :
       {MatcherKind::kHungarian, MatcherKind::kGaleShapley, MatcherKind::kRl}) {
    MatchOptions options = base;
    options.matcher = matcher;
    Result<Assignment> refused = engine->Match(options);
    ASSERT_FALSE(refused.ok()) << static_cast<int>(matcher);
    EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  }

  // A dense matrix view of a sparse batch does not exist.
  Result<Matrix> no_dense = engine->TransformedScores(base);
  ASSERT_FALSE(no_dense.ok());
  EXPECT_EQ(no_dense.status().code(), StatusCode::kInvalidArgument);

  // candidate_index without a width is a configuration error, not a default.
  MatchOptions no_width = base;
  no_width.num_candidates = 0;
  Result<Assignment> unconfigured = engine->Match(no_width);
  ASSERT_FALSE(unconfigured.ok());
  EXPECT_EQ(unconfigured.status().code(), StatusCode::kInvalidArgument);

  // An index over a different target set must be refused.
  const Matrix other = RandomMatrix(9, 6, 123);
  Result<CandidateIndex> mismatched =
      CandidateIndex::Build(other, index_options);
  ASSERT_TRUE(mismatched.ok());
  Result<Assignment> wrong_targets = engine->Match(
      WithIndex(MakePreset(AlgorithmPreset::kCsls), &*mismatched, 4, 2));
  ASSERT_FALSE(wrong_targets.ok());
  EXPECT_EQ(wrong_targets.status().code(), StatusCode::kInvalidArgument);

  // The engine still serves feasible queries after every rejection.
  EXPECT_TRUE(engine->Match(base).ok());
  EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
}

TEST_F(SparseMatchTest, SignatureSeparatesSparseFromDense) {
  const Matrix tgt = RandomMatrix(10, 6, 131);
  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());

  const MatchOptions dense = MakePreset(AlgorithmPreset::kCsls);
  MatchOptions stray = dense;
  stray.index_nprobe = 9;  // ignored without an index
  EXPECT_TRUE(ScoreSignature::Of(dense) == ScoreSignature::Of(stray));

  const MatchOptions sparse = WithIndex(dense, &*index, 4, 2);
  EXPECT_FALSE(ScoreSignature::Of(dense) == ScoreSignature::Of(sparse));
  MatchOptions wider = sparse;
  wider.num_candidates = 5;
  EXPECT_FALSE(ScoreSignature::Of(sparse) == ScoreSignature::Of(wider));
  MatchOptions same = sparse;
  same.matcher = MatcherKind::kGreedyOneToOne;  // decision stage: not a key
  EXPECT_TRUE(ScoreSignature::Of(sparse) == ScoreSignature::Of(same));

  // A mis-keyed decision is refused: dense options on a sparse batch.
  const Matrix src = RandomMatrix(8, 6, 132);
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, sparse);
  ASSERT_TRUE(engine.ok());
  Result<MatchEngine::ScoredBatch> batch = engine->BeginBatch(sparse);
  ASSERT_TRUE(batch.ok());
  Result<Assignment> mismatched = batch->Match(dense);
  ASSERT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SparseMatchTest, SparseDeclaresAndUsesLessWorkspace) {
  const Matrix src = RandomMatrix(60, 8, 141);
  const Matrix tgt = RandomMatrix(50, 8, 142);
  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());

  const MatchOptions dense = MakePreset(AlgorithmPreset::kCsls);
  const MatchOptions sparse = WithIndex(dense, &*index, 8, 2);
  Result<MatchEngine> probe = MatchEngine::Create(src, tgt, dense);
  ASSERT_TRUE(probe.ok());
  const size_t dense_bytes = probe->DeclaredWorkspaceBytes(dense);
  const size_t sparse_bytes = probe->DeclaredWorkspaceBytes(sparse);
  EXPECT_EQ(sparse_bytes, SparseScores::BytesFor(60 * 8));
  EXPECT_LT(sparse_bytes, dense_bytes);

  // A budget between the two declarations admits the sparse query and
  // rejects the dense one — the sub-quadratic path working as a capability,
  // not just an optimization.
  MatchOptions budgeted = sparse;
  budgeted.workspace_budget_bytes = (sparse_bytes + dense_bytes) / 2;
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, budgeted);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE(engine->Match(budgeted).ok());
  EXPECT_LE(engine->workspace().high_water_bytes(), sparse_bytes);
  MatchOptions dense_budgeted = dense;
  dense_budgeted.workspace_budget_bytes = budgeted.workspace_budget_bytes;
  Result<Assignment> rejected = engine->Match(dense_budgeted);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
}

TEST_F(SparseMatchTest, WarmSparseQueriesDoNotGrowArena) {
  const Matrix src = RandomMatrix(30, 8, 151);
  const Matrix tgt = RandomMatrix(24, 8, 152);
  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());
  const MatchOptions options =
      WithIndex(MakePreset(AlgorithmPreset::kRinf), &*index, 6, 2);
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Match(options).ok());
  const size_t capacity = engine->workspace().capacity_bytes();
  const size_t high_water = engine->workspace().high_water_bytes();
  EXPECT_GT(capacity, 0u);
  for (int warm = 0; warm < 3; ++warm) {
    ASSERT_TRUE(engine->Match(options).ok());
    EXPECT_EQ(engine->workspace().capacity_bytes(), capacity)
        << "arena grew on warm sparse query " << warm;
    EXPECT_EQ(engine->workspace().high_water_bytes(), high_water);
    EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
  }
}

TEST_F(SparseMatchTest, PartialListsDecideOverPresentEntriesOnly) {
  const Matrix src = RandomMatrix(21, 8, 161);
  const Matrix tgt = RandomMatrix(33, 8, 162);
  CandidateIndexOptions index_options;
  index_options.num_lists = 4;
  Result<CandidateIndex> index = CandidateIndex::Build(tgt, index_options);
  ASSERT_TRUE(index.ok());
  const MatchOptions options =
      WithIndex(MakePreset(AlgorithmPreset::kDInf), &*index, 5, 2);
  Result<MatchEngine> engine = MatchEngine::Create(src, tgt, options);
  ASSERT_TRUE(engine.ok());
  Result<MatchEngine::ScoredBatch> batch = engine->BeginBatch(options);
  ASSERT_TRUE(batch.ok());
  const SparseScores& sparse = batch->sparse_scores();
  MatchOptions greedy = options;
  greedy.matcher = MatcherKind::kGreedy;
  Result<Assignment> assignment = batch->Match(greedy);
  ASSERT_TRUE(assignment.ok());
  // Every decision points at a cell the index actually emitted for that row.
  for (size_t i = 0; i < assignment->size(); ++i) {
    const int32_t j = assignment->target_of_source[i];
    if (j == Assignment::kUnmatched) {
      EXPECT_TRUE(sparse.RowValues(i).empty());
      continue;
    }
    bool present = false;
    for (uint32_t col : sparse.RowCols(i)) present |= (col == uint32_t(j));
    EXPECT_TRUE(present) << "row " << i << " matched absent column " << j;
  }
}

TEST_F(SparseMatchTest, ServedSparseQueriesBatchAndStayBitIdentical) {
  const Matrix src = RandomMatrix(26, 8, 171);
  const Matrix tgt = RandomMatrix(22, 8, 172);
  Result<CandidateIndex> index =
      CandidateIndex::Build(tgt, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());
  const MatchOptions dense = MakePreset(AlgorithmPreset::kCsls);
  const MatchOptions sparse = WithIndex(dense, &*index, 6, 2);

  // One-shot references, computed outside the server.
  Result<Assignment> dense_reference = MatchEmbeddings(src, tgt, dense);
  Result<Assignment> sparse_reference = MatchEmbeddings(src, tgt, sparse);
  ASSERT_TRUE(dense_reference.ok());
  ASSERT_TRUE(sparse_reference.ok());

  MatchServerConfig config;
  config.flush_micros = 200000;  // wide window: grouping must not be timing-luck
  Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->LoadPair("pair", src, tgt).ok());
  ASSERT_TRUE((*server)->Start().ok());

  ServeRequest dense_request;
  dense_request.pair = "pair";
  dense_request.options = dense;
  ServeRequest sparse_request;
  sparse_request.pair = "pair";
  sparse_request.options = sparse;
  ServeRequest sparse_again = sparse_request;
  sparse_again.options.matcher = MatcherKind::kGreedyOneToOne;

  std::vector<std::future<ServeResponse>> futures;
  futures.push_back((*server)->Submit(dense_request));
  futures.push_back((*server)->Submit(sparse_request));
  futures.push_back((*server)->Submit(sparse_again));
  ServeResponse dense_response = futures[0].get();
  ServeResponse sparse_response = futures[1].get();
  ServeResponse sparse_1to1_response = futures[2].get();

  ASSERT_TRUE(dense_response.status.ok());
  ASSERT_TRUE(sparse_response.status.ok());
  ASSERT_TRUE(sparse_1to1_response.status.ok());
  EXPECT_EQ(dense_response.assignment.target_of_source,
            dense_reference->target_of_source);
  EXPECT_EQ(sparse_response.assignment.target_of_source,
            sparse_reference->target_of_source);
  // Same signature => the two sparse queries shared one scores pass.
  EXPECT_EQ(sparse_response.batch_size, 2u);
  EXPECT_EQ(sparse_1to1_response.batch_size, 2u);
  // The dense query keyed into its own group despite arriving in the cycle.
  EXPECT_EQ(dense_response.batch_size, 1u);

  // Top-k needs the dense score path; a sparse top-k is refused at admission.
  ServeRequest topk = sparse_request;
  topk.kind = ServeQueryKind::kTopK;
  topk.topk = 3;
  ServeResponse refused = (*server)->Query(topk);
  ASSERT_FALSE(refused.status.ok());
  EXPECT_EQ(refused.status.code(), StatusCode::kInvalidArgument);

  // So is a sparse Hungarian — before queueing, not at execution.
  ServeRequest hungarian = sparse_request;
  hungarian.options.matcher = MatcherKind::kHungarian;
  ServeResponse refused_matcher = (*server)->Query(hungarian);
  ASSERT_FALSE(refused_matcher.status.ok());
  EXPECT_EQ(refused_matcher.status.code(), StatusCode::kInvalidArgument);

  (*server)->Shutdown();
}

}  // namespace
}  // namespace entmatcher
