// Tests for the ranking metrics (Hits@k / MRR) and the explanation module.

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "eval/explain.h"
#include "eval/ranking_metrics.h"

namespace entmatcher {
namespace {

// A hand-built dataset: 3 test links over explicit candidate sets.
KgPairDataset TinyManualDataset() {
  KgPairDataset d;
  auto src = KnowledgeGraph::Create(4, 1, {{0, 0, 1}, {1, 0, 2}, {2, 0, 3}});
  auto tgt = KnowledgeGraph::Create(4, 1, {{0, 0, 1}, {1, 0, 2}, {2, 0, 3}});
  d.source = std::move(src).value();
  d.target = std::move(tgt).value();
  d.split.test = AlignmentSet({{0, 0}, {1, 1}, {2, 2}});
  PopulateTestCandidates(&d);
  return d;
}

TEST(RankingMetricsTest, PerfectScoresGivePerfectMetrics) {
  KgPairDataset d = TinyManualDataset();
  Matrix scores = Matrix::FromRows(
      {{0.9f, 0.1f, 0.1f}, {0.1f, 0.9f, 0.1f}, {0.1f, 0.1f, 0.9f}});
  auto m = EvaluateRanking(d, scores);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hits_at_1, 1.0);
  EXPECT_DOUBLE_EQ(m->hits_at_5, 1.0);
  EXPECT_DOUBLE_EQ(m->mrr, 1.0);
  EXPECT_EQ(m->evaluated, 3u);
}

TEST(RankingMetricsTest, RankTwoGold) {
  KgPairDataset d = TinyManualDataset();
  // Row 0's gold (col 0) ranks second.
  Matrix scores = Matrix::FromRows(
      {{0.5f, 0.9f, 0.1f}, {0.1f, 0.9f, 0.1f}, {0.1f, 0.1f, 0.9f}});
  auto m = EvaluateRanking(d, scores);
  ASSERT_TRUE(m.ok());
  EXPECT_NEAR(m->hits_at_1, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(m->hits_at_5, 1.0);
  EXPECT_NEAR(m->mrr, (0.5 + 1.0 + 1.0) / 3.0, 1e-9);
}

TEST(RankingMetricsTest, ShapeMismatchFails) {
  KgPairDataset d = TinyManualDataset();
  EXPECT_FALSE(EvaluateRanking(d, Matrix(2, 3)).ok());
}

TEST(RankingMetricsTest, NonOneToOneUsesBestGold) {
  KgPairDataset d;
  auto src = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  auto tgt = KnowledgeGraph::Create(3, 1, {{0, 0, 1}});
  d.source = std::move(src).value();
  d.target = std::move(tgt).value();
  // Source 0 has two gold targets.
  d.split.test = AlignmentSet({{0, 0}, {0, 1}});
  PopulateTestCandidates(&d);
  Matrix scores = Matrix::FromRows({{0.2f, 0.9f}});  // gold col 1 ranks first
  auto m = EvaluateRanking(d, scores);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->hits_at_1, 1.0);
}

TEST(RankingMetricsTest, EmbeddingConvenienceRuns) {
  KgPairGeneratorConfig c;
  c.seed = 8;
  c.num_core_concepts = 200;
  c.avg_degree = 4.0;
  c.num_world_relations = 30;
  c.num_relations_source = 25;
  c.num_relations_target = 20;
  auto d = GenerateKgPair(c);
  ASSERT_TRUE(d.ok());
  auto emb = ComputeStructuralEmbeddings(*d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto m = EvaluateEmbeddingRanking(*d, *emb);
  ASSERT_TRUE(m.ok());
  EXPECT_GT(m->hits_at_10, m->hits_at_1 - 1e-9);
  EXPECT_GE(m->mrr, m->hits_at_1 - 1e-9);
  EXPECT_GT(m->hits_at_1, 0.0);
}

// ---- Explain ------------------------------------------------------------------

TEST(ExplainTest, TraceIdentifiesGoldAndDecision) {
  KgPairDataset d = TinyManualDataset();
  ASSERT_TRUE(d.source.SetEntityNames({"a0", "a1", "a2", "a3"}).ok());
  ASSERT_TRUE(d.target.SetEntityNames({"b0", "b1", "b2", "b3"}).ok());
  // Perfect diagonal embeddings.
  EmbeddingPair emb;
  emb.source = Matrix::FromRows(
      {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0.5f, 0.5f, 0}});
  emb.target = emb.source;

  auto traces = ExplainMatches(d, emb, MakePreset(AlgorithmPreset::kDInf),
                               {0, 1}, /*top_k=*/2);
  ASSERT_TRUE(traces.ok());
  ASSERT_EQ(traces->size(), 2u);
  const MatchExplanation& t0 = (*traces)[0];
  EXPECT_EQ(t0.source, 0u);
  EXPECT_EQ(t0.source_name, "a0");
  EXPECT_TRUE(t0.decision_is_gold);
  EXPECT_EQ(t0.decided_target, 0u);
  ASSERT_FALSE(t0.candidates.empty());
  EXPECT_EQ(t0.candidates[0].transformed_rank, 1u);
  EXPECT_TRUE(t0.candidates[0].is_gold);

  const std::string text = FormatExplanation(t0);
  EXPECT_NE(text.find("[GOLD]"), std::string::npos);
  EXPECT_NE(text.find("[CORRECT]"), std::string::npos);
}

TEST(ExplainTest, RejectsUnknownSourceAndRl) {
  KgPairDataset d = TinyManualDataset();
  EmbeddingPair emb;
  emb.source = Matrix(4, 3);
  emb.target = Matrix(4, 3);
  EXPECT_FALSE(
      ExplainMatches(d, emb, MakePreset(AlgorithmPreset::kDInf), {99}).ok());
  EXPECT_FALSE(
      ExplainMatches(d, emb, MakePreset(AlgorithmPreset::kRl), {0}).ok());
}

}  // namespace
}  // namespace entmatcher
