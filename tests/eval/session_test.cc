// ExperimentSession: a shared MatchEngine across presets must reproduce the
// fresh per-cell RunExperiment path exactly — metrics, candidate extraction,
// and the reported peak workspace (fresh vs reused parity).

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "eval/experiment.h"

namespace entmatcher {
namespace {

KgPairDataset SessionDataset() {
  KgPairGeneratorConfig c;
  c.name = "session-test";
  c.seed = 13;
  c.num_core_concepts = 200;
  c.avg_degree = 4.0;
  c.num_world_relations = 30;
  c.num_relations_source = 25;
  c.num_relations_target = 20;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(ExperimentSessionTest, MatchesFreshRunsExactly) {
  const KgPairDataset d = SessionDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto session = ExperimentSession::Create(d, *emb);
  ASSERT_TRUE(session.ok());
  for (AlgorithmPreset preset :
       {AlgorithmPreset::kDInf, AlgorithmPreset::kRinf,
        AlgorithmPreset::kStableMatch}) {
    auto fresh = RunExperiment(d, *emb, preset);
    auto reused = session->Run(preset);
    ASSERT_TRUE(fresh.ok()) << PresetName(preset);
    ASSERT_TRUE(reused.ok()) << PresetName(preset);
    // Bit-identical pipelines => identical metrics, not just close ones.
    EXPECT_DOUBLE_EQ(reused->metrics.f1, fresh->metrics.f1)
        << PresetName(preset);
    EXPECT_EQ(reused->metrics.correct, fresh->metrics.correct)
        << PresetName(preset);
    // Reuse-independent accounting: a warm session reports the same peak as
    // a cold one-shot run.
    EXPECT_EQ(reused->peak_workspace_bytes, fresh->peak_workspace_bytes)
        << PresetName(preset);
    EXPECT_EQ(reused->dataset, "session-test");
    EXPECT_EQ(reused->algorithm, PresetName(preset));
  }
}

TEST(ExperimentSessionTest, SecondPassIsStillIdentical) {
  const KgPairDataset d = SessionDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto session = ExperimentSession::Create(d, *emb);
  ASSERT_TRUE(session.ok());
  auto first = session->Run(AlgorithmPreset::kCsls);
  auto second = session->Run(AlgorithmPreset::kCsls);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second->metrics.f1, first->metrics.f1);
  EXPECT_EQ(second->peak_workspace_bytes, first->peak_workspace_bytes);
}

TEST(ExperimentSessionTest, BudgetTurnsMemNoIntoCleanError) {
  const KgPairDataset d = SessionDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  const size_t n = d.test_source_entities.size();
  const size_t m = d.test_target_entities.size();
  // Score matrix plus one scratch matrix: DInf fits, SMat does not.
  auto session =
      ExperimentSession::Create(d, *emb, 2 * n * m * sizeof(float));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->Run(AlgorithmPreset::kDInf).ok());
  auto rejected = session->Run(AlgorithmPreset::kStableMatch);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  // The session survives the rejection.
  EXPECT_TRUE(session->Run(AlgorithmPreset::kDInf).ok());
}

TEST(ExperimentSessionTest, CreateRequiresTestCandidates) {
  KgPairDataset empty;
  auto src = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  auto tgt = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  empty.source = std::move(src).value();
  empty.target = std::move(tgt).value();
  EmbeddingPair emb;
  emb.source = Matrix(2, 4);
  emb.target = Matrix(2, 4);
  auto session = ExperimentSession::Create(empty, emb);
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace entmatcher
