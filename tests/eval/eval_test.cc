#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"
#include "embedding/propagation.h"
#include "eval/experiment.h"
#include "eval/metrics.h"

namespace entmatcher {
namespace {

// ---- Metrics ------------------------------------------------------------------

TEST(MetricsTest, PerfectPredictions) {
  AlignmentSet gold({{1, 10}, {2, 20}});
  EvalMetrics m = EvaluatePredictions(gold, gold);
  EXPECT_EQ(m.correct, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, PartialPrecisionRecall) {
  AlignmentSet gold({{1, 10}, {2, 20}, {3, 30}, {4, 40}});
  // 2 correct out of 3 found; 2 of 4 gold.
  AlignmentSet predicted({{1, 10}, {2, 20}, {9, 99}});
  EvalMetrics m = EvaluatePredictions(predicted, gold);
  EXPECT_EQ(m.correct, 2u);
  EXPECT_EQ(m.found, 3u);
  EXPECT_EQ(m.gold, 4u);
  EXPECT_DOUBLE_EQ(m.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  const double expected_f1 =
      2.0 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5);
  EXPECT_DOUBLE_EQ(m.f1, expected_f1);
}

TEST(MetricsTest, NoPredictions) {
  AlignmentSet gold({{1, 10}});
  EvalMetrics m = EvaluatePredictions(AlignmentSet(), gold);
  EXPECT_EQ(m.correct, 0u);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, AllWrongPredictions) {
  AlignmentSet gold({{1, 10}});
  AlignmentSet predicted({{1, 11}, {2, 10}});
  EvalMetrics m = EvaluatePredictions(predicted, gold);
  EXPECT_EQ(m.correct, 0u);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(MetricsTest, NonOneToOneGoldCountsEachLink) {
  // Gold has two links for source 1; predicting one of them caps recall.
  AlignmentSet gold({{1, 10}, {1, 11}});
  AlignmentSet predicted({{1, 10}});
  EvalMetrics m = EvaluatePredictions(predicted, gold);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
}

// ---- Experiments -----------------------------------------------------------------

KgPairDataset TinyDataset() {
  KgPairGeneratorConfig c;
  c.name = "eval-test";
  c.seed = 13;
  c.num_core_concepts = 200;
  c.avg_degree = 4.0;
  c.num_world_relations = 30;
  c.num_relations_source = 25;
  c.num_relations_target = 20;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST(ExperimentTest, RunExperimentEndToEnd) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto result = RunExperiment(d, *emb, AlgorithmPreset::kDInf);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->dataset, "eval-test");
  EXPECT_EQ(result->algorithm, "DInf");
  EXPECT_GT(result->metrics.f1, 0.0);
  EXPECT_LE(result->metrics.f1, 1.0);
  // 1-to-1 setting: every source matched => P == R == F1.
  EXPECT_DOUBLE_EQ(result->metrics.precision, result->metrics.recall);
}

TEST(ExperimentTest, CustomOptionsName) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, GcnModelConfig(2));
  ASSERT_TRUE(emb.ok());
  MatchOptions options = MakePreset(AlgorithmPreset::kCsls);
  options.csls_k = 5;
  auto result = RunExperimentWithOptions(d, *emb, options, "CSLS-k5");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->algorithm, "CSLS-k5");
}

TEST(ExperimentTest, TopKScoreStdIsPositiveAndBounded) {
  KgPairDataset d = TinyDataset();
  auto emb = ComputeStructuralEmbeddings(d, RreaModelConfig(2));
  ASSERT_TRUE(emb.ok());
  auto std5 = TopKScoreStd(d, *emb, 5);
  ASSERT_TRUE(std5.ok());
  EXPECT_GT(*std5, 0.0);
  EXPECT_LT(*std5, 1.0);  // cosine scores live in [-1, 1]
}

}  // namespace
}  // namespace entmatcher
