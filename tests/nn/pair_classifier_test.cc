#include "nn/pair_classifier.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entmatcher {
namespace {

// A separable toy task: positives are identical rows, negatives random.
TEST(PairClassifierTest, LearnsSeparableToyTask) {
  const size_t n = 40;
  const size_t dim = 8;
  Rng rng(1);
  Matrix src(n, dim);
  Matrix tgt(n, dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dim; ++k) {
      const float v = static_cast<float>(rng.NextGaussian());
      src.At(i, k) = v;
      tgt.At(i, k) = v;  // entity i's match is row i
    }
  }
  std::vector<EntityPair> positives;
  std::vector<EntityId> pool;
  for (size_t i = 0; i < n; ++i) {
    positives.push_back({static_cast<EntityId>(i), static_cast<EntityId>(i)});
    pool.push_back(static_cast<EntityId>(i));
  }
  PairClassifierConfig config;
  config.epochs = 60;
  config.seed = 5;
  auto classifier = PairClassifier::Train(src, tgt, positives, pool, config);
  ASSERT_TRUE(classifier.ok());

  // Matching pairs should outscore random pairs on average.
  double pos = 0.0;
  double neg = 0.0;
  for (size_t i = 0; i < n; ++i) {
    pos += classifier->Score(src, tgt, static_cast<EntityId>(i),
                             static_cast<EntityId>(i));
    neg += classifier->Score(src, tgt, static_cast<EntityId>(i),
                             static_cast<EntityId>((i + 7) % n));
  }
  EXPECT_GT(pos / n, neg / n + 0.2);
}

TEST(PairClassifierTest, ValidatesInputs) {
  Matrix src(2, 4);
  Matrix tgt(2, 4);
  PairClassifierConfig config;
  EXPECT_FALSE(
      PairClassifier::Train(src, tgt, {}, {0, 1}, config).ok());  // no pos
  EXPECT_FALSE(
      PairClassifier::Train(src, tgt, {{0, 0}}, {}, config).ok());  // no pool
  Matrix bad(2, 5);
  EXPECT_FALSE(
      PairClassifier::Train(src, bad, {{0, 0}}, {0}, config).ok());  // dims
}

TEST(PairClassifierTest, ScoreIsProbability) {
  Rng rng(2);
  Matrix src(6, 4);
  Matrix tgt(6, 4);
  for (size_t i = 0; i < 6; ++i) {
    for (size_t k = 0; k < 4; ++k) {
      src.At(i, k) = static_cast<float>(rng.NextGaussian());
      tgt.At(i, k) = static_cast<float>(rng.NextGaussian());
    }
  }
  PairClassifierConfig config;
  config.epochs = 2;
  auto classifier =
      PairClassifier::Train(src, tgt, {{0, 0}, {1, 1}}, {0, 1, 2, 3}, config);
  ASSERT_TRUE(classifier.ok());
  for (EntityId u = 0; u < 6; ++u) {
    for (EntityId v = 0; v < 6; ++v) {
      const float s = classifier->Score(src, tgt, u, v);
      ASSERT_GE(s, 0.0f);
      ASSERT_LE(s, 1.0f);
    }
  }
}

}  // namespace
}  // namespace entmatcher
