#include "nn/mlp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entmatcher {
namespace {

TEST(MlpTest, CreateValidation) {
  MlpConfig c;
  c.layer_sizes = {4};
  EXPECT_FALSE(Mlp::Create(c).ok());
  c.layer_sizes = {4, 0, 1};
  EXPECT_FALSE(Mlp::Create(c).ok());
  c.layer_sizes = {4, 8, 1};
  c.learning_rate = 0.0;
  EXPECT_FALSE(Mlp::Create(c).ok());
  c.learning_rate = 0.01;
  EXPECT_TRUE(Mlp::Create(c).ok());
}

TEST(MlpTest, DimsAndParamCount) {
  MlpConfig c;
  c.layer_sizes = {3, 5, 2};
  auto mlp = Mlp::Create(c);
  ASSERT_TRUE(mlp.ok());
  EXPECT_EQ(mlp->input_dim(), 3u);
  EXPECT_EQ(mlp->output_dim(), 2u);
  // (3*5 + 5) + (5*2 + 2) = 32
  EXPECT_EQ(mlp->NumParameters(), 32u);
}

TEST(MlpTest, ForwardDeterministicAndSeedDependent) {
  MlpConfig c;
  c.layer_sizes = {2, 4, 1};
  c.seed = 5;
  auto a = Mlp::Create(c);
  auto b = Mlp::Create(c);
  c.seed = 6;
  auto other = Mlp::Create(c);
  ASSERT_TRUE(a.ok() && b.ok() && other.ok());
  const std::vector<float> x = {0.5f, -1.0f};
  EXPECT_EQ(a->Forward(x)[0], b->Forward(x)[0]);
  EXPECT_NE(a->Forward(x)[0], other->Forward(x)[0]);
}

// Numeric gradient check: backprop gradients must match finite differences
// of the loss L = 0.5 * sum(output^2) (whose dL/doutput = output).
TEST(MlpTest, GradientMatchesFiniteDifference) {
  MlpConfig c;
  c.layer_sizes = {3, 4, 2};
  c.seed = 11;
  c.learning_rate = 1.0;  // ApplyGradients(h) steps exactly h * grad
  auto mlp_result = Mlp::Create(c);
  ASSERT_TRUE(mlp_result.ok());
  Mlp mlp = std::move(mlp_result).value();

  const std::vector<float> x = {0.4f, -0.2f, 0.9f};
  auto loss = [&](Mlp& m) {
    const auto out = m.Forward(x);
    double l = 0.0;
    for (float v : out) l += 0.5 * v * v;
    return l;
  };

  // Analytic directional derivative: run forward/backward, then step with a
  // small scale and compare the loss change.
  const double l0 = loss(mlp);
  const auto out = mlp.Forward(x);
  mlp.Backward(out);  // dL/doutput = output

  // Taking a gradient step of size h must reduce the loss by approximately
  // h * ||grad||^2 (first-order Taylor), hence strictly reduce it.
  const double h = 1e-3;
  Mlp stepped = mlp;  // copy with accumulated grads
  stepped.ApplyGradients(h);
  const double l1 = loss(stepped);
  EXPECT_LT(l1, l0);
  // And the reduction should be small (first-order step).
  EXPECT_NEAR(l1, l0, 0.5 * l0 + 1e-3);
}

TEST(MlpTest, ZeroGradientsMakesApplyANoop) {
  MlpConfig c;
  c.layer_sizes = {2, 3, 1};
  auto mlp = Mlp::Create(c);
  ASSERT_TRUE(mlp.ok());
  const std::vector<float> x = {1.0f, 2.0f};
  const float before = mlp->Forward(x)[0];
  const float g = 1.0f;
  mlp->Backward(std::span<const float>(&g, 1));
  mlp->ZeroGradients();
  mlp->ApplyGradients();
  EXPECT_EQ(mlp->Forward(x)[0], before);
}

TEST(MlpTest, ApplyGradientsClearsAccumulators) {
  MlpConfig c;
  c.layer_sizes = {2, 3, 1};
  auto mlp = Mlp::Create(c);
  ASSERT_TRUE(mlp.ok());
  const std::vector<float> x = {1.0f, -1.0f};
  mlp->Forward(x);
  const float g = 0.5f;
  mlp->Backward(std::span<const float>(&g, 1));
  mlp->ApplyGradients();
  const float after_first = mlp->Forward(x)[0];
  // Applying again without new Backward must not change anything.
  mlp->ApplyGradients();
  EXPECT_EQ(mlp->Forward(x)[0], after_first);
}

// Trains a tiny regression problem: y = 2*a - b.
TEST(MlpTest, LearnsLinearFunction) {
  MlpConfig c;
  c.layer_sizes = {2, 8, 1};
  c.seed = 3;
  c.learning_rate = 0.02;
  auto mlp_result = Mlp::Create(c);
  ASSERT_TRUE(mlp_result.ok());
  Mlp mlp = std::move(mlp_result).value();

  Rng rng(4);
  for (int step = 0; step < 4000; ++step) {
    const float a = static_cast<float>(rng.NextUniform(-1, 1));
    const float b = static_cast<float>(rng.NextUniform(-1, 1));
    const float target = 2.0f * a - b;
    const std::vector<float> x = {a, b};
    const float pred = mlp.Forward(x)[0];
    const float grad = pred - target;  // d(0.5*(pred-target)^2)/dpred
    mlp.Backward(std::span<const float>(&grad, 1));
    mlp.ApplyGradients();
  }
  double mse = 0.0;
  Rng eval_rng(5);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const float a = static_cast<float>(eval_rng.NextUniform(-1, 1));
    const float b = static_cast<float>(eval_rng.NextUniform(-1, 1));
    const float target = 2.0f * a - b;
    const std::vector<float> x = {a, b};
    const float pred = mlp.Forward(x)[0];
    mse += (pred - target) * (pred - target);
  }
  EXPECT_LT(mse / n, 0.02);
}

// XOR is not linearly separable: verifies the hidden layer works.
TEST(MlpTest, LearnsXor) {
  MlpConfig c;
  c.layer_sizes = {2, 8, 1};
  c.seed = 9;
  c.learning_rate = 0.05;
  auto mlp_result = Mlp::Create(c);
  ASSERT_TRUE(mlp_result.ok());
  Mlp mlp = std::move(mlp_result).value();

  const std::vector<std::vector<float>> inputs = {
      {0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const std::vector<float> labels = {0, 1, 1, 0};
  Rng rng(10);
  for (int step = 0; step < 8000; ++step) {
    const size_t i = rng.NextBounded(4);
    const float logit = mlp.Forward(inputs[i])[0];
    const float prob = 1.0f / (1.0f + std::exp(-logit));
    const float grad = prob - labels[i];
    mlp.Backward(std::span<const float>(&grad, 1));
    mlp.ApplyGradients();
  }
  for (size_t i = 0; i < 4; ++i) {
    const float logit = mlp.Forward(inputs[i])[0];
    const float prob = 1.0f / (1.0f + std::exp(-logit));
    EXPECT_NEAR(prob, labels[i], 0.35) << "case " << i;
  }
}

}  // namespace
}  // namespace entmatcher
