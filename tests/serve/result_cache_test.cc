// ResultCache unit tests: LRU order, byte budget + evictions, refresh
// without double-counting, per-pair invalidation with prefix-free keys, and
// the disabled (budget 0) mode.

#include "serve/result_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace entmatcher {
namespace {

ResultCache::Entry TopKEntry(size_t values) {
  ResultCache::Entry entry;
  entry.topk.resize(values, 7);
  return entry;
}

std::string Key(const std::string& pair, const std::string& suffix) {
  return ResultCache::PairPrefix(pair) + suffix;
}

TEST(ResultCacheTest, BudgetZeroDisablesEverything) {
  ResultCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Insert(Key("p", "a"), TopKEntry(4));
  ResultCache::Entry out;
  EXPECT_FALSE(cache.Lookup(Key("p", "a"), &out));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResultCacheTest, RoundTripsBothPayloadKinds) {
  ResultCache cache(1 << 20);
  ResultCache::Entry match;
  match.assignment.target_of_source = {2, -1, 0};
  cache.Insert(Key("p", "match"), match);
  ResultCache::Entry topk = TopKEntry(6);
  topk.topk = {1, 2, 3, 4, 5, 6};
  cache.Insert(Key("p", "topk"), topk);

  ResultCache::Entry out;
  ASSERT_TRUE(cache.Lookup(Key("p", "match"), &out));
  EXPECT_EQ(out.assignment.target_of_source, match.assignment.target_of_source);
  ASSERT_TRUE(cache.Lookup(Key("p", "topk"), &out));
  EXPECT_EQ(out.topk, topk.topk);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_GT(cache.bytes(), 0u);
}

TEST(ResultCacheTest, EvictsColdestWhenOverBudget) {
  // Room for two small entries, not three.
  ResultCache cache(2 * (128 + 8 + 16 * sizeof(uint32_t)));
  cache.Insert(Key("p", "a"), TopKEntry(16));
  cache.Insert(Key("p", "b"), TopKEntry(16));
  cache.Insert(Key("p", "c"), TopKEntry(16));
  ResultCache::Entry out;
  EXPECT_FALSE(cache.Lookup(Key("p", "a"), &out)) << "coldest survived";
  EXPECT_TRUE(cache.Lookup(Key("p", "b"), &out));
  EXPECT_TRUE(cache.Lookup(Key("p", "c"), &out));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ResultCacheTest, LookupPromotesAgainstEviction) {
  ResultCache cache(2 * (128 + 8 + 16 * sizeof(uint32_t)));
  cache.Insert(Key("p", "a"), TopKEntry(16));
  cache.Insert(Key("p", "b"), TopKEntry(16));
  ResultCache::Entry out;
  ASSERT_TRUE(cache.Lookup(Key("p", "a"), &out));  // a is now hottest
  cache.Insert(Key("p", "c"), TopKEntry(16));
  EXPECT_TRUE(cache.Lookup(Key("p", "a"), &out));
  EXPECT_FALSE(cache.Lookup(Key("p", "b"), &out)) << "LRU order ignored";
}

TEST(ResultCacheTest, OversizedEntryIsDroppedSilently) {
  ResultCache cache(256);
  cache.Insert(Key("p", "big"), TopKEntry(4096));
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.evictions(), 0u) << "an unfittable entry thrashed the tail";
}

TEST(ResultCacheTest, ReInsertRefreshesWithoutDoubleCounting) {
  ResultCache cache(1 << 20);
  cache.Insert(Key("p", "a"), TopKEntry(16));
  const size_t bytes_once = cache.bytes();
  cache.Insert(Key("p", "a"), TopKEntry(16));
  EXPECT_EQ(cache.bytes(), bytes_once);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, InvalidatePairIsExactOnPrefixes) {
  ResultCache cache(1 << 20);
  // "ab" must not shadow "abc": PairPrefix keys are prefix-free.
  cache.Insert(Key("ab", "x"), TopKEntry(4));
  cache.Insert(Key("ab", "y"), TopKEntry(4));
  cache.Insert(Key("abc", "x"), TopKEntry(4));
  EXPECT_EQ(cache.InvalidatePair("ab"), 2u);
  ResultCache::Entry out;
  EXPECT_FALSE(cache.Lookup(Key("ab", "x"), &out));
  EXPECT_TRUE(cache.Lookup(Key("abc", "x"), &out));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, InvalidateReturnsBytesToBudget) {
  ResultCache cache(2 * (128 + 8 + 16 * sizeof(uint32_t)));
  cache.Insert(Key("p", "a"), TopKEntry(16));
  cache.Insert(Key("p", "b"), TopKEntry(16));
  EXPECT_EQ(cache.InvalidatePair("p"), 2u);
  EXPECT_EQ(cache.bytes(), 0u);
  // The freed budget is usable again without evictions.
  cache.Insert(Key("p", "c"), TopKEntry(16));
  cache.Insert(Key("p", "d"), TopKEntry(16));
  EXPECT_EQ(cache.evictions(), 0u);
}

}  // namespace
}  // namespace entmatcher
