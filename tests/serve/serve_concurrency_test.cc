// Multi-worker serving contracts (runs under TSan and ASan in CI):
//   - the SAME mixed-preset storm produces byte-identical responses and
//     identical admission/outcome ledgers at serve_workers 1, 4, and 8, and
//     every answer equals the solo MatchEngine answer;
//   - a hot swap under load never yields a batch that mixes snapshot
//     versions (asserted from (batch_id, snapshot_version) on responses)
//     and the displaced snapshot is reclaimed once in-flight passes drain;
//   - the cross-request result cache serves identical bytes, counts
//     hits/misses, and is invalidated by a swap;
//   - concurrent Stats()/HealthJson() readers race no writer (regression
//     for the pre-refactor mutex-bypassing stats read path).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/candidate_index.h"
#include "matching/engine.h"
#include "serve/server.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

std::vector<AlgorithmPreset> StormPresets() {
  return {AlgorithmPreset::kCsls, AlgorithmPreset::kDInf,
          AlgorithmPreset::kSinkhorn, AlgorithmPreset::kStableMatch};
}

/// Everything about a storm that must not depend on the worker count.
struct StormOutcome {
  std::vector<std::vector<int32_t>> assignments;
  std::vector<std::vector<uint32_t>> topks;
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t timed_out = 0;

  bool operator==(const StormOutcome& other) const {
    return assignments == other.assignments && topks == other.topks &&
           submitted == other.submitted && admitted == other.admitted &&
           rejected == other.rejected && completed == other.completed &&
           failed == other.failed && timed_out == other.timed_out;
  }
};

class ServeConcurrencyTest : public ::testing::Test {
 protected:
  ServeConcurrencyTest()
      : source_(RandomEmbeddings(24, /*seed=*/5)),
        target_(RandomEmbeddings(30, /*seed=*/8)) {}

  std::unique_ptr<MatchServer> MakeServer(MatchServerConfig config,
                                          uint64_t source_seed = 5,
                                          uint64_t target_seed = 8) {
    Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    Status loaded = (*server)->LoadPair("default",
                                        RandomEmbeddings(24, source_seed),
                                        RandomEmbeddings(30, target_seed));
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    Status started = (*server)->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    return std::move(server).value();
  }

  Assignment SoloMatch(AlgorithmPreset preset, uint64_t source_seed = 5,
                       uint64_t target_seed = 8) {
    Result<MatchEngine> engine = MatchEngine::Create(
        RandomEmbeddings(24, source_seed), RandomEmbeddings(30, target_seed),
        MakePreset(preset));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    Result<Assignment> assignment = engine->Match();
    EXPECT_TRUE(assignment.ok()) << assignment.status().ToString();
    return std::move(assignment).value();
  }

  static ServeRequest MatchRequest(AlgorithmPreset preset) {
    ServeRequest request;
    request.options = MakePreset(preset);
    return request;
  }

  /// Runs the canonical mixed-preset storm at `workers` and collects the
  /// worker-count-independent outcome.
  StormOutcome RunStorm(size_t workers) {
    MatchServerConfig config;
    config.queue_capacity = 512;
    config.serve_workers = workers;
    std::unique_ptr<MatchServer> server = MakeServer(config);
    EXPECT_EQ(server->serve_workers(), workers);

    constexpr int kRepeats = 5;
    constexpr size_t kTopK = 3;
    std::vector<std::future<ServeResponse>> match_futures;
    std::vector<std::future<ServeResponse>> topk_futures;
    for (int repeat = 0; repeat < kRepeats; ++repeat) {
      for (AlgorithmPreset preset : StormPresets()) {
        match_futures.push_back(server->Submit(MatchRequest(preset)));
      }
      ServeRequest topk = MatchRequest(AlgorithmPreset::kCsls);
      topk.kind = ServeQueryKind::kTopK;
      topk.topk = kTopK;
      topk_futures.push_back(server->Submit(std::move(topk)));
    }

    StormOutcome outcome;
    for (std::future<ServeResponse>& future : match_futures) {
      ServeResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      EXPECT_EQ(response.snapshot_version, 1u);
      outcome.assignments.push_back(response.assignment.target_of_source);
    }
    for (std::future<ServeResponse>& future : topk_futures) {
      ServeResponse response = future.get();
      EXPECT_TRUE(response.status.ok()) << response.status.ToString();
      outcome.topks.push_back(response.topk);
    }
    server->Shutdown();
    const ServerStatsSnapshot stats = server->Stats();
    outcome.submitted = stats.submitted;
    outcome.admitted = stats.admitted;
    outcome.rejected = stats.rejected;
    outcome.completed = stats.completed;
    outcome.failed = stats.failed;
    outcome.timed_out = stats.timed_out;
    // Ledger invariants hold at the quiescent post-Shutdown point.
    EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
    EXPECT_EQ(stats.admitted,
              stats.completed + stats.failed + stats.timed_out);
    return outcome;
  }

  Matrix source_;
  Matrix target_;
};

TEST_F(ServeConcurrencyTest, StormIsBitIdenticalAtEveryWorkerCount) {
  const StormOutcome one = RunStorm(1);
  const StormOutcome four = RunStorm(4);
  const StormOutcome eight = RunStorm(8);
  EXPECT_TRUE(one == four) << "workers=4 diverged from workers=1";
  EXPECT_TRUE(one == eight) << "workers=8 diverged from workers=1";

  // And the served bytes are the solo-engine bytes, not merely stable.
  const std::vector<AlgorithmPreset> presets = StormPresets();
  for (size_t i = 0; i < one.assignments.size(); ++i) {
    const Assignment solo = SoloMatch(presets[i % presets.size()]);
    EXPECT_EQ(one.assignments[i], solo.target_of_source)
        << "served answer diverged from solo engine for request " << i;
  }
}

TEST_F(ServeConcurrencyTest, SwapUnderLoadNeverMixesBatchVersions) {
  MatchServerConfig config;
  config.queue_capacity = 1024;
  config.serve_workers = 4;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  std::weak_ptr<const PairSnapshot> displaced =
      server->CurrentSnapshot("default");
  ASSERT_FALSE(displaced.expired());

  // Two submitters keep a mixed storm in flight while the main thread
  // swaps the pair three times.
  struct Tagged {
    uint64_t batch_id;
    uint64_t version;
    Status status;
  };
  std::vector<std::vector<Tagged>> collected(2);
  std::atomic<bool> stop{false};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      const std::vector<AlgorithmPreset> presets = StormPresets();
      size_t i = 0;
      while (!stop.load(std::memory_order_acquire)) {
        ServeResponse response =
            server->Query(MatchRequest(presets[i++ % presets.size()]));
        collected[t].push_back(
            {response.batch_id, response.snapshot_version, response.status});
      }
    });
  }
  constexpr uint64_t kSwaps = 3;
  for (uint64_t swap = 0; swap < kSwaps; ++swap) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Result<uint64_t> version = server->SwapPair(
        "default", RandomEmbeddings(24, 100 + swap),
        RandomEmbeddings(30, 200 + swap));
    ASSERT_TRUE(version.ok()) << version.status().ToString();
    EXPECT_EQ(*version, swap + 2);
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& submitter : submitters) submitter.join();

  // No batch may span a swap: every response that rode batch B must report
  // the same snapshot version.
  std::map<uint64_t, std::set<uint64_t>> versions_by_batch;
  size_t executed = 0;
  for (const std::vector<Tagged>& thread_responses : collected) {
    for (const Tagged& tagged : thread_responses) {
      ASSERT_TRUE(tagged.status.ok()) << tagged.status.ToString();
      ASSERT_GE(tagged.version, 1u);
      ASSERT_LE(tagged.version, kSwaps + 1);
      if (tagged.batch_id != 0) {
        versions_by_batch[tagged.batch_id].insert(tagged.version);
        ++executed;
      }
    }
  }
  ASSERT_GT(executed, 0u);
  for (const auto& [batch_id, versions] : versions_by_batch) {
    EXPECT_EQ(versions.size(), 1u)
        << "batch " << batch_id << " mixed snapshot versions";
  }
  EXPECT_EQ(server->Stats().snapshot_swaps, kSwaps);

  // Post-swap answers come from the new embeddings.
  ServeResponse fresh = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.snapshot_version, kSwaps + 1);
  EXPECT_EQ(fresh.assignment.target_of_source,
            SoloMatch(AlgorithmPreset::kCsls, 100 + kSwaps - 1,
                      200 + kSwaps - 1)
                .target_of_source);

  // Epoch reclamation: once in-flight passes drain (each query turns the
  // epoch), the displaced v1 snapshot must be destroyed — no leak.
  for (int attempt = 0; attempt < 100 && !displaced.expired(); ++attempt) {
    (void)server->Query(MatchRequest(AlgorithmPreset::kDInf));
  }
  EXPECT_TRUE(displaced.expired()) << "displaced snapshot never reclaimed";
  server->Shutdown();
}

TEST_F(ServeConcurrencyTest, ResultCacheServesIdenticalBytesAndInvalidates) {
  MatchServerConfig config;
  config.serve_workers = 2;
  config.result_cache_bytes = 1 << 20;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  ServeResponse first = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cached);
  ServeResponse second = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.batch_size, 0u) << "a cache hit ran a scores pass";
  EXPECT_EQ(second.assignment.target_of_source,
            first.assignment.target_of_source);
  EXPECT_EQ(second.snapshot_version, first.snapshot_version);

  ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_GE(stats.cache_misses, 1u);
  EXPECT_GT(stats.result_cache_bytes, 0u);

  // A different signature is a different key.
  ServeResponse other = server->Query(MatchRequest(AlgorithmPreset::kDInf));
  ASSERT_TRUE(other.status.ok());
  EXPECT_FALSE(other.cached);

  // A swap invalidates: same request misses and recomputes on v2.
  ASSERT_TRUE(server
                  ->SwapPair("default", RandomEmbeddings(24, 50),
                             RandomEmbeddings(30, 60))
                  .ok());
  ServeResponse after = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(after.status.ok());
  EXPECT_FALSE(after.cached);
  EXPECT_EQ(after.snapshot_version, 2u);
  EXPECT_EQ(after.assignment.target_of_source,
            SoloMatch(AlgorithmPreset::kCsls, 50, 60).target_of_source);
  server->Shutdown();
}

TEST_F(ServeConcurrencyTest, CacheIsOffByDefault) {
  MatchServerConfig config;
  std::unique_ptr<MatchServer> server = MakeServer(config);
  (void)server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ServeResponse second = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_FALSE(second.cached);
  EXPECT_EQ(server->Stats().cache_hits, 0u);
  EXPECT_EQ(server->Stats().cache_misses, 0u);
}

// The old ServerStats kept a plain struct behind a mutex the read path
// bypassed; this read-storm + write-storm is the TSan regression for it.
TEST_F(ServeConcurrencyTest, StatsReadersRaceNoWriters) {
  MatchServerConfig config;
  config.serve_workers = 2;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const ServerStatsSnapshot snapshot = server->Stats();
        // Directional ledger sanity under concurrency (exactness is only
        // guaranteed at quiescent points): a mid-flight reader must never
        // see a dependent counter ahead of its prerequisite.
        EXPECT_GE(snapshot.submitted, snapshot.admitted + snapshot.rejected);
        EXPECT_GE(snapshot.admitted, snapshot.completed + snapshot.failed +
                                         snapshot.timed_out);
        (void)server->HealthJson();
      }
    });
  }
  const std::vector<AlgorithmPreset> presets = StormPresets();
  for (int i = 0; i < 40; ++i) {
    ServeResponse response =
        server->Query(MatchRequest(presets[i % presets.size()]));
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  server->Shutdown();
  const ServerStatsSnapshot final_stats = server->Stats();
  EXPECT_EQ(final_stats.submitted,
            final_stats.admitted + final_stats.rejected);
  EXPECT_EQ(final_stats.admitted, final_stats.completed + final_stats.failed +
                                      final_stats.timed_out);
}

}  // namespace
}  // namespace entmatcher
