// Wire-protocol unit tests: frame round trips over a real pipe (short reads
// included), request/response encode-parse inverses, error mapping, and the
// malformed-input rejections a hostile client could provoke.

#include "serve/protocol.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace entmatcher {
namespace {

class PipeTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_EQ(::pipe(fds_), 0); }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int read_fd() const { return fds_[0]; }
  int write_fd() const { return fds_[1]; }
  void CloseWriteEnd() {
    ::close(fds_[1]);
    fds_[1] = -1;
  }

  int fds_[2] = {-1, -1};
};

TEST_F(PipeTest, FrameRoundTrip) {
  const std::string payload = "match CSLS";
  ASSERT_TRUE(WriteFrame(write_fd(), payload).ok());
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(*read, payload);
}

TEST_F(PipeTest, EmptyFrameRoundTrip) {
  ASSERT_TRUE(WriteFrame(write_fd(), "").ok());
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
}

TEST_F(PipeTest, BinaryPayloadSurvives) {
  std::string payload("\x00\x01\xff\x7f ok\n\x00", 9);
  ASSERT_TRUE(WriteFrame(write_fd(), payload).ok());
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST_F(PipeTest, LargeFrameCrossesPipeBuffer) {
  // > 64 KiB forces several write()/read() calls, exercising the
  // short-read/short-write loops.
  const std::string payload(300000, 'x');
  std::thread writer(
      [this, &payload] { ASSERT_TRUE(WriteFrame(write_fd(), payload).ok()); });
  Result<std::string> read = ReadFrame(read_fd());
  writer.join();
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), payload.size());
  EXPECT_EQ(*read, payload);
}

TEST_F(PipeTest, CleanEofIsNotFound) {
  CloseWriteEnd();
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(PipeTest, EofMidFrameIsIoError) {
  const char truncated[] = {16, 0, 0, 0, 'a', 'b'};  // promises 16, sends 2
  ASSERT_EQ(::write(write_fd(), truncated, sizeof(truncated)),
            static_cast<ssize_t>(sizeof(truncated)));
  CloseWriteEnd();
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(PipeTest, OversizedLengthPrefixRejected) {
  const uint32_t huge = static_cast<uint32_t>(kMaxFrameBytes + 1);
  char prefix[4];
  std::memcpy(prefix, &huge, 4);
  ASSERT_EQ(::write(write_fd(), prefix, 4), 4);
  Result<std::string> read = ReadFrame(read_fd());
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolRequest, MatchRoundTrip) {
  WireRequest request;
  request.verb = WireRequest::Verb::kMatch;
  request.algorithm = AlgorithmPreset::kCsls;
  request.timeout_micros = 2500;
  Result<WireRequest> parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, WireRequest::Verb::kMatch);
  EXPECT_EQ(parsed->algorithm, AlgorithmPreset::kCsls);
  EXPECT_EQ(parsed->timeout_micros, 2500u);
}

TEST(ProtocolRequest, TopKRoundTrip) {
  WireRequest request;
  request.verb = WireRequest::Verb::kTopK;
  request.algorithm = AlgorithmPreset::kSinkhorn;
  request.k = 7;
  Result<WireRequest> parsed = ParseRequest(EncodeRequest(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->verb, WireRequest::Verb::kTopK);
  EXPECT_EQ(parsed->algorithm, AlgorithmPreset::kSinkhorn);
  EXPECT_EQ(parsed->k, 7u);
  EXPECT_EQ(parsed->timeout_micros, 0u);
}

TEST(ProtocolRequest, StatsHealthAndShutdownRoundTrip) {
  for (const auto verb :
       {WireRequest::Verb::kStats, WireRequest::Verb::kHealth,
        WireRequest::Verb::kShutdown}) {
    WireRequest request;
    request.verb = verb;
    Result<WireRequest> parsed = ParseRequest(EncodeRequest(request));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->verb, verb);
  }
}

TEST(ProtocolRequest, EveryServablePresetParses) {
  for (const char* name :
       {"DInf", "CSLS", "RInf", "RInf-wr", "RInf-pb", "Sink.", "Hun.",
        "SMat"}) {
    SCOPED_TRACE(name);
    Result<AlgorithmPreset> preset = ParseServableAlgorithm(name);
    EXPECT_TRUE(preset.ok()) << preset.status().ToString();
  }
}

TEST(ProtocolRequest, RlAndUnknownAlgorithmsRejected) {
  for (const char* name : {"RL", "nope", ""}) {
    SCOPED_TRACE(name);
    Result<AlgorithmPreset> preset = ParseServableAlgorithm(name);
    ASSERT_FALSE(preset.ok());
    EXPECT_EQ(preset.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ProtocolRequest, MalformedLinesRejected) {
  for (const char* line :
       {"", "bogus", "match", "match RL", "topk CSLS", "topk CSLS zero",
        "match CSLS timeout_us=abc", "match CSLS extra junk"}) {
    SCOPED_TRACE(line);
    Result<WireRequest> parsed = ParseRequest(line);
    EXPECT_FALSE(parsed.ok());
  }
}

TEST(ProtocolResponse, ValuesRoundTrip) {
  const std::vector<int32_t> values = {0, -1, 5, 2147483647, -2147483648};
  Result<WireResponse> parsed = ParseResponse(EncodeValuesResponse(values));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_EQ(parsed->values, values);
}

TEST(ProtocolResponse, TextRoundTrip) {
  const std::string text = "{\"submitted\": 3}";
  Result<WireResponse> parsed = ParseResponse(EncodeTextResponse(text));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->status.ok());
  EXPECT_EQ(parsed->text, text);
}

TEST(ProtocolResponse, ErrorRoundTripPreservesCode) {
  const Status original =
      Status::ResourceExhausted("declared workspace over budget");
  Result<WireResponse> parsed = ParseResponse(EncodeErrorResponse(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(parsed->status.message().find("over budget"), std::string::npos);
}

TEST(ProtocolResponse, DeadlineExceededCodeSurvivesTheWire) {
  const Status original = Status::DeadlineExceeded("expired in queue");
  Result<WireResponse> parsed = ParseResponse(EncodeErrorResponse(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status.code(), StatusCode::kDeadlineExceeded);
}

TEST(ProtocolResponse, UnavailableWithRetryAfterRoundTrip) {
  const Status original = Status::Unavailable("request queue full");
  Result<WireResponse> parsed =
      ParseResponse(EncodeErrorResponse(original, /*retry_after_micros=*/2500));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(parsed->retry_after_micros, 2500u);
  EXPECT_NE(parsed->status.message().find("queue full"), std::string::npos);
  // The hint token must not leak into the human-readable message.
  EXPECT_EQ(parsed->status.message().find("retry_after_us"),
            std::string::npos);
}

TEST(ProtocolResponse, ErrorWithoutRetryAfterParsesAsZero) {
  Result<WireResponse> parsed =
      ParseResponse(EncodeErrorResponse(Status::Unavailable("shed")));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->retry_after_micros, 0u);
}

TEST(ProtocolResponse, TruncatedValuesPayloadRejected) {
  std::string wire = EncodeValuesResponse({1, 2, 3});
  wire.resize(wire.size() - 2);  // chop mid-int32
  Result<WireResponse> parsed = ParseResponse(wire);
  EXPECT_FALSE(parsed.ok());
}

TEST(ProtocolResponse, GarbageHeaderRejected) {
  for (const char* payload : {"", "what\n", "ok\n", "ok values\n",
                              "ok values notanumber\n", "error\n"}) {
    SCOPED_TRACE(payload);
    Result<WireResponse> parsed = ParseResponse(payload);
    EXPECT_FALSE(parsed.ok());
  }
}

// -------------------------------------------------------------------- v2 --

TEST(ProtocolRequest, HelloAndShardsRoundTrip) {
  for (const auto verb :
       {WireRequest::Verb::kHello, WireRequest::Verb::kShards}) {
    WireRequest request;
    request.verb = verb;
    Result<WireRequest> parsed = ParseRequest(EncodeRequest(request));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->verb, verb);
  }
}

TEST(ProtocolRequest, HelloHandshakeChecksProtocolVersion) {
  const std::string hello = HelloJson("shard");
  EXPECT_NE(hello.find("\"role\":\"shard\""), std::string::npos);
  EXPECT_TRUE(CheckHello(hello, "peer").ok());
  // A peer speaking another protocol version is refused with a clear,
  // permanent error.
  Status alien = CheckHello("{\"protocol\":99}", "shard 3");
  EXPECT_EQ(alien.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(alien.message().find("shard 3"), std::string::npos);
  // A pre-v2 peer (no JSON hello at all) is also kFailedPrecondition.
  EXPECT_EQ(CheckHello("not json", "peer").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CheckHello("{}", "peer").code(),
            StatusCode::kFailedPrecondition);
}

TEST(ProtocolRequest, PairOptionRoundTrip) {
  Result<WireRequest> parsed = ParseRequest("match CSLS pair=dz");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->pair, "dz");
  WireRequest request = *parsed;
  EXPECT_EQ(ParseRequest(EncodeRequest(request))->pair, "dz");
}

TEST(ProtocolRequest, RouteRoundTrip) {
  Result<WireRequest> parsed = ParseRequest("route dz 4:9 topk RInf 5");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->route);
  EXPECT_EQ(parsed->pair, "dz");
  EXPECT_EQ(parsed->row_begin, 4u);
  EXPECT_EQ(parsed->row_end, 9u);
  EXPECT_EQ(parsed->verb, WireRequest::Verb::kTopK);
  EXPECT_EQ(parsed->k, 5u);
  Result<WireRequest> again = ParseRequest(EncodeRequest(*parsed));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->route);
  EXPECT_EQ(again->row_begin, 4u);
  EXPECT_EQ(again->row_end, 9u);
}

TEST(ProtocolRequest, MalformedRoutesRejected) {
  for (const char* line :
       {"route", "route dz", "route dz 0:4", "route dz 4:4 match DInf",
        "route dz 9:4 match DInf", "route dz 0:x match DInf",
        "route dz 0:4 stats", "route dz 0:4 match DInf pair=other"}) {
    SCOPED_TRACE(line);
    EXPECT_FALSE(ParseRequest(line).ok());
  }
}

TEST(ProtocolRequest, SwapVersionFloorRoundTrip) {
  Result<WireRequest> parsed =
      ParseRequest("swap dz /a.emat /b.emat index=/c.eidx version=7");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->swap_min_version, 7u);
  EXPECT_EQ(parsed->index_path, "/c.eidx");
  Result<WireRequest> again = ParseRequest(EncodeRequest(*parsed));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->swap_min_version, 7u);
}

TEST(ProtocolResponse, VersionedRangedScoredValuesRoundTrip) {
  const std::vector<int32_t> values = {7, -1, 42};
  const std::vector<float> scores = {0.25f, -1.5f, 3.0e-7f};
  Result<WireResponse> parsed = ParseResponse(EncodeValuesResponse(
      values, /*version=*/9, /*has_range=*/true, /*row_begin=*/4,
      /*row_end=*/7, scores));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->values, values);
  EXPECT_EQ(parsed->version, 9u);
  EXPECT_TRUE(parsed->has_range);
  EXPECT_EQ(parsed->row_begin, 4u);
  EXPECT_EQ(parsed->row_end, 7u);
  ASSERT_EQ(parsed->scores.size(), scores.size());
  for (size_t i = 0; i < scores.size(); ++i) {
    // Bit-exact, not approximately-equal: the router merges on these.
    EXPECT_EQ(std::memcmp(&parsed->scores[i], &scores[i], sizeof(float)), 0);
  }
}

TEST(ProtocolResponse, V1ValuesResponseStillParses) {
  Result<WireResponse> parsed = ParseResponse(EncodeValuesResponse({1, 2}));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->version, 0u);
  EXPECT_FALSE(parsed->has_range);
  EXPECT_TRUE(parsed->scores.empty());
}

TEST(ProtocolResponse, TruncatedScoresPayloadRejected) {
  std::string wire =
      EncodeValuesResponse({1}, 1, true, 0, 1, {0.5f});
  wire.resize(wire.size() - 2);
  EXPECT_FALSE(ParseResponse(wire).ok());
}

// v3 — degraded answers carry the covered source-row ranges.
TEST(ProtocolResponse, CoverageRoundTrip) {
  const std::vector<std::pair<size_t, size_t>> coverage = {{0, 8}, {16, 24}};
  Result<WireResponse> parsed = ParseResponse(EncodeValuesResponse(
      {1, -1, 2}, /*version=*/4, /*has_range=*/false, 0, 0, {}, coverage));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->version, 4u);
  EXPECT_EQ(parsed->coverage, coverage);
}

TEST(ProtocolResponse, FullCoverageOmitsTheField) {
  const std::string wire = EncodeValuesResponse({1, 2});
  EXPECT_EQ(wire.find("coverage="), std::string::npos);
  Result<WireResponse> parsed = ParseResponse(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->coverage.empty());
}

TEST(ProtocolResponse, MalformedCoverageRejected) {
  // An empty coverage list and an inverted range are both refused.
  const std::string body(4, '\0');  // one zero value
  EXPECT_FALSE(ParseResponse("ok values 1 coverage=\n" + body).ok());
  EXPECT_FALSE(ParseResponse("ok values 1 coverage=5:2\n" + body).ok());
}

}  // namespace
}  // namespace entmatcher
