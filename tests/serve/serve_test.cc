// MatchServer behavior tests: admission control (unknown pair, RL, topk=0,
// workspace budget, queue full, shut down), deadline expiry, micro-batch
// composition (shared scores passes, mixed signatures), stats invariants,
// the socket front end, and the headline contract — results served to
// concurrent clients are bit-identical to sequential one-shot
// MatchEngine queries (this file runs under TSan in CI).

#include "serve/server.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "la/topk.h"
#include "matching/engine.h"
#include "serve/client.h"
#include "serve/socket_server.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// Cheap presets whose signatures differ — the batching key material.
std::vector<AlgorithmPreset> MixedPresets() {
  return {AlgorithmPreset::kCsls, AlgorithmPreset::kDInf,
          AlgorithmPreset::kSinkhorn, AlgorithmPreset::kStableMatch};
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : source_(RandomEmbeddings(24, /*seed=*/5)),
        target_(RandomEmbeddings(30, /*seed=*/8)) {}

  /// A ready server with `source_`/`target_` loaded as "default".
  std::unique_ptr<MatchServer> MakeServer(const MatchServerConfig& config,
                                          bool start = true) {
    Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    Status loaded =
        (*server)->LoadPair("default", Matrix(source_), Matrix(target_));
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    if (start) {
      Status started = (*server)->Start();
      EXPECT_TRUE(started.ok()) << started.ToString();
    }
    return std::move(server).value();
  }

  /// One-shot engine answer for `preset` over the same pair.
  Assignment SoloMatch(AlgorithmPreset preset) {
    Result<MatchEngine> engine =
        MatchEngine::Create(Matrix(source_), Matrix(target_),
                            MakePreset(preset));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    Result<Assignment> assignment = engine->Match();
    EXPECT_TRUE(assignment.ok()) << assignment.status().ToString();
    return std::move(assignment).value();
  }

  static ServeRequest MatchRequest(AlgorithmPreset preset) {
    ServeRequest request;
    request.options = MakePreset(preset);
    return request;
  }

  Matrix source_;
  Matrix target_;
};

TEST_F(ServeTest, CreateRejectsDegenerateConfig) {
  MatchServerConfig config;
  config.queue_capacity = 0;
  EXPECT_FALSE(MatchServer::Create(config).ok());
  config = MatchServerConfig();
  config.max_batch = 0;
  EXPECT_FALSE(MatchServer::Create(config).ok());
}

TEST_F(ServeTest, LoadPairRejectsDuplicateName) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  Status again = server->LoadPair("default", Matrix(source_), Matrix(target_));
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST_F(ServeTest, UnknownPairRejectedNotFound) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.pair = "nope";
  ServeResponse response = server->Query(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server->Stats().rejected, 1u);
}

TEST_F(ServeTest, RlMatcherRejectedInvalidArgument) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeResponse response = server->Query(MatchRequest(AlgorithmPreset::kRl));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, TopKZeroRejectedInvalidArgument) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.kind = ServeQueryKind::kTopK;
  request.topk = 0;
  ServeResponse response = server->Query(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, OverBudgetRequestRejectedAtAdmission) {
  MatchServerConfig config;
  config.workspace_budget_bytes = 16;  // far below any 24 x 30 scores pass
  std::unique_ptr<MatchServer> server = MakeServer(config);
  ServeResponse response =
      server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.batches, 0u);  // rejected before any kernel work
}

TEST_F(ServeTest, QueueFullRejectedAndDrainedAfterStart) {
  MatchServerConfig config;
  config.queue_capacity = 3;
  // Not started: submissions park in the queue deterministically.
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> admitted;
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    admitted.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
  }
  ServeResponse overflow =
      server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(overflow.status.code(), StatusCode::kResourceExhausted);

  ASSERT_TRUE(server->Start().ok());
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  for (std::future<ServeResponse>& f : admitted) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.assignment.target_of_source,
              reference.target_of_source);
  }
}

TEST_F(ServeTest, ExpiredDeadlineAnsweredWithoutExecuting) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.timeout_micros = 1;
  std::future<ServeResponse> future = server->Submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(server->Start().ok());
  ServeResponse response = future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.batches, 0u);  // expired before any scores pass
}

TEST_F(ServeTest, CompatibleQueriesShareOneScoresPass) {
  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> inflight;
  for (size_t i = 0; i < 8; ++i) {
    inflight.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
  }
  ASSERT_TRUE(server->Start().ok());

  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  for (std::future<ServeResponse>& f : inflight) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.batch_size, 8u);
    EXPECT_EQ(response.assignment.target_of_source,
              reference.target_of_source);
  }
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.batches, 1u);  // one shared similarity+transform pass
  EXPECT_EQ(stats.batched_queries, 8u);
}

TEST_F(ServeTest, MixedSignaturesSplitIntoGroups) {
  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> csls;
  std::vector<std::future<ServeResponse>> dinf;
  for (size_t i = 0; i < 4; ++i) {
    csls.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
    dinf.push_back(server->Submit(MatchRequest(AlgorithmPreset::kDInf)));
  }
  ASSERT_TRUE(server->Start().ok());

  const Assignment csls_reference = SoloMatch(AlgorithmPreset::kCsls);
  const Assignment dinf_reference = SoloMatch(AlgorithmPreset::kDInf);
  for (std::future<ServeResponse>& f : csls) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 4u);
    EXPECT_EQ(response.assignment.target_of_source,
              csls_reference.target_of_source);
  }
  for (std::future<ServeResponse>& f : dinf) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 4u);
    EXPECT_EQ(response.assignment.target_of_source,
              dinf_reference.target_of_source);
  }
  server->Shutdown();
  EXPECT_EQ(server->Stats().batches, 2u);  // one pass per signature
}

TEST_F(ServeTest, TopKMatchesDirectRowTopKIndices) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.kind = ServeQueryKind::kTopK;
  request.topk = 5;
  ServeResponse response = server->Query(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  Result<Matrix> scores =
      engine->TransformedScores(MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(response.topk, RowTopKIndices(*scores, 5));
}

TEST_F(ServeTest, ShutdownFailsStillQueuedRequests) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  std::future<ServeResponse> parked =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));
  server->Shutdown();  // scheduler never started; the request cannot run
  EXPECT_EQ(parked.get().status.code(), StatusCode::kFailedPrecondition);
  // And new submissions after shutdown are turned away at admission.
  ServeResponse late = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, StatsInvariantsHoldAcrossOutcomes) {
  MatchServerConfig config;
  config.workspace_budget_bytes = 1ull << 20;  // admits the small pair
  std::unique_ptr<MatchServer> server = MakeServer(config);

  ASSERT_TRUE(server->Query(MatchRequest(AlgorithmPreset::kCsls)).status.ok());
  ServeRequest unknown = MatchRequest(AlgorithmPreset::kCsls);
  unknown.pair = "nope";
  EXPECT_FALSE(server->Query(std::move(unknown)).status.ok());
  server->Shutdown();

  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.timed_out);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.latency_samples, stats.completed + stats.failed);
}

// Satellite 3 — the concurrency contract: many client threads with mixed
// presets against one warm server, every answer bit-identical to the
// sequential one-shot engine. TSan (CI job `tsan`) checks the data-race
// side of the same run.
TEST_F(ServeTest, ConcurrentClientsBitIdenticalToSequential) {
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 6;

  const std::vector<AlgorithmPreset> presets = MixedPresets();
  std::vector<Assignment> references;
  references.reserve(presets.size());
  for (AlgorithmPreset preset : presets) {
    references.push_back(SoloMatch(preset));
  }

  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        const size_t which = (c + q) % presets.size();
        ServeResponse response =
            server->Query(MatchRequest(presets[which]));
        if (!response.status.ok() ||
            response.assignment.target_of_source !=
                references[which].target_of_source) {
          ok[c] = 0;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(ok[c]) << "client " << c << " saw a divergent answer";
  }
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.completed, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
}

TEST_F(ServeTest, SocketRoundTripMatchesInProcessQuery) {
  const std::string socket_path =
      "/tmp/em_serve_test_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;
  Result<WireResponse> wire = client->Call(match);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(wire->status.ok()) << wire->status.ToString();
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  ASSERT_EQ(wire->values.size(), reference.target_of_source.size());
  for (size_t i = 0; i < wire->values.size(); ++i) {
    EXPECT_EQ(wire->values[i], reference.target_of_source[i]);
  }

  WireRequest stats;
  stats.verb = WireRequest::Verb::kStats;
  Result<WireResponse> stats_wire = client->Call(stats);
  ASSERT_TRUE(stats_wire.ok());
  ASSERT_TRUE(stats_wire->status.ok());
  EXPECT_NE(stats_wire->text.find("\"completed\": 1"), std::string::npos);

  WireRequest bad;
  bad.verb = WireRequest::Verb::kTopK;
  bad.algorithm = AlgorithmPreset::kCsls;
  bad.k = 0;  // rejected server-side; the error code must cross the wire
  Result<WireResponse> bad_wire = client->Call(bad);
  ASSERT_TRUE(bad_wire.ok());
  EXPECT_EQ(bad_wire->status.code(), StatusCode::kInvalidArgument);

  WireRequest shutdown;
  shutdown.verb = WireRequest::Verb::kShutdown;
  Result<WireResponse> shutdown_wire = client->Call(shutdown);
  ASSERT_TRUE(shutdown_wire.ok());
  EXPECT_TRUE(shutdown_wire->status.ok());

  (*front)->WaitForShutdown();
  (*front)->Stop();
  server->Shutdown();
}

}  // namespace
}  // namespace entmatcher
