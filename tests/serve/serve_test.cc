// MatchServer behavior tests: admission control (unknown pair, RL, topk=0,
// workspace budget, queue full, shut down), deadline expiry, micro-batch
// composition (shared scores passes, mixed signatures), stats invariants,
// the socket front end, and the headline contract — results served to
// concurrent clients are bit-identical to sequential one-shot
// MatchEngine queries (this file runs under TSan in CI).

#include "serve/server.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "index/candidate_index.h"
#include "la/topk.h"
#include "matching/engine.h"
#include "serve/client.h"
#include "serve/socket_server.h"

namespace entmatcher {
namespace {

constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

/// Cheap presets whose signatures differ — the batching key material.
std::vector<AlgorithmPreset> MixedPresets() {
  return {AlgorithmPreset::kCsls, AlgorithmPreset::kDInf,
          AlgorithmPreset::kSinkhorn, AlgorithmPreset::kStableMatch};
}

class ServeTest : public ::testing::Test {
 protected:
  ServeTest()
      : source_(RandomEmbeddings(24, /*seed=*/5)),
        target_(RandomEmbeddings(30, /*seed=*/8)) {}

  /// A ready server with `source_`/`target_` loaded as "default".
  std::unique_ptr<MatchServer> MakeServer(const MatchServerConfig& config,
                                          bool start = true) {
    Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    Status loaded =
        (*server)->LoadPair("default", Matrix(source_), Matrix(target_));
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    if (start) {
      Status started = (*server)->Start();
      EXPECT_TRUE(started.ok()) << started.ToString();
    }
    return std::move(server).value();
  }

  /// One-shot engine answer for `preset` over the same pair.
  Assignment SoloMatch(AlgorithmPreset preset) {
    Result<MatchEngine> engine =
        MatchEngine::Create(Matrix(source_), Matrix(target_),
                            MakePreset(preset));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    Result<Assignment> assignment = engine->Match();
    EXPECT_TRUE(assignment.ok()) << assignment.status().ToString();
    return std::move(assignment).value();
  }

  static ServeRequest MatchRequest(AlgorithmPreset preset) {
    ServeRequest request;
    request.options = MakePreset(preset);
    return request;
  }

  Matrix source_;
  Matrix target_;
};

TEST_F(ServeTest, CreateRejectsDegenerateConfig) {
  MatchServerConfig config;
  config.queue_capacity = 0;
  EXPECT_FALSE(MatchServer::Create(config).ok());
  config = MatchServerConfig();
  config.max_batch = 0;
  EXPECT_FALSE(MatchServer::Create(config).ok());
}

TEST_F(ServeTest, LoadPairRejectsDuplicateName) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  Status again = server->LoadPair("default", Matrix(source_), Matrix(target_));
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST_F(ServeTest, UnknownPairRejectedNotFound) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.pair = "nope";
  ServeResponse response = server->Query(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(server->Stats().rejected, 1u);
}

TEST_F(ServeTest, RlMatcherRejectedInvalidArgument) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeResponse response = server->Query(MatchRequest(AlgorithmPreset::kRl));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, TopKZeroRejectedInvalidArgument) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.kind = ServeQueryKind::kTopK;
  request.topk = 0;
  ServeResponse response = server->Query(std::move(request));
  EXPECT_EQ(response.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ServeTest, OverBudgetRequestRejectedAtAdmission) {
  MatchServerConfig config;
  config.workspace_budget_bytes = 16;  // far below any 24 x 30 scores pass
  std::unique_ptr<MatchServer> server = MakeServer(config);
  ServeResponse response =
      server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.batches, 0u);  // rejected before any kernel work
}

TEST_F(ServeTest, QueueFullRejectedAndDrainedAfterStart) {
  MatchServerConfig config;
  config.queue_capacity = 3;
  // Not started: submissions park in the queue deterministically.
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> admitted;
  for (size_t i = 0; i < config.queue_capacity; ++i) {
    admitted.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
  }
  ServeResponse overflow =
      server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(overflow.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(overflow.retry_after_micros, 0u);  // shed with a backoff hint

  ASSERT_TRUE(server->Start().ok());
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  for (std::future<ServeResponse>& f : admitted) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.assignment.target_of_source,
              reference.target_of_source);
  }
}

TEST_F(ServeTest, ShedWatermarkRejectsBeforeQueueIsFull) {
  MatchServerConfig config;
  config.queue_capacity = 8;
  config.shed_watermark = 2;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> admitted;
  for (size_t i = 0; i < config.shed_watermark; ++i) {
    admitted.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
  }
  // Depth == watermark: shed, even though capacity has room for 6 more.
  ServeResponse shed = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  EXPECT_GT(shed.retry_after_micros, 0u);

  ASSERT_TRUE(server->Start().ok());
  for (std::future<ServeResponse>& f : admitted) {
    EXPECT_TRUE(f.get().status.ok());
  }
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 1u);  // shed is a subset of rejected
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
}

TEST_F(ServeTest, DegradeWatermarkRewritesOntoSparsePath) {
  MatchServerConfig config;
  config.queue_capacity = 16;
  config.degrade_watermark = 1;  // any queued depth >= 1 degrades the next
  config.degrade_num_candidates = 8;
  config.degrade_nprobe = 2;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  Result<CandidateIndex> index =
      CandidateIndex::Build(target_, CandidateIndexOptions());
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ASSERT_TRUE(server
                  ->AttachIndex("default", std::make_unique<CandidateIndex>(
                                               std::move(index).value()))
                  .ok());

  // First submit sits at depth 0 (not degraded); the second sees depth 1.
  std::future<ServeResponse> dense =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));
  std::future<ServeResponse> degraded =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(server->Start().ok());

  ServeResponse dense_response = dense.get();
  ServeResponse degraded_response = degraded.get();
  ASSERT_TRUE(dense_response.status.ok()) << dense_response.status.ToString();
  ASSERT_TRUE(degraded_response.status.ok())
      << degraded_response.status.ToString();
  EXPECT_FALSE(dense_response.degraded);
  EXPECT_TRUE(degraded_response.degraded);
  // The degraded answer is a full assignment over the same source set, just
  // computed from sparse candidates.
  EXPECT_EQ(degraded_response.assignment.target_of_source.size(),
            dense_response.assignment.target_of_source.size());

  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.admitted, 2u);  // degraded is a subset of admitted
}

TEST_F(ServeTest, AttachIndexValidatesPairAndShape) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  Result<CandidateIndex> index =
      CandidateIndex::Build(target_, CandidateIndexOptions());
  ASSERT_TRUE(index.ok());

  EXPECT_EQ(server->AttachIndex("default", nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(server
                ->AttachIndex("nope", std::make_unique<CandidateIndex>(
                                          std::move(index).value()))
                .code(),
            StatusCode::kNotFound);

  Result<CandidateIndex> wrong_shape =
      CandidateIndex::Build(source_, CandidateIndexOptions());
  ASSERT_TRUE(wrong_shape.ok());
  EXPECT_EQ(server
                ->AttachIndex("default", std::make_unique<CandidateIndex>(
                                             std::move(wrong_shape).value()))
                .code(),
            StatusCode::kInvalidArgument);

  Result<CandidateIndex> rebuilt =
      CandidateIndex::Build(target_, CandidateIndexOptions());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_TRUE(server
                  ->AttachIndex("default", std::make_unique<CandidateIndex>(
                                               std::move(rebuilt).value()))
                  .ok());
  Result<CandidateIndex> duplicate =
      CandidateIndex::Build(target_, CandidateIndexOptions());
  ASSERT_TRUE(duplicate.ok());
  EXPECT_EQ(server
                ->AttachIndex("default", std::make_unique<CandidateIndex>(
                                             std::move(duplicate).value()))
                .code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ServeTest, HealthJsonReportsWatermarksAndShedRate) {
  MatchServerConfig config;
  config.queue_capacity = 4;
  config.shed_watermark = 3;
  std::unique_ptr<MatchServer> server = MakeServer(config);
  ASSERT_TRUE(server->Query(MatchRequest(AlgorithmPreset::kCsls)).status.ok());

  const std::string health = server->HealthJson();
  EXPECT_NE(health.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(health.find("\"queue_capacity\": 4"), std::string::npos);
  EXPECT_NE(health.find("\"shed_watermark\": 3"), std::string::npos);
  EXPECT_NE(health.find("\"submitted\": 1"), std::string::npos);
  EXPECT_NE(health.find("\"shed\": 0"), std::string::npos);
  EXPECT_NE(health.find("\"shed_rate\""), std::string::npos);
  // No plan armed in the default test binary.
  EXPECT_NE(health.find("\"fault_plan\": \"off\""), std::string::npos);
}

// Satellite 4 — rejection storm: many threads slam a tiny, *stopped* queue
// so most submissions shed while some are admitted, all racing against each
// other. TSan checks the stats/queue locking; the assertions check that the
// counters never drop or double-count a request.
TEST_F(ServeTest, RejectionStormKeepsStatsConsistent) {
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 32;

  MatchServerConfig config;
  config.queue_capacity = 4;
  config.shed_watermark = 2;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::thread> threads;
  std::vector<std::vector<std::future<ServeResponse>>> futures(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Everything admitted is still parked; start the scheduler and drain.
  ASSERT_TRUE(server->Start().ok());
  size_t ok_count = 0;
  size_t shed_count = 0;
  for (std::vector<std::future<ServeResponse>>& per_thread : futures) {
    for (std::future<ServeResponse>& f : per_thread) {
      ServeResponse response = f.get();
      if (response.status.ok()) {
        ++ok_count;
      } else {
        ASSERT_EQ(response.status.code(), StatusCode::kUnavailable);
        EXPECT_GT(response.retry_after_micros, 0u);
        ++shed_count;
      }
    }
  }
  server->Shutdown();

  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(ok_count + shed_count, kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.shed, stats.rejected);  // every rejection here was a shed
  EXPECT_EQ(stats.shed, shed_count);
  EXPECT_EQ(stats.completed, ok_count);
  EXPECT_GT(shed_count, 0u);  // the storm actually overflowed the watermark
  EXPECT_GT(ok_count, 0u);    // and some work was still admitted
  EXPECT_EQ(stats.latency_samples, stats.completed + stats.failed);
}

TEST_F(ServeTest, ExpiredDeadlineAnsweredWithoutExecuting) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.timeout_micros = 1;
  std::future<ServeResponse> future = server->Submit(std::move(request));
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(server->Start().ok());
  ServeResponse response = future.get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.timed_out, 1u);
  EXPECT_EQ(stats.completed, 0u);
  EXPECT_EQ(stats.batches, 0u);  // expired before any scores pass
}

TEST_F(ServeTest, CompatibleQueriesShareOneScoresPass) {
  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> inflight;
  for (size_t i = 0; i < 8; ++i) {
    inflight.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
  }
  ASSERT_TRUE(server->Start().ok());

  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  for (std::future<ServeResponse>& f : inflight) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.batch_size, 8u);
    EXPECT_EQ(response.assignment.target_of_source,
              reference.target_of_source);
  }
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.batches, 1u);  // one shared similarity+transform pass
  EXPECT_EQ(stats.batched_queries, 8u);
}

TEST_F(ServeTest, MixedSignaturesSplitIntoGroups) {
  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);

  std::vector<std::future<ServeResponse>> csls;
  std::vector<std::future<ServeResponse>> dinf;
  for (size_t i = 0; i < 4; ++i) {
    csls.push_back(server->Submit(MatchRequest(AlgorithmPreset::kCsls)));
    dinf.push_back(server->Submit(MatchRequest(AlgorithmPreset::kDInf)));
  }
  ASSERT_TRUE(server->Start().ok());

  const Assignment csls_reference = SoloMatch(AlgorithmPreset::kCsls);
  const Assignment dinf_reference = SoloMatch(AlgorithmPreset::kDInf);
  for (std::future<ServeResponse>& f : csls) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 4u);
    EXPECT_EQ(response.assignment.target_of_source,
              csls_reference.target_of_source);
  }
  for (std::future<ServeResponse>& f : dinf) {
    ServeResponse response = f.get();
    ASSERT_TRUE(response.status.ok());
    EXPECT_EQ(response.batch_size, 4u);
    EXPECT_EQ(response.assignment.target_of_source,
              dinf_reference.target_of_source);
  }
  server->Shutdown();
  EXPECT_EQ(server->Stats().batches, 2u);  // one pass per signature
}

TEST_F(ServeTest, TopKMatchesDirectRowTopKIndices) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  ServeRequest request = MatchRequest(AlgorithmPreset::kCsls);
  request.kind = ServeQueryKind::kTopK;
  request.topk = 5;
  ServeResponse response = server->Query(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();

  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  Result<Matrix> scores =
      engine->TransformedScores(MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(scores.ok());
  EXPECT_EQ(response.topk, RowTopKIndices(*scores, 5));
}

TEST_F(ServeTest, ShutdownFailsStillQueuedRequests) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  std::future<ServeResponse> parked =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));
  server->Shutdown();  // scheduler never started; the request cannot run
  EXPECT_EQ(parked.get().status.code(), StatusCode::kFailedPrecondition);
  // And new submissions after shutdown are turned away at admission.
  ServeResponse late = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  EXPECT_EQ(late.status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ServeTest, StatsInvariantsHoldAcrossOutcomes) {
  MatchServerConfig config;
  config.workspace_budget_bytes = 1ull << 20;  // admits the small pair
  std::unique_ptr<MatchServer> server = MakeServer(config);

  ASSERT_TRUE(server->Query(MatchRequest(AlgorithmPreset::kCsls)).status.ok());
  ServeRequest unknown = MatchRequest(AlgorithmPreset::kCsls);
  unknown.pair = "nope";
  EXPECT_FALSE(server->Query(std::move(unknown)).status.ok());
  server->Shutdown();

  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.admitted, stats.completed + stats.failed + stats.timed_out);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.latency_samples, stats.completed + stats.failed);
}

// Satellite 3 — the concurrency contract: many client threads with mixed
// presets against one warm server, every answer bit-identical to the
// sequential one-shot engine. TSan (CI job `tsan`) checks the data-race
// side of the same run.
TEST_F(ServeTest, ConcurrentClientsBitIdenticalToSequential) {
  constexpr size_t kClients = 4;
  constexpr size_t kQueriesPerClient = 6;

  const std::vector<AlgorithmPreset> presets = MixedPresets();
  std::vector<Assignment> references;
  references.reserve(presets.size());
  for (AlgorithmPreset preset : presets) {
    references.push_back(SoloMatch(preset));
  }

  MatchServerConfig config;
  config.max_batch = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  std::vector<std::thread> clients;
  std::vector<char> ok(kClients, 1);
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        const size_t which = (c + q) % presets.size();
        ServeResponse response =
            server->Query(MatchRequest(presets[which]));
        if (!response.status.ok() ||
            response.assignment.target_of_source !=
                references[which].target_of_source) {
          ok[c] = 0;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (size_t c = 0; c < kClients; ++c) {
    EXPECT_TRUE(ok[c]) << "client " << c << " saw a divergent answer";
  }
  server->Shutdown();
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.completed, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
}

TEST_F(ServeTest, SocketRoundTripMatchesInProcessQuery) {
  const std::string socket_path =
      "/tmp/em_serve_test_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();

  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;
  Result<WireResponse> wire = client->Call(match);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(wire->status.ok()) << wire->status.ToString();
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  ASSERT_EQ(wire->values.size(), reference.target_of_source.size());
  for (size_t i = 0; i < wire->values.size(); ++i) {
    EXPECT_EQ(wire->values[i], reference.target_of_source[i]);
  }

  WireRequest stats;
  stats.verb = WireRequest::Verb::kStats;
  Result<WireResponse> stats_wire = client->Call(stats);
  ASSERT_TRUE(stats_wire.ok());
  ASSERT_TRUE(stats_wire->status.ok());
  EXPECT_NE(stats_wire->text.find("\"completed\": 1"), std::string::npos);

  WireRequest health;
  health.verb = WireRequest::Verb::kHealth;
  Result<WireResponse> health_wire = client->Call(health);
  ASSERT_TRUE(health_wire.ok()) << health_wire.status().ToString();
  ASSERT_TRUE(health_wire->status.ok());
  EXPECT_NE(health_wire->text.find("\"queue_depth\""), std::string::npos);
  EXPECT_NE(health_wire->text.find("\"fault_plan\""), std::string::npos);

  WireRequest bad;
  bad.verb = WireRequest::Verb::kTopK;
  bad.algorithm = AlgorithmPreset::kCsls;
  bad.k = 0;  // rejected server-side; the error code must cross the wire
  Result<WireResponse> bad_wire = client->Call(bad);
  ASSERT_TRUE(bad_wire.ok());
  EXPECT_EQ(bad_wire->status.code(), StatusCode::kInvalidArgument);

  WireRequest shutdown;
  shutdown.verb = WireRequest::Verb::kShutdown;
  Result<WireResponse> shutdown_wire = client->Call(shutdown);
  ASSERT_TRUE(shutdown_wire.ok());
  EXPECT_TRUE(shutdown_wire->status.ok());

  (*front)->WaitForShutdown();
  (*front)->Stop();
  server->Shutdown();
}

// Retry policy: a shed (kUnavailable) answer is retried with backoff; if the
// server never recovers the client surfaces the last shed response instead
// of spinning forever.
TEST_F(ServeTest, CallWithRetryGivesUpAgainstASaturatedServer) {
  const std::string socket_path =
      "/tmp/em_retry_test_" + std::to_string(::getpid()) + ".sock";
  MatchServerConfig config;
  config.queue_capacity = 4;
  config.shed_watermark = 1;
  // Not started: one parked request keeps the depth at the watermark, so
  // every socket call sheds deterministically.
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);
  std::future<ServeResponse> parked =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));

  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 500;
  policy.budget_micros = 1000000;

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;
  Result<WireResponse> wire = client->CallWithRetry(match, policy);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->status.code(), StatusCode::kUnavailable);
  EXPECT_GT(wire->retry_after_micros, 0u);
  // All 3 attempts were shed and counted as submissions.
  EXPECT_EQ(server->Stats().shed, 3u);

  ASSERT_TRUE(server->Start().ok());
  EXPECT_TRUE(parked.get().status.ok());
  (*front)->Stop();
  server->Shutdown();
}

// Regression (self-healing fleet satellite): the server's retry-after hint
// must survive a transport failure on the following attempt. A shedding
// shard that then drops its connection (crash, restart) used to reset the
// client to its tiny local backoff — hammering the reviving server at
// microsecond cadence exactly when it asked for breathing room.
TEST_F(ServeTest, CallWithRetryKeepsServerHintAcrossTransportFailure) {
  // Sheds every request with a fat retry-after hint, and flags the first
  // call so the test can kill the listener while the client backs off.
  class SheddingHandler : public WireHandler {
   public:
    std::string Handle(const std::string&, bool*) override {
      first_answered.set_value_at_most_once();
      return EncodeErrorResponse(Status::Unavailable("shedding"),
                                 /*retry_after_micros=*/30000);
    }
    struct Once {
      std::promise<void> promise;
      std::atomic<bool> set{false};
      void set_value_at_most_once() {
        if (!set.exchange(true)) promise.set_value();
      }
    };
    Once first_answered;
  };

  const std::string socket_path =
      "/tmp/em_retry_hint_test_" + std::to_string(::getpid()) + ".sock";
  SheddingHandler handler;
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(static_cast<WireHandler*>(&handler), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok());

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_micros = 100;
  policy.max_backoff_micros = 200;
  policy.budget_micros = 10'000'000;

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;

  const auto start = std::chrono::steady_clock::now();
  std::thread killer([&] {
    // After the first shed response is on the wire, tear the front down so
    // attempts 2 and 3 die at the transport (connect refused).
    handler.first_answered.promise.get_future().wait();
    // Let the response frame reach the client before cutting the cord.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (*front)->Stop();
  });
  Result<WireResponse> wire = client->CallWithRetry(match, policy);
  killer.join();
  const uint64_t elapsed_micros = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());

  // Attempts 2 and 3 hit a dead socket — the final verdict is the transport
  // failure, but BOTH sleeps honored the 30 ms hint (local backoff alone
  // would finish in well under a millisecond).
  EXPECT_FALSE(wire.ok() && wire->status.ok());
  EXPECT_GE(elapsed_micros, 2 * 30000u - 5000u);
}

TEST_F(ServeTest, CallWithRetrySucceedsOnceTheServerDrains) {
  const std::string socket_path =
      "/tmp/em_retry_ok_test_" + std::to_string(::getpid()) + ".sock";
  MatchServerConfig config;
  config.queue_capacity = 4;
  config.shed_watermark = 1;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);
  std::future<ServeResponse> parked =
      server->Submit(MatchRequest(AlgorithmPreset::kCsls));

  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok());
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok());

  // Recovery arrives while the client is backing off.
  std::thread recovery([&server] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(server->Start().ok());
  });

  RetryPolicy policy;
  policy.max_attempts = 50;
  policy.initial_backoff_micros = 2000;
  policy.max_backoff_micros = 20000;
  policy.budget_micros = 30000000;

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;
  Result<WireResponse> wire = client->CallWithRetry(match, policy);
  recovery.join();
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(wire->status.ok()) << wire->status.ToString();
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  ASSERT_EQ(wire->values.size(), reference.target_of_source.size());
  EXPECT_TRUE(parked.get().status.ok());
  EXPECT_GT(server->Stats().shed, 0u);  // it really was shed at least once

  (*front)->Stop();
  server->Shutdown();
}

// Fleet satellite — routed sub-queries. A row-ranged request must return
// exactly the slice of the full answer: transforms are globally normalized,
// so the shard runs the whole pipeline and slices rows. This is the
// property the router's bit-identical merge is built on.
TEST_F(ServeTest, RoutedRangeSlicesRowsBitIdentically) {
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());

  const Assignment full = SoloMatch(AlgorithmPreset::kCsls);
  ServeRequest ranged = MatchRequest(AlgorithmPreset::kCsls);
  ranged.row_begin = 4;
  ranged.row_end = 9;
  ServeResponse response = server->Query(std::move(ranged));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  ASSERT_EQ(response.assignment.target_of_source.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(response.assignment.target_of_source[i],
              full.target_of_source[4 + i]);
  }

  // Ranged topk with want_scores: indices AND bit-exact scores sliced from
  // the full per-row lists (the router merges partial lists by score).
  constexpr size_t kK = 3;
  ServeRequest full_topk = MatchRequest(AlgorithmPreset::kCsls);
  full_topk.kind = ServeQueryKind::kTopK;
  full_topk.topk = kK;
  full_topk.want_scores = true;
  ServeResponse full_response = server->Query(std::move(full_topk));
  ASSERT_TRUE(full_response.status.ok()) << full_response.status.ToString();
  ASSERT_EQ(full_response.topk.size(), source_.rows() * kK);
  ASSERT_EQ(full_response.topk_scores.size(), full_response.topk.size());

  ServeRequest ranged_topk = MatchRequest(AlgorithmPreset::kCsls);
  ranged_topk.kind = ServeQueryKind::kTopK;
  ranged_topk.topk = kK;
  ranged_topk.want_scores = true;
  ranged_topk.row_begin = 4;
  ranged_topk.row_end = 9;
  ServeResponse sliced = server->Query(std::move(ranged_topk));
  ASSERT_TRUE(sliced.status.ok()) << sliced.status.ToString();
  ASSERT_EQ(sliced.topk.size(), 5 * kK);
  ASSERT_EQ(sliced.topk_scores.size(), sliced.topk.size());
  for (size_t i = 0; i < sliced.topk.size(); ++i) {
    EXPECT_EQ(sliced.topk[i], full_response.topk[4 * kK + i]);
    // Bit-exact, not approximately equal: the merge compares raw floats.
    EXPECT_EQ(std::memcmp(&sliced.topk_scores[i],
                          &full_response.topk_scores[4 * kK + i],
                          sizeof(float)),
              0);
  }

  // Degenerate ranges are refused at admission, not served empty.
  ServeRequest empty = MatchRequest(AlgorithmPreset::kCsls);
  empty.row_begin = 9;
  empty.row_end = 4;
  EXPECT_EQ(server->Query(std::move(empty)).status.code(),
            StatusCode::kOutOfRange);
  ServeRequest beyond = MatchRequest(AlgorithmPreset::kCsls);
  beyond.row_begin = 0;
  beyond.row_end = source_.rows() + 1;
  EXPECT_EQ(server->Query(std::move(beyond)).status.code(),
            StatusCode::kOutOfRange);
}

// Fleet satellite — observability: the health JSON carries the result-cache
// counters and the per-pair snapshot-version map the router keys its
// mixed-version refusal on.
TEST_F(ServeTest, HealthJsonCarriesCacheCountersAndPairVersions) {
  MatchServerConfig config;
  config.result_cache_bytes = 1 << 20;
  std::unique_ptr<MatchServer> server = MakeServer(config);

  // Identical back-to-back queries: the first misses, the second hits.
  ASSERT_TRUE(server->Query(MatchRequest(AlgorithmPreset::kCsls)).status.ok());
  ServeResponse second = server->Query(MatchRequest(AlgorithmPreset::kCsls));
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cached);

  const std::string health = server->HealthJson();
  EXPECT_NE(health.find("\"cache_hits\": 1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cache_misses\": 1"), std::string::npos) << health;
  EXPECT_NE(health.find("\"cache_evictions\": 0"), std::string::npos);
  EXPECT_NE(health.find("\"result_cache_bytes\""), std::string::npos);
  EXPECT_NE(health.find("\"pairs\": {\"default\": 1}"), std::string::npos)
      << health;

  // The same fields surface in the stats JSON.
  const std::string stats = server->Stats().ToJson();
  EXPECT_NE(stats.find("\"cache_hits\": 1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"cache_misses\": 1"), std::string::npos) << stats;
}

// Fleet satellite — the route verb over the socket: the response echoes the
// row range, tags the snapshot version, and (for topk) carries scores.
TEST_F(ServeTest, RoutedWireQueryEchoesRangeVersionAndScores) {
  const std::string socket_path =
      "/tmp/em_serve_route_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<MatchServer> server = MakeServer(MatchServerConfig());
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  WireRequest request;
  request.verb = WireRequest::Verb::kMatch;
  request.algorithm = AlgorithmPreset::kCsls;
  request.pair = "default";
  request.route = true;
  request.row_begin = 2;
  request.row_end = 7;
  Result<WireResponse> wire = client->Call(request);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  ASSERT_TRUE(wire->status.ok()) << wire->status.ToString();
  EXPECT_TRUE(wire->has_range);
  EXPECT_EQ(wire->row_begin, 2u);
  EXPECT_EQ(wire->row_end, 7u);
  EXPECT_EQ(wire->version, 1u);  // first published snapshot of the pair
  const Assignment reference = SoloMatch(AlgorithmPreset::kCsls);
  ASSERT_EQ(wire->values.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(wire->values[i], reference.target_of_source[2 + i]);
  }

  // Routed topk always carries scores (the merge needs them).
  request.verb = WireRequest::Verb::kTopK;
  request.k = 4;
  Result<WireResponse> topk = client->Call(request);
  ASSERT_TRUE(topk.ok()) << topk.status().ToString();
  ASSERT_TRUE(topk->status.ok()) << topk->status.ToString();
  EXPECT_EQ(topk->values.size(), 5u * 4u);
  EXPECT_EQ(topk->scores.size(), topk->values.size());

  (*front)->Stop();
  server->Shutdown();
}

}  // namespace
}  // namespace entmatcher
