#include "kg/dataset_io.h"

#include <unistd.h>

#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/kg_pair_generator.h"

namespace entmatcher {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("entmatcher_dsio_" + std::to_string(::getpid()));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
};

KgPairDataset MakeDataset(double unmatchable = 0.0) {
  KgPairGeneratorConfig c;
  c.name = "dsio-test";
  c.seed = 5;
  c.num_core_concepts = 150;
  c.exclusive_fraction = 0.3;
  c.unmatchable_source_fraction = unmatchable;
  c.avg_degree = 3.5;
  c.num_world_relations = 25;
  c.num_relations_source = 20;
  c.num_relations_target = 18;
  auto d = GenerateKgPair(c);
  EXPECT_TRUE(d.ok());
  return std::move(d).value();
}

TEST_F(DatasetIoTest, RoundTripPreservesEverything) {
  KgPairDataset original = MakeDataset();
  ASSERT_TRUE(SaveDatasetDir(original, dir_.string()).ok());

  auto loaded = LoadDatasetDir(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->source.triples().size(), original.source.triples().size());
  EXPECT_EQ(loaded->target.triples().size(), original.target.triples().size());
  EXPECT_EQ(loaded->gold.size(), original.gold.size());
  EXPECT_EQ(loaded->split.train.size(), original.split.train.size());
  EXPECT_EQ(loaded->split.valid.size(), original.split.valid.size());
  EXPECT_EQ(loaded->split.test.size(), original.split.test.size());
  // Names survive.
  ASSERT_TRUE(loaded->source.has_entity_names());
  EXPECT_EQ(loaded->source.EntityName(0), original.source.EntityName(0));
  // Candidate sets are re-derived identically (same link-order derivation).
  EXPECT_EQ(loaded->test_source_entities.size(),
            original.test_source_entities.size());
  // Gold content identical.
  for (const EntityPair& p : original.gold.pairs()) {
    EXPECT_TRUE(loaded->gold.Contains(p.source, p.target));
  }
}

TEST_F(DatasetIoTest, RoundTripPreservesUnmatchables) {
  KgPairDataset original = MakeDataset(/*unmatchable=*/0.3);
  const size_t linked = original.split.test.SourceEntities().size();
  ASSERT_GT(original.test_source_entities.size(), linked);

  ASSERT_TRUE(SaveDatasetDir(original, dir_.string()).ok());
  auto loaded = LoadDatasetDir(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->test_source_entities.size(),
            original.test_source_entities.size());
}

TEST_F(DatasetIoTest, LoadMissingDirectoryFails) {
  EXPECT_FALSE(LoadDatasetDir((dir_ / "missing").string()).ok());
}

TEST_F(DatasetIoTest, LoadDirectoryMissingRequiredFileFails) {
  KgPairDataset original = MakeDataset();
  ASSERT_TRUE(SaveDatasetDir(original, dir_.string()).ok());
  std::filesystem::remove(dir_ / "ent_links");
  EXPECT_FALSE(LoadDatasetDir(dir_.string()).ok());
}

TEST_F(DatasetIoTest, NamesAreOptional) {
  KgPairDataset original = MakeDataset();
  ASSERT_TRUE(SaveDatasetDir(original, dir_.string()).ok());
  std::filesystem::remove(dir_ / "ent_names_1");
  std::filesystem::remove(dir_ / "ent_names_2");
  auto loaded = LoadDatasetDir(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE(loaded->source.has_entity_names());
}

TEST_F(DatasetIoTest, DatasetNameIsDirectoryName) {
  KgPairDataset original = MakeDataset();
  ASSERT_TRUE(SaveDatasetDir(original, dir_.string()).ok());
  auto loaded = LoadDatasetDir(dir_.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->name, dir_.filename().string());
}

}  // namespace
}  // namespace entmatcher
