#include "kg/graph.h"

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

KnowledgeGraph MakeTestGraph() {
  // 0 --r0--> 1, 1 --r1--> 2, 0 --r0--> 2
  auto result = KnowledgeGraph::Create(
      4, 2, {{0, 0, 1}, {1, 1, 2}, {0, 0, 2}});
  EXPECT_TRUE(result.ok());
  return std::move(result).value();
}

TEST(KnowledgeGraphTest, BasicCounts) {
  KnowledgeGraph g = MakeTestGraph();
  EXPECT_EQ(g.num_entities(), 4u);
  EXPECT_EQ(g.num_relations(), 2u);
  EXPECT_EQ(g.triples().size(), 3u);
}

TEST(KnowledgeGraphTest, RejectsOutOfRangeIds) {
  EXPECT_FALSE(KnowledgeGraph::Create(2, 1, {{0, 0, 2}}).ok());  // entity
  EXPECT_FALSE(KnowledgeGraph::Create(2, 1, {{0, 1, 1}}).ok());  // relation
  EXPECT_TRUE(KnowledgeGraph::Create(2, 1, {{0, 0, 1}}).ok());
}

TEST(KnowledgeGraphTest, NeighborsBothDirections) {
  KnowledgeGraph g = MakeTestGraph();
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);  // two outgoing
  for (const auto& e : n0) {
    EXPECT_FALSE(e.inverse);
    EXPECT_EQ(e.relation, 0u);
  }
  auto n2 = g.Neighbors(2);
  ASSERT_EQ(n2.size(), 2u);  // two incoming
  for (const auto& e : n2) EXPECT_TRUE(e.inverse);

  auto n1 = g.Neighbors(1);
  ASSERT_EQ(n1.size(), 2u);  // one in, one out
  auto n3 = g.Neighbors(3);
  EXPECT_TRUE(n3.empty());
}

TEST(KnowledgeGraphTest, Degree) {
  KnowledgeGraph g = MakeTestGraph();
  EXPECT_EQ(g.Degree(0), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(2), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
}

TEST(KnowledgeGraphTest, AverageDegreeUsesTableConvention) {
  KnowledgeGraph g = MakeTestGraph();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 3.0 / 4.0);
  KnowledgeGraph empty;
  EXPECT_EQ(empty.AverageDegree(), 0.0);
}

TEST(KnowledgeGraphTest, RelationFrequencies) {
  KnowledgeGraph g = MakeTestGraph();
  auto freq = g.RelationFrequencies();
  ASSERT_EQ(freq.size(), 2u);
  EXPECT_EQ(freq[0], 2u);
  EXPECT_EQ(freq[1], 1u);
}

TEST(KnowledgeGraphTest, EntityNames) {
  KnowledgeGraph g = MakeTestGraph();
  EXPECT_FALSE(g.has_entity_names());
  EXPECT_FALSE(g.SetEntityNames({"a", "b"}).ok());  // wrong count
  ASSERT_TRUE(g.SetEntityNames({"a", "b", "c", "d"}).ok());
  EXPECT_TRUE(g.has_entity_names());
  EXPECT_EQ(g.EntityName(2), "c");
}

TEST(KnowledgeGraphTest, EmptyGraphIsValid) {
  auto g = KnowledgeGraph::Create(0, 0, {});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_entities(), 0u);
}

}  // namespace
}  // namespace entmatcher
