#include "kg/alignment.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

TEST(AlignmentSetTest, ContainsAndLookups) {
  AlignmentSet set({{1, 10}, {2, 20}, {1, 11}});
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.Contains(1, 10));
  EXPECT_TRUE(set.Contains(1, 11));
  EXPECT_FALSE(set.Contains(1, 20));
  EXPECT_FALSE(set.Contains(3, 30));

  auto targets = set.TargetsOf(1);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<EntityId>{10, 11}));
  EXPECT_TRUE(set.TargetsOf(99).empty());

  auto sources = set.SourcesOf(20);
  EXPECT_EQ(sources, (std::vector<EntityId>{2}));
}

TEST(AlignmentSetTest, DistinctEntityLists) {
  AlignmentSet set({{1, 10}, {1, 11}, {2, 10}});
  EXPECT_EQ(set.SourceEntities(), (std::vector<EntityId>{1, 2}));
  EXPECT_EQ(set.TargetEntities(), (std::vector<EntityId>{10, 11}));
}

TEST(AlignmentSetTest, CountOneToOneLinks) {
  // (1,10) is 1-to-1; the cluster {2,3} x {20} is not; (4,40) is.
  AlignmentSet set({{1, 10}, {2, 20}, {3, 20}, {4, 40}});
  EXPECT_EQ(set.CountOneToOneLinks(), 2u);
}

TEST(AlignmentSetTest, AddUpdatesIndexes) {
  AlignmentSet set;
  EXPECT_TRUE(set.empty());
  set.Add({5, 50});
  EXPECT_TRUE(set.Contains(5, 50));
  EXPECT_EQ(set.size(), 1u);
}

std::vector<EntityPair> MakePairs(size_t n) {
  std::vector<EntityPair> pairs;
  for (size_t i = 0; i < n; ++i) {
    pairs.push_back({static_cast<EntityId>(i), static_cast<EntityId>(i + 1000)});
  }
  return pairs;
}

TEST(SplitAlignmentTest, FractionsAndDisjointCover) {
  AlignmentSet gold(MakePairs(100));
  Rng rng(1);
  auto split = SplitAlignment(gold, 0.2, 0.1, &rng);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(split->train.size(), 20u);
  EXPECT_EQ(split->valid.size(), 10u);
  EXPECT_EQ(split->test.size(), 70u);

  // Disjoint and covering.
  std::set<EntityId> seen;
  for (const auto* part : {&split->train, &split->valid, &split->test}) {
    for (const EntityPair& p : part->pairs()) {
      EXPECT_TRUE(seen.insert(p.source).second);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(SplitAlignmentTest, RejectsBadFractions) {
  AlignmentSet gold(MakePairs(10));
  Rng rng(1);
  EXPECT_FALSE(SplitAlignment(gold, 0.8, 0.3, &rng).ok());
  EXPECT_FALSE(SplitAlignment(gold, -0.1, 0.1, &rng).ok());
}

TEST(SplitAlignmentTest, DeterministicGivenSeed) {
  AlignmentSet gold(MakePairs(50));
  Rng rng1(9);
  Rng rng2(9);
  auto a = SplitAlignment(gold, 0.2, 0.1, &rng1);
  auto b = SplitAlignment(gold, 0.2, 0.1, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->train.pairs().size(), b->train.pairs().size());
  for (size_t i = 0; i < a->train.size(); ++i) {
    EXPECT_EQ(a->train.pairs()[i], b->train.pairs()[i]);
  }
}

TEST(SplitPreservingClustersTest, LinksSharingEntitiesStayTogether) {
  // Two clusters: {(1,10),(1,11),(2,11)} and {(5,50)}; plus singles.
  std::vector<EntityPair> pairs = {{1, 10}, {1, 11}, {2, 11}, {5, 50},
                                   {6, 60}, {7, 70}, {8, 80}, {9, 90}};
  AlignmentSet gold(pairs);
  Rng rng(3);
  auto split = SplitAlignmentPreservingClusters(gold, 0.3, 0.2, &rng);
  ASSERT_TRUE(split.ok());

  // The three linked pairs must be in the same part.
  auto part_of = [&](EntityId s, EntityId t) {
    if (split->train.Contains(s, t)) return 0;
    if (split->valid.Contains(s, t)) return 1;
    if (split->test.Contains(s, t)) return 2;
    return -1;
  };
  const int p = part_of(1, 10);
  ASSERT_NE(p, -1);
  EXPECT_EQ(part_of(1, 11), p);
  EXPECT_EQ(part_of(2, 11), p);

  // Everything is assigned exactly once.
  EXPECT_EQ(split->train.size() + split->valid.size() + split->test.size(),
            pairs.size());
}

TEST(SplitPreservingClustersTest, LargeClusterIntegrityProperty) {
  // Build chains: (i, t), (i, t+1), (i+1, t+1) — forcing shared entities.
  std::vector<EntityPair> pairs;
  for (EntityId i = 0; i < 60; i += 2) {
    pairs.push_back({i, 1000 + i});
    pairs.push_back({i, 1000 + i + 1});
    pairs.push_back({i + 1, 1000 + i + 1});
  }
  AlignmentSet gold(pairs);
  Rng rng(11);
  auto split = SplitAlignmentPreservingClusters(gold, 0.7, 0.1, &rng);
  ASSERT_TRUE(split.ok());

  // No entity (either side) appears in more than one part.
  auto entities_of = [](const AlignmentSet& s) {
    std::set<uint64_t> out;
    for (const EntityPair& p : s.pairs()) {
      out.insert(p.source);
      out.insert(1ull << 32 | p.target);
    }
    return out;
  };
  auto train_e = entities_of(split->train);
  auto valid_e = entities_of(split->valid);
  auto test_e = entities_of(split->test);
  for (uint64_t e : train_e) {
    EXPECT_EQ(valid_e.count(e), 0u);
    EXPECT_EQ(test_e.count(e), 0u);
  }
  for (uint64_t e : valid_e) EXPECT_EQ(test_e.count(e), 0u);
}

}  // namespace
}  // namespace entmatcher
