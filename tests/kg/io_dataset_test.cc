#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "kg/dataset.h"
#include "kg/io.h"

namespace entmatcher {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("entmatcher_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, TriplesRoundTrip) {
  auto g = KnowledgeGraph::Create(5, 3, {{0, 0, 1}, {2, 2, 4}, {3, 1, 0}});
  ASSERT_TRUE(g.ok());
  const std::string path = Path("triples.tsv");
  ASSERT_TRUE(WriteTriplesTsv(*g, path).ok());

  auto loaded = ReadTriplesTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->triples().size(), 3u);
  EXPECT_EQ(loaded->num_entities(), 5u);   // max id 4 + 1
  EXPECT_EQ(loaded->num_relations(), 3u);  // max id 2 + 1
  EXPECT_EQ(loaded->triples()[1], (Triple{2, 2, 4}));
}

TEST_F(IoTest, LinksRoundTrip) {
  AlignmentSet links({{1, 100}, {2, 200}});
  const std::string path = Path("links.tsv");
  ASSERT_TRUE(WriteLinksTsv(links, path).ok());
  auto loaded = ReadLinksTsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains(1, 100));
  EXPECT_TRUE(loaded->Contains(2, 200));
}

TEST_F(IoTest, NamesRoundTrip) {
  auto g = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->SetEntityNames({"Alpha", "Beta Gamma"}).ok());
  const std::string path = Path("names.txt");
  ASSERT_TRUE(WriteEntityNames(*g, path).ok());
  auto names = ReadEntityNames(path);
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ((*names)[1], "Beta Gamma");
}

TEST_F(IoTest, WriteNamesWithoutNamesFails) {
  auto g = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(WriteEntityNames(*g, Path("x.txt")).ok());
}

TEST_F(IoTest, ReadMissingFileFails) {
  EXPECT_FALSE(ReadTriplesTsv(Path("nope.tsv")).ok());
  EXPECT_FALSE(ReadLinksTsv(Path("nope.tsv")).ok());
  EXPECT_FALSE(ReadEntityNames(Path("nope.txt")).ok());
}

TEST_F(IoTest, ReadMalformedTriplesFails) {
  const std::string path = Path("bad.tsv");
  std::ofstream(path) << "1\t2\n";  // only two fields
  EXPECT_FALSE(ReadTriplesTsv(path).ok());

  std::ofstream(path) << "a\tb\tc\n";  // non-numeric
  EXPECT_FALSE(ReadTriplesTsv(path).ok());
}

TEST_F(IoTest, ReadSkipsBlankLines) {
  const std::string path = Path("blank.tsv");
  std::ofstream(path) << "0\t0\t1\n\n  \n2\t0\t1\n";
  auto g = ReadTriplesTsv(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->triples().size(), 2u);
}

// ---- PopulateTestCandidates --------------------------------------------------

TEST(DatasetTest, PopulateTestCandidatesFromTestLinks) {
  KgPairDataset d;
  d.split.test = AlignmentSet({{1, 10}, {2, 20}, {1, 11}});
  PopulateTestCandidates(&d);
  EXPECT_EQ(d.test_source_entities, (std::vector<EntityId>{1, 2}));
  EXPECT_EQ(d.test_target_entities, (std::vector<EntityId>{10, 20, 11}));
}

TEST(DatasetTest, PopulateTestCandidatesWithExtrasDeduplicates) {
  KgPairDataset d;
  d.split.test = AlignmentSet({{1, 10}});
  PopulateTestCandidates(&d, /*extra_sources=*/{1, 5, 5},
                         /*extra_targets=*/{99});
  EXPECT_EQ(d.test_source_entities, (std::vector<EntityId>{1, 5}));
  EXPECT_EQ(d.test_target_entities, (std::vector<EntityId>{10, 99}));
}

TEST(DatasetTest, StatsAggregation) {
  KgPairDataset d;
  auto src = KnowledgeGraph::Create(3, 2, {{0, 0, 1}, {1, 1, 2}});
  auto tgt = KnowledgeGraph::Create(2, 1, {{0, 0, 1}});
  ASSERT_TRUE(src.ok() && tgt.ok());
  d.source = std::move(src).value();
  d.target = std::move(tgt).value();
  EXPECT_EQ(d.TotalEntities(), 5u);
  EXPECT_EQ(d.TotalRelations(), 3u);
  EXPECT_EQ(d.TotalTriples(), 3u);
  EXPECT_DOUBLE_EQ(d.AverageDegree(), 3.0 / 5.0);
}

}  // namespace
}  // namespace entmatcher
