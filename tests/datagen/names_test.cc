#include "datagen/names.h"

#include <cctype>

#include <gtest/gtest.h>

namespace entmatcher {
namespace {

TEST(NamesTest, BaseNameDeterministicGivenRngState) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(GenerateBaseName(&a), GenerateBaseName(&b));
  }
}

TEST(NamesTest, BaseNamesNonEmptyAndCapitalized) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::string name = GenerateBaseName(&rng);
    ASSERT_FALSE(name.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(name[0])));
  }
}

TEST(NamesTest, PlainZeroNoiseIsIdentity) {
  Rng rng(1);
  const std::string base = "Brandol Kemin";
  EXPECT_EQ(RenderName(base, NameStyle::kPlain, 0.0, &rng), base);
}

TEST(NamesTest, IdentifierStyleReplacesSpaces) {
  Rng rng(1);
  EXPECT_EQ(RenderName("Foo Bar", NameStyle::kIdentifier, 0.0, &rng),
            "Foo_Bar");
}

TEST(NamesTest, StyleMappingsAreDeterministic) {
  Rng rng(1);
  // kRomance maps k->c and appends "e".
  EXPECT_EQ(RenderName("kat", NameStyle::kRomance, 0.0, &rng), "cate");
  // kGermanic maps c->k and appends "en".
  EXPECT_EQ(RenderName("cat", NameStyle::kGermanic, 0.0, &rng), "katen");
  // kTransliterated maps l->r and appends "u".
  EXPECT_EQ(RenderName("tal", NameStyle::kTransliterated, 0.0, &rng), "taru");
}

TEST(NamesTest, NoiseChangesSomeNames) {
  Rng rng(5);
  int changed = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string base = GenerateBaseName(&rng);
    const std::string rendered =
        RenderName(base, NameStyle::kPlain, 0.3, &rng);
    if (rendered != base) ++changed;
  }
  EXPECT_GT(changed, 25);
}

TEST(NamesTest, HighNoiseNeverReturnsEmpty) {
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(RenderName("ab", NameStyle::kPlain, 1.0, &rng).empty());
  }
}

TEST(NamesTest, LowNoisePreservesMostCharacters) {
  Rng rng(8);
  const std::string base = "Brandolkeminster";
  int total_edits = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const std::string r = RenderName(base, NameStyle::kPlain, 0.05, &rng);
    // Count a rough edit signal: length difference.
    total_edits += std::abs(static_cast<int>(r.size()) -
                            static_cast<int>(base.size()));
  }
  // At 5% per-char noise on 16 chars, expect well under 2 length edits/name.
  EXPECT_LT(total_edits, 2 * trials);
}

}  // namespace
}  // namespace entmatcher
