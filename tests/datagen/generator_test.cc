#include "datagen/kg_pair_generator.h"

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "datagen/benchmarks.h"

namespace entmatcher {
namespace {

KgPairGeneratorConfig SmallConfig() {
  KgPairGeneratorConfig c;
  c.name = "test";
  c.seed = 1234;
  c.num_core_concepts = 300;
  c.exclusive_fraction = 0.2;
  c.avg_degree = 4.0;
  c.num_world_relations = 50;
  c.num_relations_source = 40;
  c.num_relations_target = 35;
  return c;
}

TEST(GeneratorTest, BasicShape) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->name, "test");
  // 300 core + 60 exclusive per side.
  EXPECT_EQ(d->source.num_entities(), 360u);
  EXPECT_EQ(d->target.num_entities(), 360u);
  EXPECT_EQ(d->gold.size(), 300u);
  // 20/10/70 split.
  EXPECT_EQ(d->split.train.size(), 60u);
  EXPECT_EQ(d->split.valid.size(), 30u);
  EXPECT_EQ(d->split.test.size(), 210u);
}

TEST(GeneratorTest, AverageDegreeNearTarget) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d->source.AverageDegree(), 4.0, 0.5);
  EXPECT_NEAR(d->target.AverageDegree(), 4.0, 0.5);
}

TEST(GeneratorTest, NoIsolatedEntities) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  for (size_t e = 0; e < d->source.num_entities(); ++e) {
    EXPECT_GT(d->source.Degree(static_cast<EntityId>(e)), 0u) << "source " << e;
  }
  for (size_t e = 0; e < d->target.num_entities(); ++e) {
    EXPECT_GT(d->target.Degree(static_cast<EntityId>(e)), 0u) << "target " << e;
  }
}

TEST(GeneratorTest, GoldLinksReferenceValidEntities) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  for (const EntityPair& p : d->gold.pairs()) {
    EXPECT_LT(p.source, d->source.num_entities());
    EXPECT_LT(p.target, d->target.num_entities());
  }
}

TEST(GeneratorTest, EntityNamesPresent) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->source.has_entity_names());
  ASSERT_TRUE(d->target.has_entity_names());
  for (size_t e = 0; e < d->source.num_entities(); ++e) {
    EXPECT_FALSE(d->source.EntityName(static_cast<EntityId>(e)).empty());
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  auto a = GenerateKgPair(SmallConfig());
  auto b = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->source.triples().size(), b->source.triples().size());
  for (size_t i = 0; i < a->source.triples().size(); ++i) {
    EXPECT_EQ(a->source.triples()[i], b->source.triples()[i]);
  }
  EXPECT_EQ(a->gold.pairs().size(), b->gold.pairs().size());
  for (size_t i = 0; i < a->gold.size(); ++i) {
    EXPECT_EQ(a->gold.pairs()[i], b->gold.pairs()[i]);
  }
  EXPECT_EQ(a->source.EntityName(0), b->source.EntityName(0));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  KgPairGeneratorConfig c1 = SmallConfig();
  KgPairGeneratorConfig c2 = SmallConfig();
  c2.seed = 999;
  auto a = GenerateKgPair(c1);
  auto b = GenerateKgPair(c2);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same counts (sizes are deterministic) but different structure.
  bool any_diff = a->source.triples().size() != b->source.triples().size();
  const size_t n =
      std::min(a->source.triples().size(), b->source.triples().size());
  for (size_t i = 0; i < n && !any_diff; ++i) {
    any_diff = !(a->source.triples()[i] == b->source.triples()[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, TestCandidatesMatchTestLinks) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->test_source_entities.size(), d->split.test.SourceEntities().size());
  EXPECT_EQ(d->test_target_entities.size(), d->split.test.TargetEntities().size());
}

TEST(GeneratorTest, NoDuplicateTriples) {
  auto d = GenerateKgPair(SmallConfig());
  ASSERT_TRUE(d.ok());
  std::set<std::tuple<uint32_t, uint32_t, uint32_t>> seen;
  for (const Triple& t : d->source.triples()) {
    EXPECT_TRUE(seen.insert({t.subject, t.predicate, t.object}).second);
  }
}

TEST(GeneratorTest, UnmatchableCandidatesHaveNoGoldLinks) {
  KgPairGeneratorConfig c = SmallConfig();
  c.unmatchable_source_fraction = 0.3;
  auto d = GenerateKgPair(c);
  ASSERT_TRUE(d.ok());
  const size_t test_links = d->split.test.size();
  // Extras are clamped by the exclusive-entity pool (0.2 * 300 = 60 here).
  const size_t expected_extra =
      std::min<size_t>(static_cast<size_t>(0.3 * test_links), 60);
  EXPECT_EQ(d->test_source_entities.size(),
            d->split.test.SourceEntities().size() + expected_extra);
  // The extras are appended after the linked sources.
  for (size_t i = d->split.test.SourceEntities().size();
       i < d->test_source_entities.size(); ++i) {
    EXPECT_TRUE(d->gold.TargetsOf(d->test_source_entities[i]).empty());
  }
}

TEST(GeneratorTest, NonOneToOneClustersAndIntegritySplit) {
  KgPairGeneratorConfig c = SmallConfig();
  c.multi_cluster_fraction = 0.6;
  c.max_cluster_size = 3;
  auto d = GenerateKgPair(c);
  ASSERT_TRUE(d.ok());
  // More links than core concepts, and most links non-1-to-1.
  EXPECT_GT(d->gold.size(), 300u);
  EXPECT_LT(d->gold.CountOneToOneLinks(), d->gold.size() / 2);

  // Link integrity: no entity spans two splits.
  std::unordered_set<EntityId> train_src;
  for (const auto& p : d->split.train.pairs()) train_src.insert(p.source);
  for (const auto& p : d->split.test.pairs()) {
    EXPECT_EQ(train_src.count(p.source), 0u);
  }
}

TEST(GeneratorTest, ValidationRejectsBadConfigs) {
  KgPairGeneratorConfig c = SmallConfig();
  c.num_core_concepts = 5;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.triple_keep_prob = 0.0;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.triple_keep_prob = 1.5;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.train_frac = 0.9;
  c.valid_frac = 0.2;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.multi_cluster_fraction = 0.5;
  c.max_cluster_size = 1;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.num_relations_source = 0;
  EXPECT_FALSE(GenerateKgPair(c).ok());

  c = SmallConfig();
  c.avg_degree = -1.0;
  EXPECT_FALSE(GenerateKgPair(c).ok());
}

// ---- Named benchmark configs -------------------------------------------------

TEST(BenchmarksTest, AllPairNamesResolve) {
  for (const auto& names :
       {Dbp15kPairNames(), SrprsPairNames(), Dwy100kPairNames(),
        Dbp15kPlusPairNames(), std::vector<std::string>{"FB-MUL"}}) {
    for (const std::string& name : names) {
      auto config = MakeDatasetConfig(name);
      ASSERT_TRUE(config.ok()) << name;
      EXPECT_EQ(config->name, name);
    }
  }
}

TEST(BenchmarksTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDatasetConfig("NOPE").ok());
  EXPECT_FALSE(MakeDatasetConfig("").ok());
}

TEST(BenchmarksTest, ScaleParameter) {
  auto full = MakeDatasetConfig("D-Z", 1.0);
  auto half = MakeDatasetConfig("D-Z", 0.5);
  ASSERT_TRUE(full.ok() && half.ok());
  EXPECT_EQ(half->num_core_concepts, full->num_core_concepts / 2);
  EXPECT_FALSE(MakeDatasetConfig("D-Z", 0.0).ok());
  EXPECT_FALSE(MakeDatasetConfig("D-Z", -1.0).ok());
}

TEST(BenchmarksTest, FamilyCharacteristics) {
  auto dbp = MakeDatasetConfig("D-Z");
  auto srprs = MakeDatasetConfig("S-F");
  auto dwy = MakeDatasetConfig("DW-W");
  auto plus = MakeDatasetConfig("D-Z+");
  auto mul = MakeDatasetConfig("FB-MUL");
  ASSERT_TRUE(dbp.ok() && srprs.ok() && dwy.ok() && plus.ok() && mul.ok());
  // SRPRS is the sparse family; DWY the large one.
  EXPECT_LT(srprs->avg_degree, dbp->avg_degree);
  EXPECT_GT(dwy->num_core_concepts, dbp->num_core_concepts);
  EXPECT_GT(plus->unmatchable_source_fraction, 0.0);
  EXPECT_GT(mul->multi_cluster_fraction, 0.0);
  EXPECT_EQ(dbp->multi_cluster_fraction, 0.0);
}

TEST(BenchmarksTest, GenerateDatasetSmokeAtTinyScale) {
  auto d = GenerateDataset("S-Y", 0.05);
  ASSERT_TRUE(d.ok());
  EXPECT_GT(d->gold.size(), 0u);
  EXPECT_GT(d->TotalTriples(), 0u);
}

}  // namespace
}  // namespace entmatcher
