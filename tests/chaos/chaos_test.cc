// Chaos suite: drives real fault plans through the engine, workspace, index
// and socket layers (only built with -DENTMATCHER_FAULTS=ON; ctest label
// `chaos`). The golden invariants, whatever the plan:
//   1. nothing crashes or deadlocks — every submitted request terminates,
//   2. every answer carries a definite Status (injected codes included),
//   3. submitted == admitted + rejected (stats never lose a request),
//   4. every *successful* response is bit-identical to a fault-free run.

#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "index/candidate_index.h"
#include "la/mmap_store.h"
#include "la/sparse.h"
#include "matching/engine.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/socket_server.h"

namespace entmatcher {
namespace {

static_assert(kFaultInjectionCompiled,
              "chaos_test must be built with ENTMATCHER_FAULTS=ON");

constexpr size_t kDim = 16;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void Arm(const std::string& spec, uint64_t seed) {
  Result<FaultPlan> plan = FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultInjector::Global().Arm(std::move(plan).value(), seed);
}

class ChaosTest : public ::testing::Test {
 protected:
  ChaosTest()
      : source_(RandomEmbeddings(24, /*seed=*/5)),
        target_(RandomEmbeddings(30, /*seed=*/8)) {}

  void TearDown() override { FaultInjector::Global().Disarm(); }

  /// Fault-free reference answer; call BEFORE arming a plan.
  Assignment Reference(AlgorithmPreset preset) {
    EXPECT_FALSE(FaultInjector::Global().armed());
    Result<MatchEngine> engine = MatchEngine::Create(
        Matrix(source_), Matrix(target_), MakePreset(preset));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    Result<Assignment> assignment = engine->Match();
    EXPECT_TRUE(assignment.ok()) << assignment.status().ToString();
    return std::move(assignment).value();
  }

  std::unique_ptr<MatchServer> MakeServer(const MatchServerConfig& config,
                                          bool start) {
    Result<std::unique_ptr<MatchServer>> server = MatchServer::Create(config);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    Status loaded =
        (*server)->LoadPair("default", Matrix(source_), Matrix(target_));
    EXPECT_TRUE(loaded.ok()) << loaded.ToString();
    if (start) {
      EXPECT_TRUE((*server)->Start().ok());
    }
    return std::move(server).value();
  }

  static ServeRequest MatchRequest() {
    ServeRequest request;
    request.options = MakePreset(AlgorithmPreset::kCsls);
    return request;
  }

  /// Checks the stats ledger after a chaos run.
  static void CheckStatsLedger(const ServerStatsSnapshot& stats) {
    EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
    EXPECT_EQ(stats.admitted,
              stats.completed + stats.failed + stats.timed_out);
    EXPECT_LE(stats.shed, stats.rejected);
    EXPECT_LE(stats.degraded, stats.admitted);
    EXPECT_EQ(stats.queue_depth, 0u);
  }

  Matrix source_;
  Matrix target_;
};

TEST_F(ChaosTest, EngineFaultsEveryRequestTerminatesDefinitely) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  MatchServerConfig config;
  config.queue_capacity = 64;
  config.max_batch = 4;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);
  Arm("engine.scores:p=0.3,code=Internal", /*seed=*/7);

  std::vector<std::future<ServeResponse>> inflight;
  for (size_t i = 0; i < 32; ++i) {
    inflight.push_back(server->Submit(MatchRequest()));
  }
  ASSERT_TRUE(server->Start().ok());

  size_t ok_count = 0;
  size_t injected = 0;
  for (std::future<ServeResponse>& f : inflight) {
    ServeResponse response = f.get();  // invariant 1: terminates
    if (response.status.ok()) {
      ++ok_count;
      // Invariant 4: a fault that didn't fire must not perturb the answer.
      EXPECT_EQ(response.assignment.target_of_source,
                reference.target_of_source);
    } else {
      // Invariant 2: the injected code, not some mangled state.
      EXPECT_EQ(response.status.code(), StatusCode::kInternal)
          << response.status.ToString();
      ++injected;
    }
  }
  server->Shutdown();
  EXPECT_EQ(ok_count + injected, 32u);
  CheckStatsLedger(server->Stats());
  EXPECT_EQ(server->Stats().failed, injected);
}

TEST_F(ChaosTest, WorkspaceExhaustionFailsCleanAndRecovers) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(engine->Match().ok());  // warm the arena fault-free

  Arm("workspace.acquire:p=0.5,max=4,code=ResourceExhausted", /*seed=*/11);
  size_t failures = 0;
  for (int i = 0; i < 16; ++i) {
    Result<Assignment> assignment = engine->Match();
    if (assignment.ok()) {
      EXPECT_EQ(assignment->target_of_source, reference.target_of_source);
    } else {
      EXPECT_EQ(assignment.status().code(), StatusCode::kResourceExhausted);
      // RAII leases: a mid-pipeline abort leaves nothing checked out.
      EXPECT_EQ(engine->workspace().in_use_bytes(), 0u);
      ++failures;
    }
  }
  EXPECT_GT(failures, 0u);   // p=0.5 over many acquires really fired
  EXPECT_LE(failures, 4u);   // max=4 capped it

  // The plan is spent (max=4): the same warm engine serves clean again.
  Result<Assignment> recovered = engine->Match();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->target_of_source, reference.target_of_source);
}

TEST_F(ChaosTest, InjectedLatencyTripsDeadlineBetweenStages) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/false);
  Arm("engine.scores:p=1,latency_us=30000", /*seed=*/3);

  ServeRequest doomed = MatchRequest();
  doomed.timeout_micros = 5000;  // 5 ms deadline vs a 30 ms injected stall
  std::future<ServeResponse> doomed_future = server->Submit(std::move(doomed));
  std::future<ServeResponse> patient_future = server->Submit(MatchRequest());
  ASSERT_TRUE(server->Start().ok());

  ServeResponse expired = doomed_future.get();
  EXPECT_EQ(expired.status.code(), StatusCode::kDeadlineExceeded)
      << expired.status.ToString();
  // The deadline-free rider on the same server still gets the exact answer —
  // injected latency delays, it must not corrupt.
  ServeResponse patient = patient_future.get();
  ASSERT_TRUE(patient.status.ok()) << patient.status.ToString();
  EXPECT_EQ(patient.assignment.target_of_source, reference.target_of_source);
  server->Shutdown();
  CheckStatsLedger(server->Stats());
}

TEST_F(ChaosTest, IndexLoadShortReadAndCorruptionAreCaught) {
  Result<CandidateIndex> built =
      CandidateIndex::Build(target_, CandidateIndexOptions());
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path =
      "/tmp/em_chaos_index_" + std::to_string(::getpid()) + ".eidx";
  ASSERT_TRUE(built->Save(path).ok());

  Arm("index.load.read:nth=1,code=IoError", /*seed=*/1);
  Result<CandidateIndex> short_read = CandidateIndex::Load(path);
  ASSERT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kIoError);

  // A flipped id bit must be caught by the loader's validation, not serve
  // garbage candidates later.
  Arm("index.load.corrupt:nth=1", /*seed=*/1);
  Result<CandidateIndex> corrupt = CandidateIndex::Load(path);
  EXPECT_FALSE(corrupt.ok());

  FaultInjector::Global().Disarm();
  Result<CandidateIndex> clean = CandidateIndex::Load(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->num_targets(), built->num_targets());
  ::unlink(path.c_str());
}

// Same fault points, graph backend: the EIDX2 loader must catch a short read
// and in-memory corruption (a flipped entry-point bit) for HNSW payloads too,
// then serve the exact saved graph once the plan is disarmed.
TEST_F(ChaosTest, HnswIndexLoadFaultsAreCaught) {
  CandidateIndexOptions options;
  options.backend = CandidateBackendKind::kHnsw;
  options.hnsw_max_links = 8;
  options.hnsw_ef_construction = 32;
  Result<CandidateIndex> built = CandidateIndex::Build(target_, options);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const std::string path =
      "/tmp/em_chaos_hnsw_" + std::to_string(::getpid()) + ".eidx";
  ASSERT_TRUE(built->Save(path).ok());

  Arm("index.load.read:nth=1,code=IoError", /*seed=*/1);
  Result<CandidateIndex> short_read = CandidateIndex::Load(path);
  ASSERT_FALSE(short_read.ok());
  EXPECT_EQ(short_read.status().code(), StatusCode::kIoError);

  Arm("index.load.corrupt:nth=1", /*seed=*/1);
  Result<CandidateIndex> corrupt = CandidateIndex::Load(path);
  EXPECT_FALSE(corrupt.ok());

  FaultInjector::Global().Disarm();
  Result<CandidateIndex> clean = CandidateIndex::Load(path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(clean->backend(), CandidateBackendKind::kHnsw);
  Result<SparseScores> before = built->SparseSimilarity(
      source_, target_, SimilarityMetric::kCosine, 5, 1);
  Result<SparseScores> after = clean->SparseSimilarity(
      source_, target_, SimilarityMetric::kCosine, 5, 1);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(before->row_offsets(), after->row_offsets());
  EXPECT_EQ(std::memcmp(before->values(), after->values(),
                        before->nnz() * sizeof(float)),
            0);
  ::unlink(path.c_str());
}

// The out-of-core store's read fault point: a failed map surfaces as a
// definite IoError, and the very next attempt (fault spent) maps the same
// bytes the writer put down.
TEST_F(ChaosTest, MmapStoreLoadFaultIsCaughtThenRecovers) {
  const std::string path =
      "/tmp/em_chaos_embf_" + std::to_string(::getpid()) + ".embf";
  ASSERT_TRUE(MmapStore::Write(target_, path).ok());

  Arm("mmap.load.read:nth=1,code=IoError", /*seed=*/1);
  Result<MmapStore> faulted = MmapStore::Open(path);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kIoError);

  FaultInjector::Global().Disarm();
  Result<MmapStore> store = MmapStore::Open(path);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const Matrix view = store->AsMatrix();
  EXPECT_EQ(std::memcmp(view.data(), target_.data(), target_.ByteSize()), 0);
  ::unlink(path.c_str());
}

TEST_F(ChaosTest, SocketChaosRetryingClientCompletesEveryCall) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  const std::string socket_path =
      "/tmp/em_chaos_sock_" + std::to_string(::getpid()) + ".sock";
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/true);
  Result<std::unique_ptr<SocketServer>> front =
      SocketServer::Start(server.get(), socket_path);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  Result<ServeClient> client = ServeClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // Partial writes (forced 3-byte chunks), failed writes, and failed reads,
  // all capped so the run terminates; the retrying client must absorb every
  // mid-frame disconnect via reconnect.
  Arm("socket.write.chunk:p=0.5,arg=3;"
      "socket.write:nth=6,max=8,code=IoError;"
      "socket.read:nth=9,max=4,code=IoError",
      /*seed=*/23);

  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.initial_backoff_micros = 200;
  policy.max_backoff_micros = 2000;
  policy.budget_micros = 10000000;

  WireRequest match;
  match.verb = WireRequest::Verb::kMatch;
  match.algorithm = AlgorithmPreset::kCsls;
  for (int call = 0; call < 6; ++call) {
    Result<WireResponse> wire = client->CallWithRetry(match, policy);
    ASSERT_TRUE(wire.ok()) << "call " << call << ": "
                           << wire.status().ToString();
    ASSERT_TRUE(wire->status.ok()) << "call " << call << ": "
                                   << wire->status.ToString();
    ASSERT_EQ(wire->values.size(), reference.target_of_source.size());
    for (size_t i = 0; i < wire->values.size(); ++i) {
      EXPECT_EQ(wire->values[i], reference.target_of_source[i]);
    }
  }
  EXPECT_GT(FaultInjector::Global().total_fires(), 0u);

  // Final verification runs fault-free.
  FaultInjector::Global().Disarm();
  Result<WireResponse> final_wire = client->CallWithRetry(match, policy);
  ASSERT_TRUE(final_wire.ok());
  ASSERT_TRUE(final_wire->status.ok());
  (*front)->Stop();
  server->Shutdown();
  CheckStatsLedger(server->Stats());
}

TEST_F(ChaosTest, ShedStormUnderFaultsKeepsTheLedgerExact) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  MatchServerConfig config;
  config.queue_capacity = 8;
  config.shed_watermark = 6;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);
  Arm("engine.scores:p=0.25,code=Internal", /*seed=*/19);

  // Stopped server: exactly shed_watermark requests are admitted, the other
  // 10 shed deterministically — then the scheduler drains under faults.
  std::vector<std::future<ServeResponse>> inflight;
  for (size_t i = 0; i < 16; ++i) {
    inflight.push_back(server->Submit(MatchRequest()));
  }
  ASSERT_TRUE(server->Start().ok());

  size_t ok_count = 0;
  size_t shed_count = 0;
  size_t injected = 0;
  for (std::future<ServeResponse>& f : inflight) {
    ServeResponse response = f.get();
    switch (response.status.code()) {
      case StatusCode::kOk:
        EXPECT_EQ(response.assignment.target_of_source,
                  reference.target_of_source);
        ++ok_count;
        break;
      case StatusCode::kUnavailable:
        EXPECT_GT(response.retry_after_micros, 0u);
        ++shed_count;
        break;
      case StatusCode::kInternal:
        ++injected;
        break;
      default:
        FAIL() << "unexpected status: " << response.status.ToString();
    }
  }
  server->Shutdown();

  EXPECT_EQ(ok_count + shed_count + injected, 16u);
  EXPECT_EQ(shed_count, 10u);  // 16 submitted into a watermark of 6
  const ServerStatsSnapshot stats = server->Stats();
  CheckStatsLedger(stats);
  EXPECT_EQ(stats.shed, shed_count);
  EXPECT_EQ(stats.failed, injected);
  EXPECT_EQ(stats.completed, ok_count);
}

TEST_F(ChaosTest, CombinedPlanUnderThirtyPercentHoldsAllInvariants) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  MatchServerConfig config;
  config.queue_capacity = 128;
  config.max_batch = 4;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/true);

  // Everything at once, every rate <= 30%: spurious engine errors, engine
  // stalls, and workspace exhaustion.
  Arm("engine.scores:p=0.2,code=Internal;"
      "engine.scores:p=0.15,latency_us=300;"
      "workspace.acquire:p=0.05,code=ResourceExhausted",
      /*seed=*/29);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 12;
  std::vector<std::thread> threads;
  std::vector<std::vector<ServeResponse>> responses(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        responses[t].push_back(server->Query(MatchRequest()));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  server->Shutdown();

  size_t ok_count = 0;
  for (const std::vector<ServeResponse>& per_thread : responses) {
    for (const ServeResponse& response : per_thread) {
      if (response.status.ok()) {
        EXPECT_EQ(response.assignment.target_of_source,
                  reference.target_of_source);
        ++ok_count;
      } else {
        // Definite, expected codes only — nothing mangled, nothing hung.
        const StatusCode code = response.status.code();
        EXPECT_TRUE(code == StatusCode::kInternal ||
                    code == StatusCode::kResourceExhausted ||
                    code == StatusCode::kUnavailable)
            << response.status.ToString();
      }
    }
  }
  const ServerStatsSnapshot stats = server->Stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  CheckStatsLedger(stats);
  EXPECT_GT(ok_count, 0u);  // 30% chaos must not starve the service
  EXPECT_GT(FaultInjector::Global().total_fires(), 0u);
}

TEST_F(ChaosTest, FailedSnapshotPublishLeavesOldVersionServing) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  MatchServerConfig config;
  config.serve_workers = 2;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/true);

  // Every publish attempt fails at the swap point; the already-published v1
  // must keep serving, bit-identical, as if the swap was never attempted.
  Arm("snapshot.publish:p=1.0,code=Unavailable", /*seed=*/31);
  Result<uint64_t> swapped = server->SwapPair(
      "default", RandomEmbeddings(24, 101), RandomEmbeddings(30, 202));
  ASSERT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server->Stats().snapshot_swaps, 0u);
  ASSERT_NE(server->CurrentSnapshot("default"), nullptr);
  EXPECT_EQ(server->CurrentSnapshot("default")->version(), 1u);

  ServeResponse response = server->Query(MatchRequest());
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.snapshot_version, 1u);
  EXPECT_EQ(response.assignment.target_of_source, reference.target_of_source);

  // Disarm: the retried swap goes through and v2 serves.
  FaultInjector::Global().Disarm();
  Result<uint64_t> retried = server->SwapPair(
      "default", RandomEmbeddings(24, 101), RandomEmbeddings(30, 202));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(*retried, 2u);
  ServeResponse fresh = server->Query(MatchRequest());
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_EQ(fresh.snapshot_version, 2u);
  server->Shutdown();
}

// The shed storm of ShedStormUnderFaultsKeepsTheLedgerExact, at a full
// 8-worker pool: whatever the interleaving of shedding, injected engine
// faults, and worker dispatch, every submitted request terminates with a
// definite status and the ledger stays exact.
TEST_F(ChaosTest, EightWorkerShedStormTerminatesDefinitely) {
  const Assignment reference = Reference(AlgorithmPreset::kCsls);
  MatchServerConfig config;
  config.queue_capacity = 8;
  config.shed_watermark = 6;
  config.serve_workers = 8;
  std::unique_ptr<MatchServer> server = MakeServer(config, /*start=*/false);
  EXPECT_EQ(server->serve_workers(), 8u);
  Arm("engine.scores:p=0.25,code=Internal", /*seed=*/37);

  std::vector<std::future<ServeResponse>> inflight;
  for (size_t i = 0; i < 16; ++i) {
    inflight.push_back(server->Submit(MatchRequest()));
  }
  ASSERT_TRUE(server->Start().ok());

  size_t ok_count = 0;
  size_t shed_count = 0;
  size_t injected = 0;
  for (std::future<ServeResponse>& f : inflight) {
    ServeResponse response = f.get();
    switch (response.status.code()) {
      case StatusCode::kOk:
        EXPECT_EQ(response.assignment.target_of_source,
                  reference.target_of_source);
        ++ok_count;
        break;
      case StatusCode::kUnavailable:
        ++shed_count;
        break;
      case StatusCode::kInternal:
        ++injected;
        break;
      default:
        FAIL() << "unexpected status: " << response.status.ToString();
    }
  }
  server->Shutdown();

  EXPECT_EQ(ok_count + shed_count + injected, 16u);
  EXPECT_EQ(shed_count, 10u);
  const ServerStatsSnapshot stats = server->Stats();
  CheckStatsLedger(stats);
  EXPECT_EQ(stats.failed, injected);
  EXPECT_EQ(stats.completed, ok_count);
}

TEST_F(ChaosTest, HealthJsonCarriesTheArmedFingerprint) {
  std::unique_ptr<MatchServer> server =
      MakeServer(MatchServerConfig(), /*start=*/true);
  Arm("engine.scores:p=0.1,code=Internal", /*seed=*/42);
  const std::string health = server->HealthJson();
  const std::string fingerprint = FaultInjector::Global().Fingerprint();
  EXPECT_NE(fingerprint, "off");
  EXPECT_NE(health.find(fingerprint), std::string::npos) << health;
  server->Shutdown();
}

}  // namespace
}  // namespace entmatcher
