// Injection-driven recovery chaos: arms the in-process FaultInjector against
// the two supervisor fault points — `fleet.spawn` (inside
// ShardManager::Respawn) and `fleet.rejoin.swap` (before the convergence
// swap) — and holds the supervisor to its ledger: each injected failure is
// exactly one strike of the right kind, the shard stays un-admitted until a
// clean retry lands, and the recovered fleet serves bit-identical answers.
// Needs both compiled-in fault points (ENTMATCHER_FAULTS) and real shard
// processes (EM_CLI_PATH).

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "fleet/supervisor.h"
#include "la/matrix_io.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 20;
constexpr size_t kDim = 12;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

void Arm(const std::string& spec, uint64_t seed) {
  Result<FaultPlan> plan = FaultPlan::Parse(spec);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  FaultInjector::Global().Arm(std::move(plan).value(), seed);
}

class FleetFaultsChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("EM_CLI_PATH");
    if (cli == nullptr) {
      GTEST_SKIP() << "EM_CLI_PATH not set (run through ctest)";
    }
    cli_path_ = cli;
    dir_ = "/tmp/em_fleet_faults_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    source_ = RandomEmbeddings(kRows, 41);
    target_ = RandomEmbeddings(kRows + 6, 42);
    ASSERT_TRUE(WriteMatrixBinary(source_, dir_ + "/src.emat").ok());
    ASSERT_TRUE(WriteMatrixBinary(target_, dir_ + "/tgt.emat").ok());
  }

  void TearDown() override { FaultInjector::Global().Disarm(); }

  std::string cli_path_;
  std::string dir_;
  std::string plan_path_;
  Matrix source_;
  Matrix target_;
};

TEST_F(FleetFaultsChaosTest, InjectedSpawnAndRejoinFailuresRetryThenRecover) {
  Result<ShardPlan> made = ShardPlan::EvenSplit(
      "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, /*shards=*/2,
      dir_, /*replicas=*/1);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const ShardPlan plan = std::move(made).value();
  plan_path_ = dir_ + "/plan.json";
  ASSERT_TRUE(plan.Save(plan_path_).ok());

  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());
  Result<std::unique_ptr<Router>> router = Router::Create(plan, {});
  ASSERT_TRUE(router.ok());

  RestartPolicy policy;
  policy.initial_backoff_micros = 10'000;
  policy.max_backoff_micros = 100'000;
  policy.boot_budget_micros = 20'000'000;
  policy.jitter_seed = 5;
  FleetSupervisor supervisor(&manager, router->get(), plan, policy);
  ASSERT_TRUE(supervisor.Start().ok());

  WireRequest request;
  request.verb = WireRequest::Verb::kMatch;
  request.algorithm = AlgorithmPreset::kCsls;
  request.pair = "p";
  const Result<WireResponse> before = (*router)->Query(request);
  ASSERT_TRUE(before.ok()) << before.status().ToString();

  // First respawn attempt dies at the fault point, first convergence
  // attempt dies at its fault point; the retries (under backoff) land.
  Arm("fleet.spawn:nth=1,max=1,code=Internal;"
      "fleet.rejoin.swap:nth=1,max=1,code=Unavailable",
      /*seed=*/9);

  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
  Status recovered = supervisor.WaitRestarts(0, 1, 30'000'000);
  ASSERT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_EQ(FaultInjector::Global().total_fires(), 2u);

  // Exactly one strike of each kind, one completed restart, no retirement.
  const std::vector<ShardRecoveryStatus> ledger = supervisor.Ledger();
  ASSERT_EQ(ledger.size(), 2u);
  EXPECT_EQ(ledger[0].restarts, 1u);
  EXPECT_EQ(ledger[0].spawn_failures, 1u);
  EXPECT_EQ(ledger[0].rejoin_failures, 1u);
  EXPECT_EQ(ledger[0].boot_failures, 0u);
  EXPECT_EQ(ledger[0].strikes, 2u);
  EXPECT_FALSE(ledger[0].permanently_failed);
  EXPECT_FALSE(ledger[0].recovering);

  // The recovered shard answers again, bit-identical.
  Result<WireResponse> after = (*router)->Query(request);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->values, before->values);
  EXPECT_EQ((*router)->Stats().version_mismatches, 0u);

  supervisor.Stop();
  router->reset();
  manager.StopAll();
}

// Strike accounting under persistent injection: rejoin failures repeat until
// the strike budget retires the shard, and the process the supervisor was
// nursing is put down rather than left serving unconverged.
TEST_F(FleetFaultsChaosTest, PersistentRejoinFaultBurnsStrikesToRetirement) {
  Result<ShardPlan> made = ShardPlan::EvenSplit(
      "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, /*shards=*/2,
      dir_, /*replicas=*/1);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const ShardPlan plan = std::move(made).value();
  plan_path_ = dir_ + "/plan.json";
  ASSERT_TRUE(plan.Save(plan_path_).ok());

  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  ASSERT_TRUE(manager.WaitHealthy(20'000'000).ok());
  Result<std::unique_ptr<Router>> router = Router::Create(plan, {});
  ASSERT_TRUE(router.ok());

  RestartPolicy policy;
  policy.max_strikes = 3;
  policy.initial_backoff_micros = 10'000;
  policy.max_backoff_micros = 50'000;
  policy.boot_budget_micros = 20'000'000;
  policy.jitter_seed = 5;
  FleetSupervisor supervisor(&manager, router->get(), plan, policy);
  ASSERT_TRUE(supervisor.Start().ok());

  // Every convergence attempt fails: the shard respawns fine but can never
  // be re-admitted, so three rejoin strikes retire it.
  Arm("fleet.rejoin.swap:p=1,code=Unavailable", /*seed=*/9);

  ASSERT_TRUE(manager.Kill(0, SIGKILL).ok());
  Status verdict = supervisor.WaitRestarts(0, 1, 60'000'000);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.code(), StatusCode::kInternal);

  const std::vector<ShardRecoveryStatus> ledger = supervisor.Ledger();
  EXPECT_TRUE(ledger[0].permanently_failed);
  EXPECT_EQ(ledger[0].restarts, 0u);
  EXPECT_EQ(ledger[0].rejoin_failures, 3u);

  // Un-admitted throughout: the replica answered, never the half-joined
  // newcomer — and the retired shard's process is gone, not lingering.
  WireRequest request;
  request.verb = WireRequest::Verb::kMatch;
  request.algorithm = AlgorithmPreset::kCsls;
  request.pair = "p";
  Result<WireResponse> still = (*router)->Query(request);
  EXPECT_TRUE(still.ok()) << still.status().ToString();
  bool retired_shard_down = false;
  for (int i = 0; i < 200 && !retired_shard_down; ++i) {
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.shard_id == 0 && !status.running) retired_shard_down = true;
    }
    if (!retired_shard_down) ::usleep(20'000);
  }
  EXPECT_TRUE(retired_shard_down) << "retired shard left running";

  supervisor.Stop();
  router->reset();
  manager.StopAll();
}

}  // namespace
}  // namespace entmatcher
