// Fleet chaos: SIGKILL a real shard process in the middle of a concurrent
// query storm and hold the router to its invariants (ctest label `chaos`;
// needs real processes, not compiled-in fault points, so it runs in every
// build unlike the injection-driven chaos_test):
//   1. definite termination — every storm query returns a Status, the storm
//      never hangs, and StopAll leaves nothing running,
//   2. exact ledgers — router queries == ok + failed after the storm drains,
//   3. zero mixed-version merges — no swap ran, so version_mismatches == 0
//      no matter how the kill interleaves with scatter-gather,
//   4. every *successful* answer is bit-identical to a solo engine run.

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "la/matrix_io.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 24;
constexpr size_t kDim = 12;

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

class FleetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("EM_CLI_PATH");
    if (cli == nullptr) {
      GTEST_SKIP() << "EM_CLI_PATH not set (run through ctest)";
    }
    cli_path_ = cli;
    dir_ = "/tmp/em_fleet_chaos_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    source_ = RandomEmbeddings(kRows, 11);
    target_ = RandomEmbeddings(kRows + 8, 12);
    ASSERT_TRUE(WriteMatrixBinary(source_, dir_ + "/src.emat").ok());
    ASSERT_TRUE(WriteMatrixBinary(target_, dir_ + "/tgt.emat").ok());
  }

  std::string cli_path_;
  std::string dir_;
  std::string plan_path_;
  Matrix source_;
  Matrix target_;
};

TEST_F(FleetChaosTest, SigkillMidStormKeepsLedgersExactAndMergesPure) {
  // 3 shards, 1 replica each: every range has exactly one backup, so the
  // kill is survivable but never masked by excess redundancy.
  Result<ShardPlan> made = ShardPlan::EvenSplit(
      "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, /*shards=*/3,
      dir_, /*replicas=*/1);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const ShardPlan plan = std::move(made).value();
  plan_path_ = dir_ + "/plan.json";
  ASSERT_TRUE(plan.Save(plan_path_).ok());

  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  Status healthy = manager.WaitHealthy(20'000'000);
  ASSERT_TRUE(healthy.ok()) << healthy.ToString();

  RouterConfig config;
  config.retry.max_attempts = 3;
  Result<std::unique_ptr<Router>> router = Router::Create(plan, config);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  // Fault-free reference computed solo, before any chaos.
  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  Result<Assignment> solo = engine->Match();
  ASSERT_TRUE(solo.ok());
  const std::vector<int32_t>& reference = solo->target_of_source;

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 25;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> succeeded{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> storm;
  storm.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&] {
      for (size_t i = 0; i < kPerThread; ++i) {
        WireRequest request;
        request.verb = WireRequest::Verb::kMatch;
        request.algorithm = AlgorithmPreset::kCsls;
        request.pair = "p";
        Result<WireResponse> answer = (*router)->Query(request);
        answered.fetch_add(1);  // definite termination: ok OR a real error
        if (!answer.ok()) continue;
        succeeded.fetch_add(1);
        if (answer->values.size() != reference.size()) {
          wrong.fetch_add(1);
          continue;
        }
        for (size_t r = 0; r < reference.size(); ++r) {
          if (answer->values[r] != reference[r]) {
            wrong.fetch_add(1);
            break;
          }
        }
      }
    });
  }

  // Let the storm get going, then SIGKILL shard 1 mid-flight. Its ranges
  // must fail over to the replica; answers stay bit-identical throughout.
  ::usleep(30'000);
  ASSERT_TRUE(manager.Kill(1, SIGKILL).ok());
  for (std::thread& thread : storm) thread.join();

  EXPECT_EQ(answered.load(), kThreads * kPerThread);
  EXPECT_EQ(wrong.load(), 0u) << "a merged answer diverged from the solo run";
  // Replicas cover every range, so the storm should ride through the kill.
  EXPECT_GT(succeeded.load(), 0u);

  const RouterStatsSnapshot stats = (*router)->Stats();
  EXPECT_EQ(stats.queries, answered.load());
  EXPECT_EQ(stats.queries, stats.ok + stats.failed) << stats.ToJson();
  EXPECT_EQ(stats.ok, succeeded.load());
  // No swap ran: a single mixed-version merge here means the router mixed
  // snapshots across shards on its own.
  EXPECT_EQ(stats.version_mismatches, 0u) << stats.ToJson();

  // The reaper must have observed the kill as a signal death, not an exit.
  bool observed = false;
  for (int i = 0; i < 200 && !observed; ++i) {
    for (const ShardProcessStatus& status : manager.Status_()) {
      if (status.shard_id == 1 && !status.running) {
        observed = true;
        EXPECT_EQ(status.last_term_signal, SIGKILL);
      }
    }
    if (!observed) ::usleep(20'000);
  }
  EXPECT_TRUE(observed) << "reaper never observed the SIGKILL";

  router->reset();
  manager.StopAll();
  for (const ShardProcessStatus& status : manager.Status_()) {
    EXPECT_FALSE(status.running) << "shard " << status.shard_id;
  }
}

}  // namespace
}  // namespace entmatcher
