// Self-healing chaos: a rotating SIGKILL storm across every shard while the
// FleetSupervisor restarts them and a concurrent query storm keeps reading
// (ctest label `chaos`; real processes, so it runs in every build). The
// invariants held to:
//   1. definite termination — every storm query returns a Status, every kill
//      completes a recovery cycle, StopAll leaves nothing running,
//   2. exact restart ledger — completed restarts == kills issued, per shard,
//      with a reap→re-admission latency recorded for each cycle,
//   3. zero mixed-version merges — restarted shards re-join converged, so
//      version_mismatches == 0 across every crash/restart interleaving,
//   4. every *successful* answer is bit-identical to a solo engine run, and
//      the router's query ledger stays exact (queries == ok + degraded +
//      failed) with breakers tripping and reclosing along the way.

#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fleet/plan.h"
#include "fleet/router.h"
#include "fleet/shard_manager.h"
#include "fleet/supervisor.h"
#include "la/matrix_io.h"
#include "matching/engine.h"

namespace entmatcher {
namespace {

constexpr size_t kRows = 24;
constexpr size_t kDim = 12;
constexpr int kShards = 3;
constexpr uint64_t kRounds = 2;  // rotating kills: every shard, twice

Matrix RandomEmbeddings(size_t rows, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, kDim);
  for (size_t r = 0; r < rows; ++r) {
    for (float& v : m.Row(r)) v = static_cast<float>(rng.NextGaussian());
  }
  return m;
}

class FleetRecoveryChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* cli = std::getenv("EM_CLI_PATH");
    if (cli == nullptr) {
      GTEST_SKIP() << "EM_CLI_PATH not set (run through ctest)";
    }
    cli_path_ = cli;
    dir_ = "/tmp/em_fleet_recovery_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
    source_ = RandomEmbeddings(kRows, 31);
    target_ = RandomEmbeddings(kRows + 8, 32);
    ASSERT_TRUE(WriteMatrixBinary(source_, dir_ + "/src.emat").ok());
    ASSERT_TRUE(WriteMatrixBinary(target_, dir_ + "/tgt.emat").ok());
  }

  std::string cli_path_;
  std::string dir_;
  std::string plan_path_;
  Matrix source_;
  Matrix target_;
};

TEST_F(FleetRecoveryChaosTest, RotatingSigkillStormRecoversEveryShard) {
  // 1 replica per range: each kill is survivable mid-recovery, but only the
  // supervisor brings redundancy back for the NEXT kill — without restarts
  // the second round of the rotation would strand ranges ownerless.
  Result<ShardPlan> made = ShardPlan::EvenSplit(
      "p", dir_ + "/src.emat", dir_ + "/tgt.emat", "", kRows, kShards, dir_,
      /*replicas=*/1);
  ASSERT_TRUE(made.ok()) << made.status().ToString();
  const ShardPlan plan = std::move(made).value();
  plan_path_ = dir_ + "/plan.json";
  ASSERT_TRUE(plan.Save(plan_path_).ok());

  ShardManager manager;
  ASSERT_TRUE(
      manager.Start(plan, ShardCommand::SelfServe(plan_path_, cli_path_))
          .ok());
  Status healthy = manager.WaitHealthy(20'000'000);
  ASSERT_TRUE(healthy.ok()) << healthy.ToString();

  RouterConfig config;
  config.retry.max_attempts = 3;
  // Breakers on with a short cooldown: kills trip them open mid-storm and
  // recoveries must reclose them — the transition counters prove both.
  config.breaker_failures = 3;
  config.breaker_cooldown_micros = 20'000;
  Result<std::unique_ptr<Router>> router = Router::Create(plan, config);
  ASSERT_TRUE(router.ok()) << router.status().ToString();

  RestartPolicy policy;
  policy.initial_backoff_micros = 10'000;
  policy.max_backoff_micros = 100'000;
  policy.boot_budget_micros = 20'000'000;
  policy.jitter_seed = 13;
  FleetSupervisor supervisor(&manager, router->get(), plan, policy);
  ASSERT_TRUE(supervisor.Start().ok());

  // Fault-free reference computed solo, before any chaos.
  Result<MatchEngine> engine = MatchEngine::Create(
      Matrix(source_), Matrix(target_), MakePreset(AlgorithmPreset::kCsls));
  ASSERT_TRUE(engine.ok());
  Result<Assignment> solo = engine->Match();
  ASSERT_TRUE(solo.ok());
  const std::vector<int32_t>& reference = solo->target_of_source;

  // The query storm runs for the whole rotation; the kill choreography on
  // the main thread decides when it ends.
  constexpr size_t kThreads = 3;
  std::atomic<bool> storm_done{false};
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> succeeded{0};
  std::atomic<uint64_t> wrong{0};
  std::vector<std::thread> storm;
  storm.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    storm.emplace_back([&] {
      while (!storm_done.load()) {
        WireRequest request;
        request.verb = WireRequest::Verb::kMatch;
        request.algorithm = AlgorithmPreset::kCsls;
        request.pair = "p";
        Result<WireResponse> answer = (*router)->Query(request);
        answered.fetch_add(1);  // definite termination: ok OR a real error
        if (!answer.ok()) continue;
        succeeded.fetch_add(1);
        if (answer->values != reference) wrong.fetch_add(1);
      }
    });
  }

  // Rotate SIGKILL across every shard, kRounds times over. WaitRestarts
  // takes the ABSOLUTE completed-restart target, so the choreography is
  // race-free no matter how fast a cycle completes.
  for (uint64_t round = 1; round <= kRounds; ++round) {
    for (int shard = 0; shard < kShards; ++shard) {
      ::usleep(20'000);  // let some storm traffic hit the healthy fleet
      ASSERT_TRUE(manager.Kill(shard, SIGKILL).ok())
          << "round " << round << " shard " << shard;
      Status recovered = supervisor.WaitRestarts(shard, round, 30'000'000);
      ASSERT_TRUE(recovered.ok())
          << "round " << round << " shard " << shard << ": "
          << recovered.ToString();
    }
  }
  ::usleep(20'000);  // post-recovery traffic through the fully healed fleet
  storm_done.store(true);
  for (std::thread& thread : storm) thread.join();

  EXPECT_GT(answered.load(), 0u);
  EXPECT_GT(succeeded.load(), 0u);
  EXPECT_EQ(wrong.load(), 0u) << "a merged answer diverged from the solo run";

  // Exact restart ledger: every kill completed one recovery cycle, nothing
  // struck out, and each cycle logged its reap→re-admission latency.
  const std::vector<ShardRecoveryStatus> ledger = supervisor.Ledger();
  ASSERT_EQ(ledger.size(), static_cast<size_t>(kShards));
  for (const ShardRecoveryStatus& shard : ledger) {
    EXPECT_EQ(shard.restarts, kRounds) << "shard " << shard.shard_id;
    EXPECT_FALSE(shard.permanently_failed) << "shard " << shard.shard_id;
    EXPECT_FALSE(shard.recovering) << "shard " << shard.shard_id;
  }
  const std::vector<uint64_t> latencies = supervisor.RestartLatencies();
  EXPECT_EQ(latencies.size(), kRounds * kShards);
  for (uint64_t latency : latencies) EXPECT_GT(latency, 0u);

  // Router ledger exact, merges pure. No swap ran and every re-join
  // converged, so a single mixed-version merge would mean a restarted shard
  // was re-admitted at the wrong snapshot version.
  const RouterStatsSnapshot stats = (*router)->Stats();
  EXPECT_EQ(stats.queries, answered.load());
  EXPECT_EQ(stats.queries, stats.ok + stats.degraded + stats.failed)
      << stats.ToJson();
  EXPECT_EQ(stats.ok, succeeded.load());
  EXPECT_EQ(stats.version_mismatches, 0u) << stats.ToJson();
  // Every breaker that opened must have reclosed through a half-open probe.
  EXPECT_EQ(stats.breaker_opens, stats.breaker_closes) << stats.ToJson();

  supervisor.Stop();
  router->reset();
  manager.StopAll();
  for (const ShardProcessStatus& status : manager.Status_()) {
    EXPECT_FALSE(status.running) << "shard " << status.shard_id;
  }
}

}  // namespace
}  // namespace entmatcher
